"""Setup shim so that legacy `python setup.py develop` works in offline environments."""
from setuptools import setup

setup()
