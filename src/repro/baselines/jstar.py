"""A jStar-style entailment prover (the paper's incomplete baseline).

jStar discharges entailments by greedy sequent rewriting with a user-supplied
rule set.  The rules distributed with the tool are *incomplete* for the
list-segment fragment — the paper's Section 6 footnote reports that jStar
fails to prove 59 of the 209 verification conditions generated from the
Smallfoot examples, all of them valid.

This baseline mirrors that behaviour.  It applies a fixed set of sound
subtraction rules greedily, with **no case splitting and no backtracking**:

* identical atoms on both sides are framed away;
* empty segments (``lseg(x, x)`` or a segment whose end points are known
  equal) are discarded;
* a demanded ``next(x, y)`` is matched only by a literally identical cell;
* a demanded ``lseg(x, z)`` may consume a cell ``next(x, y)`` when the rules
  can see that ``x != z`` (explicitly, or because ``z`` is ``nil`` or
  allocated by another cell), continuing with ``lseg(y, z)``;
* a demanded ``lseg(x, nil)`` may absorb a left-hand segment ``lseg(x, y)``,
  continuing with ``lseg(y, nil)``.

What is *missing* — deliberately — is the general ``lseg``/``lseg``
composition towards a non-``nil`` end point and every rule that would require
a case analysis on aliasing.  Entailments that need those (for example the
transitivity-style conditions arising from loop invariants) are reported as
``unknown``.  Every rule used is sound, so a ``valid`` answer can be trusted;
the prover never claims validity of an invalid entailment.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.baselines.common import (
    sll_only,
    BaselineResult,
    BaselineVerdict,
    ResourceBudget,
    ResourceExhausted,
    SequentState,
    initial_state,
    replace_lhs,
    replace_rhs,
    state_with_equality,
)
from repro.logic.atoms import ListSegment, PointsTo, SpatialAtom
from repro.logic.formula import Entailment
from repro.logic.terms import Const, NIL


class JStarProver:
    """Greedy, incomplete sequent-rewriting prover in the style of jStar."""

    def __init__(self, max_steps: Optional[int] = 1_000_000, max_seconds: Optional[float] = None):
        self.max_steps = max_steps
        self.max_seconds = max_seconds

    # ------------------------------------------------------------------
    def prove(self, entailment: Entailment) -> BaselineResult:
        """Attempt to prove ``entailment``; answers ``unknown`` when the rules get stuck.

        The rule set only speaks the singly-linked (``next``/``lseg``)
        vocabulary; entailments of any other spatial theory answer ``unknown``.
        """
        if not sll_only(entailment):
            return BaselineResult(verdict=BaselineVerdict.UNKNOWN, entailment=entailment)
        budget = ResourceBudget(max_steps=self.max_steps, max_seconds=self.max_seconds)
        budget.start()
        start = time.perf_counter()
        try:
            verdict = self._run(initial_state(entailment), budget)
        except ResourceExhausted:
            verdict = BaselineVerdict.UNKNOWN
        return BaselineResult(
            verdict=verdict,
            entailment=entailment,
            steps=budget.steps,
            elapsed_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def _run(self, state: Optional[SequentState], budget: ResourceBudget) -> BaselineVerdict:
        if state is None:
            return BaselineVerdict.VALID

        state = self._saturate_lhs(state, budget)
        if state is None:
            return BaselineVerdict.VALID

        # Pure right-hand side: only facts directly visible to the rules count.
        for literal in state.rhs_pure:
            left, right = literal.atom.left, literal.atom.right
            if literal.positive:
                if left != right:
                    return BaselineVerdict.UNKNOWN
            else:
                if left == right:
                    return BaselineVerdict.UNKNOWN
                if not self._visible_disequality(state, left, right):
                    return BaselineVerdict.UNKNOWN

        lhs = list(state.lhs_atoms)
        rhs = list(state.rhs_atoms)

        progress = True
        while progress:
            budget.tick()
            progress = False
            if not rhs:
                break
            demanded = rhs[0]

            if demanded.is_trivial:
                rhs.pop(0)
                progress = True
                continue

            # Frame identical atoms.
            if demanded in lhs:
                lhs.remove(demanded)
                rhs.pop(0)
                progress = True
                continue

            if isinstance(demanded, ListSegment):
                cell = self._cell_at(lhs, demanded.source)
                if cell is None:
                    break
                if isinstance(cell, PointsTo):
                    if self._visible_distinct(state, lhs, cell, demanded.target):
                        lhs.remove(cell)
                        rhs[0] = ListSegment(cell.target, demanded.target)
                        progress = True
                        continue
                    break
                # cell is a left-hand list segment
                if demanded.target == NIL:
                    lhs.remove(cell)
                    rhs[0] = ListSegment(cell.target, NIL)
                    progress = True
                    continue
                # The general lseg/lseg composition is missing from the rule
                # set: this is the deliberate incompleteness.
                break
            else:
                # A demanded cell is only matched by an identical cell, which
                # the frame rule above would already have consumed.
                break

        if not rhs and not lhs:
            return BaselineVerdict.VALID
        return BaselineVerdict.UNKNOWN

    # ------------------------------------------------------------------
    def _saturate_lhs(
        self, state: Optional[SequentState], budget: ResourceBudget
    ) -> Optional[SequentState]:
        """Deterministic left-hand side normalisation (no case splits).

        Returns ``None`` when the left-hand side is discovered inconsistent
        (the entailment then holds vacuously).
        """
        while state is not None:
            budget.tick()
            action = None
            for atom in state.lhs_atoms:
                if isinstance(atom, PointsTo) and atom.source.is_nil:
                    return None
                if isinstance(atom, ListSegment) and atom.source.is_nil:
                    action = ("assume", (atom.target, NIL))
                    break
            if action is None:
                seen = {}
                for atom in state.lhs_atoms:
                    other = seen.get(atom.source)
                    if other is None:
                        seen[atom.source] = atom
                        continue
                    if isinstance(other, PointsTo) and isinstance(atom, PointsTo):
                        return None
                    if isinstance(other, PointsTo) and isinstance(atom, ListSegment):
                        action = ("assume", (atom.source, atom.target))
                        break
                    if isinstance(other, ListSegment) and isinstance(atom, PointsTo):
                        action = ("assume", (other.source, other.target))
                        break
                    # Two segments sharing an address would require a case
                    # split, which the greedy rules never perform.
            if action is None:
                return state
            _, (left, right) = action
            state = state_with_equality(state, left, right)
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def _cell_at(lhs: List[SpatialAtom], address: Const) -> Optional[SpatialAtom]:
        for atom in lhs:
            if atom.source == address:
                return atom
        return None

    @staticmethod
    def _visible_disequality(state: SequentState, left: Const, right: Const) -> bool:
        """Disequalities the greedy rules can see without case analysis."""
        if state.distinct(left, right):
            return True
        allocated = {atom.source for atom in state.lhs_atoms if isinstance(atom, PointsTo)}
        if left in allocated and (right == NIL or right in allocated):
            return True
        if right in allocated and left == NIL:
            return True
        return False

    def _visible_distinct(
        self, state: SequentState, lhs: List[SpatialAtom], cell: SpatialAtom, target: Const
    ) -> bool:
        """Can the rules see that ``cell.source != target``?"""
        if target == NIL:
            return True
        if state.distinct(cell.source, target):
            return True
        return any(
            other is not cell and isinstance(other, PointsTo) and other.source == target
            for other in lhs
        )
