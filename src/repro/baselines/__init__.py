"""Baseline entailment provers used by the paper's evaluation.

The paper compares SLP against two existing tools:

* **Smallfoot** (Berdine, Calcagno, O'Hearn) — its entailment checker
  implements the original proof system for the fragment, which interleaves
  equality and shape reasoning through explicit, unguided case splits; it is
  sound and complete but its proof search is exponential in the number of
  undetermined aliasing decisions.  :class:`repro.baselines.smallfoot.SmallfootProver`
  reimplements that style of prover.
* **jStar** (Distefano, Parkinson) — a heuristic sequent rewriting prover
  whose distributed rule set is *incomplete* for the fragment (footnote in
  Section 6: it fails to prove 59 of the 209 Smallfoot verification
  conditions).  :class:`repro.baselines.jstar.JStarProver` reimplements a
  greedy rewriting prover with a comparable blind spot (it cannot perform the
  general ``lseg``/``lseg`` composition).

Both baselines share the small amount of pure-reasoning machinery in
:mod:`repro.baselines.common`.
"""

from repro.baselines.common import BaselineResult, BaselineVerdict, ResourceBudget, ResourceExhausted
from repro.baselines.jstar import JStarProver
from repro.baselines.smallfoot import SmallfootProver

__all__ = [
    "BaselineResult",
    "BaselineVerdict",
    "ResourceBudget",
    "ResourceExhausted",
    "SmallfootProver",
    "JStarProver",
]
