"""A Smallfoot-style entailment prover (the paper's complete baseline).

Smallfoot's entailment checker implements the original Berdine–Calcagno–
O'Hearn proof system for the fragment.  The defining characteristic of that
system — and the reason the paper's Tables 1–3 show it degrading so quickly —
is that equality (aliasing) decisions and shape decisions are interleaved in
the proof search itself: whenever the truth of the sequent depends on whether
two expressions alias, the search *case splits* and must prove both branches.
SLP instead asks the superposition model for one concrete aliasing arrangement
and revisits it only when the spatial rules discover a new pure fact.

This module reimplements the baseline in that spirit:

* pure reasoning is a union-find over the equalities plus a set of
  disequalities;
* the left-hand side is repeatedly normalised: trivial segments are dropped,
  impossible shapes (a cell at ``nil``, two cells at one address) close the
  branch, and shapes that force equalities (``lseg(nil, y)``,
  ``next``/``lseg`` sharing an address) add them;
* two list segments sharing an address, an undetermined segment blocking a
  match, or a right-hand segment whose emptiness is unknown all trigger a
  **case split**: both branches must be proved;
* matching of the right-hand side against the left-hand side consumes atoms
  one cell or one segment at a time, with the same side conditions as the
  paper's unfolding rules.

The prover is sound and complete for the fragment (the test suite
cross-validates it against SLP and against the semantic enumeration oracle on
thousands of random entailments) but its search is worst-case exponential in
the number of case splits, which is exactly the behaviour the paper's
evaluation attributes to Smallfoot.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.baselines.common import (
    sll_only,
    BaselineResult,
    BaselineVerdict,
    ResourceBudget,
    ResourceExhausted,
    SequentState,
    drop_rhs_pure,
    initial_state,
    replace_lhs,
    replace_rhs,
    state_with_disequality,
    state_with_equality,
)
from repro.logic.atoms import ListSegment, PointsTo, SpatialAtom
from repro.logic.formula import Entailment
from repro.logic.terms import Const, NIL


class SmallfootProver:
    """Sound and complete baseline prover with unguided case-split search."""

    def __init__(self, max_steps: Optional[int] = 5_000_000, max_seconds: Optional[float] = None):
        self.max_steps = max_steps
        self.max_seconds = max_seconds

    # ------------------------------------------------------------------
    def prove(self, entailment: Entailment) -> BaselineResult:
        """Decide ``entailment``; may answer ``unknown`` if the budget is exhausted.

        The rule set only speaks the singly-linked (``next``/``lseg``)
        vocabulary; entailments of any other spatial theory answer ``unknown``.
        """
        if not sll_only(entailment):
            return BaselineResult(verdict=BaselineVerdict.UNKNOWN, entailment=entailment)
        budget = ResourceBudget(max_steps=self.max_steps, max_seconds=self.max_seconds)
        budget.start()
        start = time.perf_counter()
        state = initial_state(entailment)
        try:
            outcome = BaselineVerdict.VALID if self._valid(state, budget) else BaselineVerdict.INVALID
        except ResourceExhausted:
            outcome = BaselineVerdict.UNKNOWN
        return BaselineResult(
            verdict=outcome,
            entailment=entailment,
            steps=budget.steps,
            elapsed_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def _valid(self, state: Optional[SequentState], budget: ResourceBudget) -> bool:
        """Is the sequent valid?  ``None`` states (inconsistent assumptions) hold vacuously."""
        budget.tick()
        if state is None:
            return True

        # ---------------- left-hand side propagation -----------------------
        action = self._propagate_lhs(state)
        if action is not None:
            kind, payload = action
            if kind == "valid":
                return True
            if kind == "assume":
                left, right = payload
                return self._valid(state_with_equality(state, left, right), budget)
            if kind == "split":
                (a1, b1), (a2, b2) = payload
                return self._valid(
                    state_with_equality(state, a1, b1), budget
                ) and self._valid(state_with_equality(state, a2, b2), budget)
            raise AssertionError("unknown propagation action {}".format(kind))

        # ---------------- right-hand side pure literals --------------------
        for literal in state.rhs_pure:
            left, right = literal.atom.left, literal.atom.right
            if literal.positive:
                # An equality between two distinct representatives is never
                # entailed: the left-hand side is satisfiable with all
                # representatives denoting distinct locations.
                if left != right:
                    return False
            else:
                if left == right:
                    return False
                if not self._entails_disequality(state, left, right, budget):
                    return False
        state = drop_rhs_pure(state)

        # ---------------- spatial matching ----------------------------------
        return self._match(state, budget)

    # ------------------------------------------------------------------
    @staticmethod
    def _propagate_lhs(state: SequentState):
        """One step of left-hand side normalisation, or ``None`` if already normal.

        Returns ``("valid", None)`` when the left-hand side is inconsistent,
        ``("assume", (x, y))`` when an equality is forced, and
        ``("split", ((x, y), (x, z)))`` when a case split is required.
        """
        atoms = state.lhs_atoms
        by_address = {}
        for atom in atoms:
            if isinstance(atom, PointsTo) and atom.source.is_nil:
                return ("valid", None)
            if isinstance(atom, ListSegment) and atom.source.is_nil:
                return ("assume", (atom.target, NIL))
            previous = by_address.get(atom.source)
            if previous is None:
                by_address[atom.source] = atom
                continue
            first_next = isinstance(previous, PointsTo)
            second_next = isinstance(atom, PointsTo)
            if first_next and second_next:
                return ("valid", None)
            if first_next and not second_next:
                return ("assume", (atom.source, atom.target))
            if second_next and not first_next:
                return ("assume", (previous.source, previous.target))
            return (
                "split",
                ((previous.source, previous.target), (atom.source, atom.target)),
            )
        return None

    # ------------------------------------------------------------------
    def _entails_disequality(
        self, state: SequentState, left: Const, right: Const, budget: ResourceBudget
    ) -> bool:
        """Does the left-hand side entail ``left != right``?

        Checked by refutation: the disequality is entailed exactly when adding
        the corresponding equality makes the left-hand side unsatisfiable.
        """
        assumed = state_with_equality(state, left, right)
        return not self._lhs_satisfiable(assumed, budget)

    def _lhs_satisfiable(self, state: Optional[SequentState], budget: ResourceBudget) -> bool:
        """Is the left-hand side (pure and spatial) satisfiable?"""
        budget.tick()
        if state is None:
            return False
        action = self._propagate_lhs(state)
        if action is None:
            # A normal left-hand side is always satisfiable: map every
            # representative to a distinct location and realise every segment
            # as a single cell.
            return True
        kind, payload = action
        if kind == "valid":
            return False
        if kind == "assume":
            left, right = payload
            return self._lhs_satisfiable(state_with_equality(state, left, right), budget)
        (a1, b1), (a2, b2) = payload
        return self._lhs_satisfiable(
            state_with_equality(state, a1, b1), budget
        ) or self._lhs_satisfiable(state_with_equality(state, a2, b2), budget)

    # ------------------------------------------------------------------
    def _match(self, state: Optional[SequentState], budget: ResourceBudget) -> bool:
        """Subtractive matching of the right-hand atoms against the left-hand atoms.

        Matching consumes atoms iteratively.  Whenever it needs an aliasing
        fact that the current pure context does not decide, it **case splits**:
        the two strengthened sequents are re-proved from the *unconsumed*
        state, because atoms already matched still constrain which aliasing
        arrangements are possible.  Each split permanently decides one pair of
        constants, so the recursion terminates.
        """
        budget.tick()
        if state is None:
            return True

        lhs: List[SpatialAtom] = list(state.lhs_atoms)
        rhs: List[SpatialAtom] = list(state.rhs_atoms)

        def split(left: Const, right: Const) -> bool:
            # Restart from the full (unconsumed) sequent with the pair decided.
            return self._valid(state_with_equality(state, left, right), budget) and self._valid(
                state_with_disequality(state, left, right), budget
            )

        while rhs:
            budget.tick()
            atom = rhs[0]
            by_address = {candidate.source: candidate for candidate in lhs}

            if isinstance(atom, PointsTo):
                cell = by_address.get(atom.source)
                if cell is None:
                    return False
                if isinstance(cell, ListSegment):
                    if state.distinct(cell.source, cell.target):
                        # A definitely non-empty segment never entails a single cell.
                        return False
                    return split(cell.source, cell.target)
                if cell.target != atom.target:
                    return False
                lhs.remove(cell)
                rhs.pop(0)
                continue

            # The demanded atom is a list segment lseg(x, z).
            if atom.source == atom.target:
                rhs.pop(0)
                continue
            if not state.distinct(atom.source, atom.target):
                # Unknown emptiness of the demanded segment: case split.
                return split(atom.source, atom.target)

            cell = by_address.get(atom.source)
            if cell is None:
                return False

            if isinstance(cell, PointsTo):
                lhs.remove(cell)
                rhs[0] = ListSegment(cell.target, atom.target)
                continue

            # The producer is itself a list segment.
            if cell.target == atom.target:
                # Identical segments (same end point): frame them away.  The
                # demanded segment's portion is forced to be exactly the
                # producing segment's portion, so no side condition is needed.
                lhs.remove(cell)
                rhs.pop(0)
                continue
            if not state.distinct(cell.source, cell.target):
                return split(cell.source, cell.target)

            # The guard asks whether the demanded end point is guaranteed not to
            # lie strictly inside the producing segment: it is when it is nil
            # or allocated by *any other* atom of the (full, unconsumed)
            # left-hand side, since separation keeps those cells disjoint.
            target = atom.target
            guard = target.is_nil or any(
                other is not cell
                and other.source == target
                and (isinstance(other, PointsTo) or state.distinct(other.source, other.target))
                for other in state.lhs_atoms
            )
            if guard:
                lhs.remove(cell)
                rhs[0] = ListSegment(cell.target, atom.target)
                continue

            anchor = next(
                (other for other in state.lhs_atoms if other is not cell and other.source == target),
                None,
            )
            if (
                anchor is not None
                and isinstance(anchor, ListSegment)
                and not state.distinct(anchor.source, anchor.target)
            ):
                # The guard hinges on whether the segment at ``target`` is empty.
                return split(anchor.source, anchor.target)

            # The demanded segment should stop at a location the left-hand side
            # never allocates: re-routing the producing segment through that
            # location yields a countermodel.
            return False

        # Everything demanded has been produced; any leftover heap on the left
        # (including a possibly-empty segment) admits a model with a non-empty
        # remainder, which the empty right-hand side rejects.
        return not lhs
