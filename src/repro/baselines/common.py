"""Shared machinery for the baseline provers.

Both baselines manipulate *sequent states*: a set of equalities, a set of
disequalities and multisets of spatial atoms for the two sides of the
entailment.  The pure part is handled with a small union-find, and atoms are
kept normalised (every constant replaced by its class representative, with
``nil`` always chosen as the representative of its class).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.logic.atoms import EqAtom, SpatialAtom
from repro.logic.formula import Entailment, PureLiteral
from repro.logic.terms import Const


class ResourceExhausted(RuntimeError):
    """Raised when a baseline exceeds its step or time budget."""


def sll_only(entailment: Entailment) -> bool:
    """True when every spatial atom belongs to the singly-linked theory.

    The baselines reimplement tools that only ever spoke the ``next``/``lseg``
    vocabulary; other theories are out of their scope and must answer
    ``unknown`` rather than misread the atoms.
    """
    return all(
        atom.theory == "sll"
        for sigma in (entailment.lhs_spatial, entailment.rhs_spatial)
        for atom in sigma
    )


@dataclass
class ResourceBudget:
    """A combined step and wall-clock budget shared across a proof search."""

    max_steps: Optional[int] = None
    max_seconds: Optional[float] = None
    steps: int = 0
    _deadline: Optional[float] = field(default=None, repr=False)

    def start(self) -> None:
        """Arm the wall-clock deadline (called once per ``prove``)."""
        if self.max_seconds is not None:
            self._deadline = time.perf_counter() + self.max_seconds

    def tick(self, amount: int = 1) -> None:
        """Consume budget; raises :class:`ResourceExhausted` when spent."""
        self.steps += amount
        if self.max_steps is not None and self.steps > self.max_steps:
            raise ResourceExhausted("step budget of {} exceeded".format(self.max_steps))
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise ResourceExhausted("time budget of {}s exceeded".format(self.max_seconds))


class BaselineVerdict(enum.Enum):
    """Answers a baseline prover can give."""

    VALID = "valid"
    INVALID = "invalid"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


@dataclass
class BaselineResult:
    """Outcome of a baseline prover run."""

    verdict: BaselineVerdict
    entailment: Entailment
    steps: int = 0
    elapsed_seconds: float = 0.0

    @property
    def is_valid(self) -> bool:
        """True when the baseline proved the entailment."""
        return self.verdict is BaselineVerdict.VALID

    @property
    def is_invalid(self) -> bool:
        """True when the baseline refuted the entailment."""
        return self.verdict is BaselineVerdict.INVALID


# ---------------------------------------------------------------------------
# Union-find over constants
# ---------------------------------------------------------------------------


class UnionFind:
    """A small union-find with ``nil`` forced to be its class representative."""

    def __init__(self, equalities: Iterable[Tuple[Const, Const]] = ()):
        self._parent: Dict[Const, Const] = {}
        for left, right in equalities:
            self.union(left, right)

    def find(self, constant: Const) -> Const:
        """The representative of ``constant``'s class."""
        parent = self._parent.get(constant, constant)
        if parent == constant:
            return constant
        root = self.find(parent)
        self._parent[constant] = root
        return root

    def union(self, left: Const, right: Const) -> None:
        """Merge the classes of the two constants (``nil`` stays a representative)."""
        root_left, root_right = self.find(left), self.find(right)
        if root_left == root_right:
            return
        # Keep nil as a representative so that substitution never renames nil away.
        if root_left.is_nil:
            self._parent[root_right] = root_left
        elif root_right.is_nil:
            self._parent[root_left] = root_right
        elif root_left.name <= root_right.name:
            self._parent[root_right] = root_left
        else:
            self._parent[root_left] = root_right

    def same(self, left: Const, right: Const) -> bool:
        """True when the two constants are known equal."""
        return self.find(left) == self.find(right)

    def copy(self) -> "UnionFind":
        """An independent copy."""
        clone = UnionFind()
        clone._parent = dict(self._parent)
        return clone


# ---------------------------------------------------------------------------
# Sequent states
# ---------------------------------------------------------------------------


def canonical_pair(left: Const, right: Const) -> Tuple[Const, Const]:
    """A canonical unordered pair of constants (used as a disequality key)."""
    return (left, right) if left.name <= right.name else (right, left)


@dataclass(frozen=True)
class SequentState:
    """A normalised sequent ``Pi /\\ Sigma |- Pi' /\\ Sigma'``.

    ``equalities`` are kept only implicitly: all constants in the state are
    already replaced by their class representatives, so the equalities are
    exactly the trivial ones.  ``disequalities`` is a set of canonical pairs of
    representatives.  The right-hand pure part is kept as literals over
    representatives.
    """

    disequalities: FrozenSet[Tuple[Const, Const]]
    lhs_atoms: Tuple[SpatialAtom, ...]
    rhs_pure: Tuple[PureLiteral, ...]
    rhs_atoms: Tuple[SpatialAtom, ...]

    def distinct(self, left: Const, right: Const) -> bool:
        """Known-distinct test (an explicit disequality between the representatives)."""
        return canonical_pair(left, right) in self.disequalities


def normalize_state(
    union_find: UnionFind,
    disequalities: Iterable[Tuple[Const, Const]],
    lhs_atoms: Iterable[SpatialAtom],
    rhs_pure: Iterable[PureLiteral],
    rhs_atoms: Iterable[SpatialAtom],
) -> Optional[SequentState]:
    """Normalise a sequent: substitute representatives and drop trivial atoms.

    Returns ``None`` when the pure left-hand side is already inconsistent
    (some disequality relates two equal constants), in which case the
    entailment holds vacuously.
    """
    new_diseqs: Set[Tuple[Const, Const]] = set()
    for left, right in disequalities:
        rep_left, rep_right = union_find.find(left), union_find.find(right)
        if rep_left == rep_right:
            return None
        new_diseqs.add(canonical_pair(rep_left, rep_right))

    def rename(atom: SpatialAtom) -> SpatialAtom:
        return atom.with_ends(union_find.find(atom.source), union_find.find(atom.target))

    new_lhs = tuple(
        renamed
        for renamed in (rename(atom) for atom in lhs_atoms)
        if not renamed.is_trivial
    )
    new_rhs = tuple(rename(atom) for atom in rhs_atoms)
    new_rhs_pure = tuple(
        PureLiteral(
            EqAtom(union_find.find(literal.atom.left), union_find.find(literal.atom.right)),
            literal.positive,
        )
        for literal in rhs_pure
    )
    return SequentState(frozenset(new_diseqs), new_lhs, new_rhs_pure, new_rhs)


def initial_state(entailment: Entailment) -> Optional[SequentState]:
    """Build the initial sequent state from an entailment (``None`` if the LHS pure part is inconsistent)."""
    union_find = UnionFind(
        (literal.atom.left, literal.atom.right)
        for literal in entailment.lhs_pure
        if literal.positive
    )
    disequalities = [
        (literal.atom.left, literal.atom.right)
        for literal in entailment.lhs_pure
        if not literal.positive
    ]
    return normalize_state(
        union_find,
        disequalities,
        entailment.lhs_spatial.atoms,
        entailment.rhs_pure,
        entailment.rhs_spatial.atoms,
    )


def state_with_equality(state: SequentState, left: Const, right: Const) -> Optional[SequentState]:
    """The state obtained by assuming ``left = right`` (``None`` when that is inconsistent)."""
    union_find = UnionFind([(left, right)])
    return normalize_state(
        union_find, state.disequalities, state.lhs_atoms, state.rhs_pure, state.rhs_atoms
    )


def state_with_disequality(state: SequentState, left: Const, right: Const) -> Optional[SequentState]:
    """The state obtained by assuming ``left != right`` (``None`` when that is inconsistent)."""
    if left == right:
        return None
    union_find = UnionFind()
    return normalize_state(
        union_find,
        set(state.disequalities) | {canonical_pair(left, right)},
        state.lhs_atoms,
        state.rhs_pure,
        state.rhs_atoms,
    )


def replace_rhs(state: SequentState, rhs_atoms: Iterable[SpatialAtom]) -> SequentState:
    """A copy of the state with the right-hand spatial atoms replaced."""
    return SequentState(state.disequalities, state.lhs_atoms, state.rhs_pure, tuple(rhs_atoms))


def replace_lhs(state: SequentState, lhs_atoms: Iterable[SpatialAtom]) -> SequentState:
    """A copy of the state with the left-hand spatial atoms replaced."""
    return SequentState(state.disequalities, tuple(lhs_atoms), state.rhs_pure, state.rhs_atoms)


def drop_rhs_pure(state: SequentState) -> SequentState:
    """A copy of the state with the right-hand pure literals removed."""
    return SequentState(state.disequalities, state.lhs_atoms, (), state.rhs_atoms)
