"""The Table 2 random distribution: folding entailments ``Sigma |- Sigma'``.

Quoting the paper: fix ``n`` program variables and draw a random permutation
``pi`` of their indices without fixed points.  The left-hand side is

    Sigma = f(x1, x_pi(1)) * ... * f(xn, x_pi(n))

where each ``f`` is independently ``next`` (with probability ``pnext``) or
``lseg``.  By construction ``Sigma`` is well-formed.  The right-hand side
``Sigma'`` starts as a copy of ``Sigma`` and paths are then randomly *folded*:
repeatedly pick a variable ``xi`` that is the address of a not-yet-folded
atom, follow the longest run of not-yet-folded atoms starting there and
replace the whole run by the single atom ``lseg(xi, xi*)`` where ``xi*`` is
the last variable reached.  The process stops when every atom has been folded.

Checking ``Sigma |- Sigma'`` exercises the unfolding rules (the outer loop of
the Figure 3 algorithm); the parameter ``pnext`` tunes the proportion of valid
instances (a fold over a run containing only ``lseg`` atoms need not be
valid, because the folded segment could stop early).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.logic.atoms import ListSegment, PointsTo, SpatialAtom, SpatialFormula
from repro.logic.formula import Entailment
from repro.logic.terms import Const, variable_pool


@dataclass(frozen=True)
class FoldParameters:
    """Parameters of the Table 2 distribution."""

    variables: int
    p_next: float = 0.7

    @classmethod
    def paper(cls, variables: int) -> "FoldParameters":
        """The parameters used for Table 2 (``pnext = 0.7`` throughout)."""
        return cls(variables=variables, p_next=0.7)


def _fixed_point_free_permutation(count: int, rng: random.Random) -> List[int]:
    """A random permutation of ``range(count)`` without fixed points (a derangement)."""
    if count < 2:
        raise ValueError("a fixed-point-free permutation needs at least two elements")
    while True:
        permutation = list(range(count))
        rng.shuffle(permutation)
        if all(permutation[i] != i for i in range(count)):
            return permutation


def random_fold_entailment(
    parameters: FoldParameters, rng: Optional[random.Random] = None
) -> Entailment:
    """Draw one folding entailment ``Sigma |- Sigma'`` from the Table 2 distribution."""
    rng = rng or random.Random()
    pool = variable_pool(parameters.variables)
    permutation = _fixed_point_free_permutation(len(pool), rng)

    lhs_atoms: List[SpatialAtom] = []
    successor: Dict[Const, Const] = {}
    for index, source in enumerate(pool):
        target = pool[permutation[index]]
        successor[source] = target
        if rng.random() < parameters.p_next:
            lhs_atoms.append(PointsTo(source, target))
        else:
            lhs_atoms.append(ListSegment(source, target))

    # Fold maximal simple paths of yet-unfolded atoms in the copy of Sigma.
    # The walk from the picked variable keeps absorbing atoms as long as the
    # next atom is still unfolded and extending keeps the path simple (it never
    # revisits a variable); the run is replaced by a single lseg from the start
    # to the last variable reached.
    unfolded = {atom.source for atom in lhs_atoms}
    rhs_atoms: List[SpatialAtom] = []
    candidates = list(pool)
    rng.shuffle(candidates)
    for start in candidates:
        if start not in unfolded:
            continue
        current = start
        visited = {start}
        while current in unfolded:
            following = successor[current]
            if following in visited:
                break
            unfolded.discard(current)
            visited.add(following)
            current = following
        rhs_atoms.append(ListSegment(start, current))

    return Entailment(
        lhs_pure=(),
        lhs_spatial=SpatialFormula(lhs_atoms),
        rhs_pure=(),
        rhs_spatial=SpatialFormula(rhs_atoms),
    )


def random_fold_batch(
    parameters: FoldParameters, count: int, seed: Optional[int] = None
) -> List[Entailment]:
    """Draw a reproducible batch of entailments from the Table 2 distribution."""
    rng = random.Random(seed)
    return [random_fold_entailment(parameters, rng) for _ in range(count)]
