"""Workload generators for the paper's evaluation (Section 6).

Three workloads are used:

* :mod:`repro.benchgen.random_unsat` — the Table 1 distribution: random
  entailments of the form ``Pi /\\ Sigma |- false`` whose validity reduces to
  the (un)satisfiability of the left-hand side; parameters ``Plseg`` and
  ``Pneq`` control the density of segments and disequalities, the latter being
  calibrated so that roughly half of the instances are valid;
* :mod:`repro.benchgen.random_fold` — the Table 2 distribution: a random
  functional graph over the variables is written as a spatial formula and the
  right-hand side is obtained by folding maximal paths into single ``lseg``
  atoms; the parameter ``pnext`` controls the mix of ``next``/``lseg`` atoms
  and thereby the proportion of valid instances;
* :mod:`repro.benchgen.cloning` — the Table 3 transformation: the conjunction
  of ``k`` variable-renamed copies of a verification condition, which scales
  the difficulty of the Smallfoot-example VCs.
"""

from repro.benchgen.cloning import clone_entailment
from repro.benchgen.random_fold import FoldParameters, random_fold_entailment
from repro.benchgen.random_unsat import UnsatParameters, random_unsat_entailment

__all__ = [
    "UnsatParameters",
    "random_unsat_entailment",
    "FoldParameters",
    "random_fold_entailment",
    "clone_entailment",
]
