"""The Table 3 cloning transformation.

The verification conditions generated from the example programs are easy for
all three provers, so the paper scales their difficulty by *cloning*: for a
verification condition ``Pi /\\ Sigma |- Pi' /\\ Sigma'`` and a factor ``k``,
the cloned entailment is

    Pi_1 /\\ ... /\\ Pi_k /\\ Sigma_1 * ... * Sigma_k
        |-  Pi'_1 /\\ ... /\\ Pi'_k /\\ Sigma'_1 * ... * Sigma'_k

where every copy has its variables renamed apart (``nil`` is shared).  The
cloned entailment is valid exactly when the original one is, but its size — and
with it the amount of non-deterministic choice available to an unguided proof
search — grows linearly in ``k``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.logic.atoms import SpatialFormula
from repro.logic.formula import Entailment, PureLiteral
from repro.logic.terms import Const
from repro.utils.naming import rename_suffix


def _copy_mapping(entailment: Entailment, copy_index: int) -> Dict[Const, Const]:
    return {
        constant: Const(rename_suffix(constant.name, copy_index))
        for constant in entailment.variables()
    }


def clone_entailment(entailment: Entailment, copies: int) -> Entailment:
    """Conjoin ``copies`` variable-renamed copies of ``entailment``.

    With ``copies == 1`` the entailment is returned with its variables renamed
    (so that results are comparable across clone factors); larger factors
    produce the conjunction described in Section 6 of the paper.
    """
    if copies < 1:
        raise ValueError("the number of copies must be at least 1")

    lhs_pure: List[PureLiteral] = []
    rhs_pure: List[PureLiteral] = []
    lhs_spatial = SpatialFormula()
    rhs_spatial = SpatialFormula()

    for index in range(1, copies + 1):
        mapping = _copy_mapping(entailment, index)
        renamed = entailment.rename(mapping)
        lhs_pure.extend(renamed.lhs_pure)
        rhs_pure.extend(renamed.rhs_pure)
        lhs_spatial = lhs_spatial.star(renamed.lhs_spatial)
        rhs_spatial = rhs_spatial.star(renamed.rhs_spatial)

    return Entailment(tuple(lhs_pure), lhs_spatial, tuple(rhs_pure), rhs_spatial)
