"""The Table 1 random distribution: entailments ``Pi /\\ Sigma |- false``.

Quoting the paper: with ``n`` program variables ``Var = {x1, ..., xn}``,

* for every ordered pair ``i != j``, the atom ``lseg(xi, xj)`` is included in
  ``Sigma`` with probability ``Plseg``;
* for every unordered pair ``i < j``, the disequality ``xi != xj`` is included
  in ``Pi`` with probability ``Pneq``.

The resulting entailment ``Pi /\\ Sigma |- false`` is valid exactly when the
left-hand side is unsatisfiable, which only requires equality, normalisation
and well-formedness reasoning (the inner loop of the Figure 3 algorithm).  The
probability ``Pneq`` is used to calibrate the proportion of valid instances to
roughly one half; the parameter tables below reproduce the per-``n`` values of
``Plseg``/``Pneq`` reported in Table 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.logic.formula import Entailment, lseg, neq
from repro.logic.terms import variable_pool


#: The per-variable-count parameters reported in Table 1 of the paper.
TABLE1_PARAMETERS: Dict[int, Tuple[float, float]] = {
    10: (0.10, 0.20),
    11: (0.09, 0.15),
    12: (0.09, 0.11),
    13: (0.08, 0.11),
    14: (0.07, 0.11),
    15: (0.06, 0.12),
    16: (0.05, 0.17),
    17: (0.05, 0.13),
    18: (0.04, 0.20),
    19: (0.04, 0.15),
    20: (0.04, 0.11),
}


@dataclass(frozen=True)
class UnsatParameters:
    """Parameters of the Table 1 distribution."""

    variables: int
    p_lseg: float
    p_neq: float

    @classmethod
    def paper(cls, variables: int) -> "UnsatParameters":
        """The calibrated parameters used for Table 1 (``n`` between 10 and 20)."""
        if variables not in TABLE1_PARAMETERS:
            raise ValueError(
                "the paper only reports parameters for 10..20 variables, not {}".format(variables)
            )
        p_lseg, p_neq = TABLE1_PARAMETERS[variables]
        return cls(variables=variables, p_lseg=p_lseg, p_neq=p_neq)


def random_unsat_entailment(
    parameters: UnsatParameters, rng: Optional[random.Random] = None
) -> Entailment:
    """Draw one entailment ``Pi /\\ Sigma |- false`` from the Table 1 distribution."""
    rng = rng or random.Random()
    pool = variable_pool(parameters.variables)

    conjuncts: List = []
    for i, source in enumerate(pool):
        for j, target in enumerate(pool):
            if i != j and rng.random() < parameters.p_lseg:
                conjuncts.append(lseg(source, target))
    for i in range(len(pool)):
        for j in range(i + 1, len(pool)):
            if rng.random() < parameters.p_neq:
                conjuncts.append(neq(pool[i], pool[j]))

    return Entailment.with_false_rhs(conjuncts)


def random_unsat_batch(
    parameters: UnsatParameters, count: int, seed: Optional[int] = None
) -> List[Entailment]:
    """Draw a reproducible batch of entailments from the Table 1 distribution."""
    rng = random.Random(seed)
    return [random_unsat_entailment(parameters, rng) for _ in range(count)]
