"""A small harness that reproduces the layout of the paper's Tables 1-3.

The paper reports, for each row of each table, the total wall-clock time each
prover spends on a batch of entailments, showing ``(p%)`` — the fraction of
instances solved — when the prover hits its time budget.  The harness below
runs the three provers (SLP, the Smallfoot-style baseline and the jStar-style
baseline) over a batch with a configurable per-batch budget and renders the
same row format.

The benchmark scripts in ``benchmarks/`` use this module both for the
pytest-benchmark measurements and for printing the full comparison tables that
``EXPERIMENTS.md`` records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.baselines.jstar import JStarProver
from repro.baselines.smallfoot import SmallfootProver
from repro.core.batch import BatchProver
from repro.core.cache import PersistentProofCache, ProofCache
from repro.core.config import ProverConfig
from repro.core.prover import Prover, ProverTimeout
from repro.core.result import ProofResult
from repro.logic.formula import Entailment


@dataclass
class ProverRun:
    """The result of running one prover over one batch of entailments."""

    name: str
    elapsed: float = 0.0
    attempted: int = 0
    solved: int = 0
    valid: int = 0
    timed_out: bool = False

    @property
    def cell(self) -> str:
        """The paper-style table cell: seconds, or ``(p%)`` on a timeout."""
        if self.timed_out:
            fraction = 0.0 if self.attempted == 0 else self.solved / self.attempted
            return "({:.0f}%)".format(100.0 * fraction)
        return "{:.2f}".format(self.elapsed)


def _slp_checker(
    config: Optional[ProverConfig] = None, max_seconds: Optional[float] = None
) -> Callable[[Entailment], Optional[bool]]:
    prover = Prover(
        (config or ProverConfig()).for_benchmarking().with_timeout(max_seconds)
    )

    def check(entailment: Entailment) -> Optional[bool]:
        try:
            return prover.prove(entailment).is_valid
        except ProverTimeout:
            # Undecided within the per-instance budget: unsolved, exactly
            # like the baselines, so the paper-style (p%) cells are honest.
            return None

    return check


def _smallfoot_checker(max_seconds: float = 5.0) -> Callable[[Entailment], Optional[bool]]:
    prover = SmallfootProver(max_seconds=max_seconds)

    def check(entailment: Entailment) -> Optional[bool]:
        result = prover.prove(entailment)
        if result.verdict.value == "unknown":
            return None
        return result.is_valid

    return check


def _jstar_checker(max_seconds: float = 5.0) -> Callable[[Entailment], Optional[bool]]:
    prover = JStarProver(max_seconds=max_seconds)

    def check(entailment: Entailment) -> Optional[bool]:
        result = prover.prove(entailment)
        # The jStar rule set is incomplete: "unknown" counts as an answer (it
        # is what the real tool reports), so the run is never a timeout, it is
        # simply unable to prove some instances.
        return result.is_valid

    return check


def default_checkers(
    per_instance_timeout: float = 5.0,
) -> Dict[str, Callable[[Entailment], Optional[bool]]]:
    """The three provers compared throughout the evaluation.

    Every checker — SLP included — honours ``per_instance_timeout`` by
    answering ``None`` for instances it cannot decide within the budget.
    """
    return {
        "jstar": _jstar_checker(per_instance_timeout),
        "smallfoot": _smallfoot_checker(per_instance_timeout),
        "slp": _slp_checker(max_seconds=per_instance_timeout),
    }


def run_batch(
    name: str,
    check: Callable[[Entailment], Optional[bool]],
    entailments: Sequence[Entailment],
    budget_seconds: Optional[float] = None,
) -> ProverRun:
    """Run one prover over a batch, honouring a total wall-clock budget.

    The checker returns ``True``/``False`` for a decided instance and ``None``
    when it gave up (only the Smallfoot baseline does, when its per-instance
    budget is exhausted); undecided instances count as unsolved.
    """
    run = ProverRun(name=name)
    start = time.perf_counter()
    for entailment in entailments:
        run.attempted += 1
        answer = check(entailment)
        if answer is not None:
            run.solved += 1
            if answer:
                run.valid += 1
        run.elapsed = time.perf_counter() - start
        if budget_seconds is not None and run.elapsed > budget_seconds:
            break
    run.elapsed = time.perf_counter() - start
    _finalise_timeout(run, len(entailments))
    return run


def _finalise_timeout(run: ProverRun, total: int) -> None:
    """One (p%)-cell rule for every prover column, so cells stay comparable.

    A run shows the paper-style ``(p%)`` cell when it could not decide the
    whole batch — the wall budget cut it off before attempting every
    instance, or individual instances exhausted their own budget.
    """
    run.timed_out = run.attempted < total or run.solved < run.attempted


def run_slp_batch(
    entailments: Sequence[Entailment],
    per_instance_timeout: Optional[float] = 5.0,
    budget_seconds: Optional[float] = None,
    jobs: int = 1,
    cache: Union[bool, ProofCache] = True,
    config: Optional[ProverConfig] = None,
    name: str = "slp",
    store_path: Optional[str] = None,
) -> ProverRun:
    """Run SLP over a batch through the batch engine.

    This is the SLP analogue of :func:`run_batch`: the per-instance budget is
    enforced inside the prover (instances that exceed it count as unsolved),
    results stream back as they complete so the wall-clock budget cuts the
    run off promptly even with several workers in flight, and alpha-equivalent
    instances are answered from the proof cache.

    ``store_path`` backs the cache with a persistent on-disk proof store
    (:mod:`repro.core.store`) owned by this call — the cross-process
    warm-restart benchmark runs the same batch twice against one store path
    from two "coordinator" lifetimes and measures the disk hits.
    """
    prover_config = (
        (config or ProverConfig()).for_benchmarking().with_timeout(per_instance_timeout)
    )
    persistent: Optional[PersistentProofCache] = None
    if store_path is not None:
        if cache is not True:
            raise ValueError("store_path replaces the cache argument; pass one or the other")
        persistent = PersistentProofCache(store_path)
        cache = persistent
    run = ProverRun(name=name)
    start = time.perf_counter()
    try:
        with BatchProver(prover_config, jobs=jobs, cache=cache) as batch:
            for _, result in batch.iter_results(entailments):
                run.attempted += 1
                # Structured failures (timeout/oom/quarantined crash) count as
                # unsolved, exactly like the baselines' ``None`` answers.
                if isinstance(result, ProofResult):
                    run.solved += 1
                    if result.is_valid:
                        run.valid += 1
                run.elapsed = time.perf_counter() - start
                if budget_seconds is not None and run.elapsed > budget_seconds:
                    break
    finally:
        if persistent is not None:
            persistent.close()
    run.elapsed = time.perf_counter() - start
    _finalise_timeout(run, len(entailments))
    return run


@dataclass
class TableRow:
    """One row of a paper-style comparison table."""

    label: str
    runs: Dict[str, ProverRun] = field(default_factory=dict)
    extra: Dict[str, str] = field(default_factory=dict)

    def cells(self, order: Sequence[str]) -> List[str]:
        return [self.runs[name].cell if name in self.runs else "-" for name in order]


def format_table(
    title: str,
    rows: Sequence[TableRow],
    prover_order: Sequence[str] = ("jstar", "smallfoot", "slp"),
    extra_columns: Sequence[str] = (),
) -> str:
    """Render rows in the style of the paper's tables."""
    header = ["", *extra_columns, *prover_order]
    lines = [title, "  ".join("{:>12}".format(column) for column in header)]
    for row in rows:
        cells = [row.label]
        cells.extend(row.extra.get(column, "-") for column in extra_columns)
        cells.extend(row.cells(prover_order))
        lines.append("  ".join("{:>12}".format(cell) for cell in cells))
    return "\n".join(lines)


def compare_on_batch(
    label: str,
    entailments: Sequence[Entailment],
    per_instance_timeout: float = 5.0,
    budget_seconds: Optional[float] = None,
    extra: Optional[Dict[str, str]] = None,
    slp_jobs: int = 1,
    slp_cache: Union[bool, ProofCache] = False,
    slp_store_path: Optional[str] = None,
) -> TableRow:
    """Run all three provers on a batch and collect a table row.

    The SLP column goes through :class:`~repro.core.batch.BatchProver`:
    ``slp_jobs`` parallelises it and ``slp_cache`` controls alpha-equivalence
    memoisation.  Caching defaults to **off** here so that the paper-style
    columns keep the one-prove-per-instance methodology the baselines use;
    opt in (or pass a shared :class:`ProofCache`) when measuring the batch
    engine itself rather than the underlying prover.  ``slp_store_path``
    additionally backs the cache with a persistent store (pass it with
    ``slp_cache=True``).
    """
    row = TableRow(label=label, extra=dict(extra or {}))
    for name, check in default_checkers(per_instance_timeout).items():
        if name == "slp":
            row.runs[name] = run_slp_batch(
                entailments,
                per_instance_timeout=per_instance_timeout,
                budget_seconds=budget_seconds,
                jobs=slp_jobs,
                cache=slp_cache,
                store_path=slp_store_path,
            )
        else:
            row.runs[name] = run_batch(name, check, entailments, budget_seconds)
    return row
