"""A small harness that reproduces the layout of the paper's Tables 1-3.

The paper reports, for each row of each table, the total wall-clock time each
prover spends on a batch of entailments, showing ``(p%)`` — the fraction of
instances solved — when the prover hits its time budget.  The harness below
runs the three provers (SLP, the Smallfoot-style baseline and the jStar-style
baseline) over a batch with a configurable per-batch budget and renders the
same row format.

The benchmark scripts in ``benchmarks/`` use this module both for the
pytest-benchmark measurements and for printing the full comparison tables that
``EXPERIMENTS.md`` records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.baselines.jstar import JStarProver
from repro.baselines.smallfoot import SmallfootProver
from repro.core.config import ProverConfig
from repro.core.prover import Prover
from repro.logic.formula import Entailment


@dataclass
class ProverRun:
    """The result of running one prover over one batch of entailments."""

    name: str
    elapsed: float = 0.0
    attempted: int = 0
    solved: int = 0
    valid: int = 0
    timed_out: bool = False

    @property
    def cell(self) -> str:
        """The paper-style table cell: seconds, or ``(p%)`` on a timeout."""
        if self.timed_out:
            fraction = 0.0 if self.attempted == 0 else self.solved / self.attempted
            return "({:.0f}%)".format(100.0 * fraction)
        return "{:.2f}".format(self.elapsed)


def _slp_checker(config: Optional[ProverConfig] = None) -> Callable[[Entailment], Optional[bool]]:
    prover = Prover((config or ProverConfig()).for_benchmarking())

    def check(entailment: Entailment) -> Optional[bool]:
        return prover.prove(entailment).is_valid

    return check


def _smallfoot_checker(max_seconds: float = 5.0) -> Callable[[Entailment], Optional[bool]]:
    prover = SmallfootProver(max_seconds=max_seconds)

    def check(entailment: Entailment) -> Optional[bool]:
        result = prover.prove(entailment)
        if result.verdict.value == "unknown":
            return None
        return result.is_valid

    return check


def _jstar_checker(max_seconds: float = 5.0) -> Callable[[Entailment], Optional[bool]]:
    prover = JStarProver(max_seconds=max_seconds)

    def check(entailment: Entailment) -> Optional[bool]:
        result = prover.prove(entailment)
        # The jStar rule set is incomplete: "unknown" counts as an answer (it
        # is what the real tool reports), so the run is never a timeout, it is
        # simply unable to prove some instances.
        return result.is_valid

    return check


def default_checkers(
    per_instance_timeout: float = 5.0,
) -> Dict[str, Callable[[Entailment], Optional[bool]]]:
    """The three provers compared throughout the evaluation."""
    return {
        "jstar": _jstar_checker(per_instance_timeout),
        "smallfoot": _smallfoot_checker(per_instance_timeout),
        "slp": _slp_checker(),
    }


def run_batch(
    name: str,
    check: Callable[[Entailment], Optional[bool]],
    entailments: Sequence[Entailment],
    budget_seconds: Optional[float] = None,
) -> ProverRun:
    """Run one prover over a batch, honouring a total wall-clock budget.

    The checker returns ``True``/``False`` for a decided instance and ``None``
    when it gave up (only the Smallfoot baseline does, when its per-instance
    budget is exhausted); undecided instances count as unsolved.
    """
    run = ProverRun(name=name)
    start = time.perf_counter()
    for entailment in entailments:
        run.attempted += 1
        answer = check(entailment)
        if answer is not None:
            run.solved += 1
            if answer:
                run.valid += 1
        run.elapsed = time.perf_counter() - start
        if budget_seconds is not None and run.elapsed > budget_seconds:
            run.timed_out = run.attempted < len(entailments) or answer is None
            break
    run.elapsed = time.perf_counter() - start
    return run


@dataclass
class TableRow:
    """One row of a paper-style comparison table."""

    label: str
    runs: Dict[str, ProverRun] = field(default_factory=dict)
    extra: Dict[str, str] = field(default_factory=dict)

    def cells(self, order: Sequence[str]) -> List[str]:
        return [self.runs[name].cell if name in self.runs else "-" for name in order]


def format_table(
    title: str,
    rows: Sequence[TableRow],
    prover_order: Sequence[str] = ("jstar", "smallfoot", "slp"),
    extra_columns: Sequence[str] = (),
) -> str:
    """Render rows in the style of the paper's tables."""
    header = ["", *extra_columns, *prover_order]
    lines = [title, "  ".join("{:>12}".format(column) for column in header)]
    for row in rows:
        cells = [row.label]
        cells.extend(row.extra.get(column, "-") for column in extra_columns)
        cells.extend(row.cells(prover_order))
        lines.append("  ".join("{:>12}".format(cell) for cell in cells))
    return "\n".join(lines)


def compare_on_batch(
    label: str,
    entailments: Sequence[Entailment],
    per_instance_timeout: float = 5.0,
    budget_seconds: Optional[float] = None,
    extra: Optional[Dict[str, str]] = None,
) -> TableRow:
    """Run all three provers on a batch and collect a table row."""
    row = TableRow(label=label, extra=dict(extra or {}))
    for name, check in default_checkers(per_instance_timeout).items():
        row.runs[name] = run_batch(name, check, entailments, budget_seconds)
    return row
