"""Constant symbols of the fragment.

The separation-logic fragment of Berdine, Calcagno and O'Hearn that the paper
works with is *ground*: formulas are built from a finite set ``Var`` of
constant symbols (program variables) plus the distinguished constant ``nil``
denoting the null pointer.  There are no function symbols and no quantifiers,
so a "term" is simply a constant.

This module defines the :class:`Const` value type and the ``nil`` singleton.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

#: Reserved spelling of the null-pointer constant.
NIL_NAME = "nil"


@dataclass(frozen=True)
class Const:
    """A constant symbol (a program variable, or ``nil``).

    Constants compare and hash by name, so they can be freely used in sets,
    dictionaries and as members of frozen dataclasses.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("constant symbols must have a non-empty name")

    @property
    def is_nil(self) -> bool:
        """True if this constant is the null pointer ``nil``."""
        return self.name == NIL_NAME

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return "Const({!r})".format(self.name)

    # A deterministic ordering by name is convenient for canonical printing;
    # the *logical* ordering used by superposition lives in
    # :mod:`repro.logic.ordering` and always makes ``nil`` minimal.
    def __lt__(self, other: "Const") -> bool:
        if not isinstance(other, Const):
            return NotImplemented
        return self.name < other.name


#: The null pointer.  ``nil`` is not a program variable (``nil not in Var``)
#: but may appear anywhere a constant may appear in a formula.
NIL = Const(NIL_NAME)


def make_const(name: "str | Const") -> Const:
    """Coerce a string (or an existing :class:`Const`) into a constant."""
    if isinstance(name, Const):
        return name
    if not isinstance(name, str):
        raise TypeError("expected a constant name, got {!r}".format(name))
    lowered = name.strip()
    if lowered in ("nil", "null", "NULL", "0"):
        return NIL
    return Const(lowered)


def make_consts(names: "str | Iterable[str]") -> Tuple[Const, ...]:
    """Create several constants at once.

    Accepts either an iterable of names or a single whitespace/comma separated
    string, e.g. ``make_consts("a b c")`` or ``make_consts(["a", "b"])``.
    """
    if isinstance(names, str):
        parts = [part for part in names.replace(",", " ").split() if part]
    else:
        parts = list(names)
    return tuple(make_const(part) for part in parts)


def variable_pool(count: int, prefix: str = "x") -> Tuple[Const, ...]:
    """Return ``count`` distinct program variables ``prefix1 .. prefixN``.

    The synthetic benchmark distributions of Section 6 are parameterised by a
    number of program variables ``Var = {x1, ..., xn}``; this helper creates
    that pool.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return tuple(Const("{}{}".format(prefix, i + 1)) for i in range(count))
