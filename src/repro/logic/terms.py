"""Constant symbols of the fragment.

The separation-logic fragment of Berdine, Calcagno and O'Hearn that the paper
works with is *ground*: formulas are built from a finite set ``Var`` of
constant symbols (program variables) plus the distinguished constant ``nil``
denoting the null pointer.  There are no function symbols and no quantifiers,
so a "term" is simply a constant.

This module defines the :class:`Const` value type and the ``nil`` singleton.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

#: Reserved spelling of the null-pointer constant.
NIL_NAME = "nil"

#: Alternative spellings that :func:`make_const` coerces to ``nil``.  The
#: comparison is case-insensitive, so "Nil", "NULL" and "null" all denote the
#: null pointer rather than silently creating distinct constants.
_NIL_ALIASES = frozenset(("nil", "null", "0"))


@dataclass(frozen=True, eq=False)
class Const:
    """A constant symbol (a program variable, or ``nil``).

    Constants compare and hash by name, so they can be freely used in sets,
    dictionaries and as members of frozen dataclasses.  The hash is computed
    once at construction time: constants are the innermost objects of the
    saturation loop and re-hashing the name string on every set operation is
    measurable.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("constant symbols must have a non-empty name")
        object.__setattr__(self, "_hash", hash(self.name))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Const):
            return self is other or self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @property
    def is_nil(self) -> bool:
        """True if this constant is the null pointer ``nil``."""
        return self.name == NIL_NAME

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return "Const({!r})".format(self.name)

    # A deterministic ordering by name is convenient for canonical printing;
    # the *logical* ordering used by superposition lives in
    # :mod:`repro.logic.ordering` and always makes ``nil`` minimal.
    def __lt__(self, other: "Const") -> bool:
        if not isinstance(other, Const):
            return NotImplemented
        return self.name < other.name


#: The null pointer.  ``nil`` is not a program variable (``nil not in Var``)
#: but may appear anywhere a constant may appear in a formula.
NIL = Const(NIL_NAME)

#: Intern table shared by :func:`make_const`: one :class:`Const` object per
#: distinct name.  Interning keeps equality checks on the identity fast path
#: and makes the memoised ordering-key lookups hit the same dictionary slot.
_CONST_INTERN: Dict[str, Const] = {NIL_NAME: NIL}


def clear_const_intern() -> None:
    """Reset the constant intern table to its initial state (``nil`` only).

    For long-lived processes running many unrelated workloads; everyday use
    never needs this.  Existing :class:`Const` objects stay valid — they
    compare by name — only the table stops pinning them in memory.
    """
    _CONST_INTERN.clear()
    _CONST_INTERN[NIL_NAME] = NIL


def make_const(name: "str | Const") -> Const:
    """Coerce a string (or an existing :class:`Const`) into an interned constant."""
    if isinstance(name, Const):
        return name
    if not isinstance(name, str):
        raise TypeError("expected a constant name, got {!r}".format(name))
    stripped = name.strip()
    interned = _CONST_INTERN.get(stripped)
    if interned is not None:
        return interned
    if stripped.lower() in _NIL_ALIASES:
        interned = NIL
    else:
        interned = Const(stripped)
    _CONST_INTERN[stripped] = interned
    return interned


def make_consts(names: "str | Iterable[str]") -> Tuple[Const, ...]:
    """Create several constants at once.

    Accepts either an iterable of names or a single whitespace/comma separated
    string, e.g. ``make_consts("a b c")`` or ``make_consts(["a", "b"])``.
    """
    if isinstance(names, str):
        parts = [part for part in names.replace(",", " ").split() if part]
    else:
        parts = list(names)
    return tuple(make_const(part) for part in parts)


def variable_pool(count: int, prefix: str = "x") -> Tuple[Const, ...]:
    """Return ``count`` distinct program variables ``prefix1 .. prefixN``.

    The synthetic benchmark distributions of Section 6 are parameterised by a
    number of program variables ``Var = {x1, ..., xn}``; this helper creates
    that pool.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return tuple(make_const("{}{}".format(prefix, i + 1)) for i in range(count))
