"""The clausal embedding ``cnf(E)`` of a negated entailment (Section 3.2).

Given an entailment

    E  =  Pi /\\ Sigma  ->  Pi' /\\ Sigma'

with ``Pi = P1 /\\ ... /\\ Pn /\\ !N1 /\\ ... /\\ !Nm`` and similarly for
``Pi'``, the embedding returns a set of clauses logically equivalent to the
*negation* of ``E``:

* one unit clause ``∅ -> Pi`` for every positive pure conjunct of ``Pi``;
* one unit clause ``Nj -> ∅`` for every negative pure conjunct of ``Pi``;
* the positive spatial clause ``∅ -> Sigma`` asserting the left heap;
* the single clause ``Pi'+, Sigma' -> Pi'-`` refuting the right-hand side.

``E`` is valid if and only if ``cnf(E)`` is unsatisfiable, which is what the
prover establishes by deriving the empty clause.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.logic.clauses import Clause
from repro.logic.formula import Entailment


@dataclass(frozen=True)
class CnfEmbedding:
    """The result of the clausal embedding, keeping the components apart.

    The Figure 3 algorithm needs direct access to the three ingredients, so we
    expose them separately rather than as one flat set:

    ``pure_clauses``
        The unit pure clauses encoding ``Pi``.
    ``positive_spatial``
        The clause ``∅ -> Sigma`` describing the left-hand heap.
    ``negative_spatial``
        The clause ``Pi'+, Sigma' -> Pi'-`` refuting the right-hand side.
    """

    pure_clauses: Tuple[Clause, ...]
    positive_spatial: Clause
    negative_spatial: Clause

    def all_clauses(self) -> List[Clause]:
        """The full clause set ``cnf(E)`` as a list."""
        return list(self.pure_clauses) + [self.positive_spatial, self.negative_spatial]

    def __iter__(self):
        return iter(self.all_clauses())

    def __len__(self) -> int:
        return len(self.pure_clauses) + 2


def cnf(entailment: Entailment) -> CnfEmbedding:
    """Compute the clausal embedding of the negation of ``entailment``.

    The embedding drops trivially true literals (``x = x`` on the left-hand
    side) and keeps trivially false ones (they become unit clauses that the
    superposition saturation immediately refutes), so the result is always
    logically equivalent to ``¬E``.
    """
    pure_clauses: List[Clause] = []
    for literal in entailment.lhs_pure:
        if literal.positive:
            # Pi asserts the equality: the clause ``∅ -> P``.
            pure_clauses.append(Clause.pure(delta=[literal.atom]))
        else:
            # Pi asserts the disequality: the clause ``N -> ∅``.
            pure_clauses.append(Clause.pure(gamma=[literal.atom]))

    positive_spatial = Clause.positive_spatial(entailment.lhs_spatial)

    rhs_positive = [literal.atom for literal in entailment.rhs_pure if literal.positive]
    rhs_negative = [literal.atom for literal in entailment.rhs_pure if not literal.positive]
    negative_spatial = Clause.negative_spatial(
        entailment.rhs_spatial, gamma=rhs_positive, delta=rhs_negative
    )

    return CnfEmbedding(tuple(pure_clauses), positive_spatial, negative_spatial)
