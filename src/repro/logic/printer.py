"""Human-readable rendering of formulas, clauses and rewrite relations.

The printer produces the same notation the paper uses, modulo ASCII:

* ``x = y`` and ``x != y`` for pure literals,
* ``next(x, y)`` and ``lseg(x, y)`` for basic spatial atoms,
* ``*`` for the separating conjunction and ``emp`` for the empty heap,
* ``Gamma --> Delta`` for clauses, with the spatial formula shown on the side
  it occurs on, and ``[]`` for the empty clause,
* ``|-`` for entailments.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.logic.atoms import EqAtom, SpatialFormula
from repro.logic.clauses import Clause
from repro.logic.formula import Entailment, PureLiteral
from repro.logic.terms import Const

ARROW = "-->"
TURNSTILE = "|-"
EMPTY_CLAUSE_SYMBOL = "[]"


def format_atom(atom: EqAtom) -> str:
    """Render a pure equality atom."""
    return "{} = {}".format(atom.left, atom.right)


def format_pure_literal(literal: PureLiteral) -> str:
    """Render a pure literal with its polarity."""
    return str(literal)


def format_atom_set(atoms: Iterable[EqAtom]) -> str:
    """Render a set of pure atoms as a comma separated list (sorted for stability)."""
    rendered = sorted(format_atom(atom) for atom in atoms)
    return ", ".join(rendered)


def format_spatial(sigma: SpatialFormula) -> str:
    """Render a spatial formula, with ``emp`` for the empty multiset."""
    return str(sigma)


def format_clause(clause: Clause) -> str:
    """Render a clause in sequent notation.

    Examples::

        c = e --> []                          (a pure clause with empty Delta)
        --> lseg(a, b) * next(c, d)           (a positive spatial clause)
        lseg(b, c) * lseg(c, e) -->           (a negative spatial clause)
    """
    if clause.is_empty:
        return EMPTY_CLAUSE_SYMBOL

    left_parts = []
    if clause.gamma:
        left_parts.append(format_atom_set(clause.gamma))
    if clause.is_negative_spatial:
        left_parts.append(format_spatial(clause.spatial))

    right_parts = []
    if clause.delta:
        right_parts.append(format_atom_set(clause.delta))
    if clause.is_positive_spatial:
        right_parts.append(format_spatial(clause.spatial))

    left = ", ".join(part for part in left_parts if part)
    right = ", ".join(part for part in right_parts if part)
    return "{} {} {}".format(left, ARROW, right).strip()


def format_pure_side(literals: Iterable[PureLiteral]) -> str:
    """Render a conjunction of pure literals."""
    rendered = [str(literal) for literal in literals]
    if not rendered:
        return "true"
    return " /\\ ".join(rendered)


def format_entailment(entailment: Entailment) -> str:
    """Render an entailment ``Pi /\\ Sigma |- Pi' /\\ Sigma'``."""

    def side(pure, sigma) -> str:
        parts = []
        if pure:
            parts.append(format_pure_side(pure))
        if not sigma.is_emp or not parts:
            parts.append(format_spatial(sigma))
        return " /\\ ".join(parts)

    return "{} {} {}".format(
        side(entailment.lhs_pure, entailment.lhs_spatial),
        TURNSTILE,
        side(entailment.rhs_pure, entailment.rhs_spatial),
    )


def format_rewrite_relation(relation: Mapping[Const, Const]) -> str:
    """Render a rewrite relation ``{x => y, ...}`` produced by model generation."""
    if not relation:
        return "{}"
    edges = sorted("{} => {}".format(src, dst) for src, dst in relation.items())
    return "{" + ", ".join(edges) + "}"


def format_substitution(mapping: Dict[Const, Const]) -> str:
    """Render a substitution as ``[y/x, ...]`` (replace ``x`` by ``y``)."""
    if not mapping:
        return "[]"
    items = sorted("{}/{}".format(value, key) for key, value in mapping.items())
    return "[" + ", ".join(items) + "]"
