"""Pure and spatial atoms of the fragment (Section 3.1 of the paper).

Three kinds of atoms exist:

* the *pure* equality atom ``x ~ y`` (written ``x ' y`` in the paper), which
  constrains the stack only;
* the basic *spatial* atoms ``next(x, y)`` (a single heap cell at ``x``
  pointing to ``y``) and ``lseg(x, y)`` (a possibly empty acyclic list segment
  from ``x`` to ``y``);
* *spatial formulas* ``S1 * ... * Sn`` — finite multisets of basic spatial
  atoms joined by the separating conjunction, with ``emp`` for the empty
  multiset.

Disequalities ``x != y`` are not a separate atom kind: they are negated
equality atoms and are represented at the literal/clause level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.logic.terms import Const, NIL, make_const


def _order_pair(a: Const, b: Const) -> Tuple[Const, Const]:
    """Canonical presentation order for the two sides of an equality.

    Equality is symmetric, so ``EqAtom(x, y)`` and ``EqAtom(y, x)`` must be
    the same object value.  We therefore store the two sides in a fixed order:
    ``nil`` always last, otherwise lexicographically by name.
    """
    if a.is_nil and not b.is_nil:
        return b, a
    if b.is_nil and not a.is_nil:
        return a, b
    return (a, b) if a.name <= b.name else (b, a)


@dataclass(frozen=True, eq=False)
class EqAtom:
    """The pure atom ``left ~ right`` asserting that two constants are aliases.

    Instances are canonicalised so that the atom is symmetric:
    ``EqAtom(x, y) == EqAtom(y, x)``.  The hash and the structural sort key
    are precomputed at construction time: atoms are hashed on every frozenset
    operation of the saturation loop and sorted in several presentation paths,
    and recomputing either from the field values dominates those paths.
    """

    left: Const
    right: Const

    def __init__(self, left: "Const | str", right: "Const | str") -> None:
        first, second = _order_pair(make_const(left), make_const(right))
        object.__setattr__(self, "left", first)
        object.__setattr__(self, "right", second)
        object.__setattr__(self, "sort_key", (first.name, second.name))
        object.__setattr__(self, "_hash", hash((first.name, second.name)))
        # ``is_trivial`` (atoms of the form ``x ~ x``, always true) is read on
        # every simplification and tautology check; precompute it.
        object.__setattr__(self, "is_trivial", first == second)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EqAtom):
            return self is other or (self.left == other.left and self.right == other.right)
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @property
    def sides(self) -> Tuple[Const, Const]:
        """The two constants related by the atom."""
        return (self.left, self.right)

    def mentions(self, constant: Const) -> bool:
        """True if ``constant`` occurs in the atom."""
        return constant == self.left or constant == self.right

    def other(self, constant: Const) -> Const:
        """Given one side of the atom, return the other side."""
        if constant == self.left:
            return self.right
        if constant == self.right:
            return self.left
        raise ValueError("{} does not occur in {}".format(constant, self))

    def constants(self) -> FrozenSet[Const]:
        """The set of constants occurring in the atom."""
        return frozenset((self.left, self.right))

    def substitute(self, mapping: Dict[Const, Const]) -> "EqAtom":
        """Simultaneously replace constants according to ``mapping``."""
        return EqAtom(mapping.get(self.left, self.left), mapping.get(self.right, self.right))

    def __str__(self) -> str:
        return "{} = {}".format(self.left, self.right)

    def __repr__(self) -> str:
        return "EqAtom({!r}, {!r})".format(self.left.name, self.right.name)


class SpatialAtom:
    """Common interface of the two basic spatial atoms.

    Both ``next(x, y)`` and ``lseg(x, y)`` describe a piece of heap reachable
    from the *address* ``x`` and ending at ``y``.  The class is an abstract
    base; use :class:`PointsTo` and :class:`ListSegment`.
    """

    source: Const
    target: Const

    #: Short tag used by the printer and by rule implementations ("next"/"lseg").
    kind: str = ""

    @property
    def address(self) -> Const:
        """The address of the atom (the paper calls ``x`` the address of ``f(x, y)``)."""
        return self.source

    @property
    def is_trivial(self) -> bool:
        """True only for ``lseg(x, x)``, which is satisfied by the empty heap."""
        return False

    def constants(self) -> FrozenSet[Const]:
        """The set of constants occurring in the atom."""
        return frozenset((self.source, self.target))

    def substitute(self, mapping: Dict[Const, Const]) -> "SpatialAtom":
        """Simultaneously replace constants according to ``mapping``."""
        raise NotImplementedError

    def with_ends(self, source: Const, target: Const) -> "SpatialAtom":
        """Return an atom of the same kind with the given endpoints."""
        raise NotImplementedError


@dataclass(frozen=True)
class PointsTo(SpatialAtom):
    """The basic spatial atom ``next(x, y)``: a single cell at ``x`` storing ``y``."""

    source: Const
    target: Const
    kind = "next"

    def __init__(self, source: "Const | str", target: "Const | str") -> None:
        object.__setattr__(self, "source", make_const(source))
        object.__setattr__(self, "target", make_const(target))

    def substitute(self, mapping: Dict[Const, Const]) -> "PointsTo":
        return PointsTo(
            mapping.get(self.source, self.source), mapping.get(self.target, self.target)
        )

    def with_ends(self, source: Const, target: Const) -> "PointsTo":
        return PointsTo(source, target)

    def __str__(self) -> str:
        return "next({}, {})".format(self.source, self.target)

    def __repr__(self) -> str:
        return "PointsTo({!r}, {!r})".format(self.source.name, self.target.name)


@dataclass(frozen=True)
class ListSegment(SpatialAtom):
    """The basic spatial atom ``lseg(x, y)``: an acyclic list segment from ``x`` to ``y``.

    The segment may be empty, in which case ``x`` and ``y`` denote the same
    location and the atom occupies no heap cells.
    """

    source: Const
    target: Const
    kind = "lseg"

    def __init__(self, source: "Const | str", target: "Const | str") -> None:
        object.__setattr__(self, "source", make_const(source))
        object.__setattr__(self, "target", make_const(target))

    @property
    def is_trivial(self) -> bool:
        return self.source == self.target

    def substitute(self, mapping: Dict[Const, Const]) -> "ListSegment":
        return ListSegment(
            mapping.get(self.source, self.source), mapping.get(self.target, self.target)
        )

    def with_ends(self, source: Const, target: Const) -> "ListSegment":
        return ListSegment(source, target)

    def __str__(self) -> str:
        return "lseg({}, {})".format(self.source, self.target)

    def __repr__(self) -> str:
        return "ListSegment({!r}, {!r})".format(self.source.name, self.target.name)


def _atom_sort_key(atom: SpatialAtom) -> Tuple[str, str, str]:
    return (atom.source.name, atom.target.name, atom.kind)


class SpatialFormula:
    """A spatial formula ``S1 * ... * Sn``: a multiset of basic spatial atoms.

    The separating conjunction is associative and commutative, so a spatial
    formula is represented as a canonically sorted tuple of its basic atoms.
    It is *not* idempotent — the multiplicity of atoms matters — hence a
    multiset rather than a set.  The empty formula is ``emp``.

    Instances are immutable and hashable; all "mutators" return new formulas.
    """

    __slots__ = ("_atoms",)

    def __init__(self, atoms: Iterable[SpatialAtom] = ()):  # noqa: D107
        atom_list = list(atoms)
        for atom in atom_list:
            if not isinstance(atom, SpatialAtom):
                raise TypeError("expected a spatial atom, got {!r}".format(atom))
        self._atoms: Tuple[SpatialAtom, ...] = tuple(sorted(atom_list, key=_atom_sort_key))

    # -- basic protocol ----------------------------------------------------
    @property
    def atoms(self) -> Tuple[SpatialAtom, ...]:
        """The basic atoms in canonical order."""
        return self._atoms

    @property
    def is_emp(self) -> bool:
        """True for the empty spatial formula ``emp``."""
        return not self._atoms

    def __iter__(self) -> Iterator[SpatialAtom]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __contains__(self, atom: SpatialAtom) -> bool:
        return atom in self._atoms

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpatialFormula):
            return NotImplemented
        return self._atoms == other._atoms

    def __hash__(self) -> int:
        return hash(self._atoms)

    def __str__(self) -> str:
        if not self._atoms:
            return "emp"
        return " * ".join(str(atom) for atom in self._atoms)

    def __repr__(self) -> str:
        return "SpatialFormula({})".format(list(self._atoms))

    # -- queries -----------------------------------------------------------
    def count(self, atom: SpatialAtom) -> int:
        """Multiplicity of ``atom`` in the formula."""
        return sum(1 for candidate in self._atoms if candidate == atom)

    def constants(self) -> FrozenSet[Const]:
        """All constants occurring in the formula."""
        result = set()
        for atom in self._atoms:
            result.update(atom.constants())
        return frozenset(result)

    def addresses(self) -> Tuple[Const, ...]:
        """The addresses of the basic atoms, with multiplicities, in order."""
        return tuple(atom.address for atom in self._atoms)

    def atoms_at(self, address: Const) -> Tuple[SpatialAtom, ...]:
        """All basic atoms whose address is ``address``."""
        return tuple(atom for atom in self._atoms if atom.address == address)

    def atom_at(self, address: Const) -> Optional[SpatialAtom]:
        """The unique atom at ``address`` in a well-formed formula, or ``None``."""
        candidates = self.atoms_at(address)
        return candidates[0] if candidates else None

    def is_well_formed(self) -> bool:
        """Check the paper's well-formedness condition.

        A spatial formula is well formed when no basic atom has a ``nil``
        address and no two basic atoms share the same address.
        """
        seen = set()
        for atom in self._atoms:
            if atom.address.is_nil:
                return False
            if atom.address in seen:
                return False
            seen.add(atom.address)
        return True

    # -- constructive operations -------------------------------------------
    def star(self, other: "SpatialFormula | SpatialAtom") -> "SpatialFormula":
        """Separating conjunction with another formula or basic atom."""
        if isinstance(other, SpatialAtom):
            return SpatialFormula(self._atoms + (other,))
        return SpatialFormula(self._atoms + other._atoms)

    def __mul__(self, other: "SpatialFormula | SpatialAtom") -> "SpatialFormula":
        return self.star(other)

    def add(self, atom: SpatialAtom) -> "SpatialFormula":
        """Return the formula with one extra occurrence of ``atom``."""
        return SpatialFormula(self._atoms + (atom,))

    def remove(self, atom: SpatialAtom) -> "SpatialFormula":
        """Return the formula with one occurrence of ``atom`` removed."""
        remaining = list(self._atoms)
        try:
            remaining.remove(atom)
        except ValueError:
            raise KeyError("atom {} not present in {}".format(atom, self))
        return SpatialFormula(remaining)

    def replace(self, old: SpatialAtom, new_atoms: Iterable[SpatialAtom]) -> "SpatialFormula":
        """Remove one occurrence of ``old`` and add all atoms in ``new_atoms``."""
        return SpatialFormula(list(self.remove(old)._atoms) + list(new_atoms))

    def substitute(self, mapping: Dict[Const, Const]) -> "SpatialFormula":
        """Simultaneously replace constants according to ``mapping``."""
        return SpatialFormula(atom.substitute(mapping) for atom in self._atoms)

    def drop_trivial(self) -> "SpatialFormula":
        """Remove all trivial atoms ``lseg(x, x)`` (rule N2/N4 of the paper)."""
        return SpatialFormula(atom for atom in self._atoms if not atom.is_trivial)


def emp() -> SpatialFormula:
    """The empty spatial formula ``emp``."""
    return SpatialFormula(())


def spatial(*atoms: SpatialAtom) -> SpatialFormula:
    """Convenience constructor: ``spatial(pts(x, y), lseg(y, z))``."""
    return SpatialFormula(atoms)
