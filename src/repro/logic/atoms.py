"""Pure and spatial atoms of the fragment (Section 3.1 of the paper).

Three kinds of atoms exist:

* the *pure* equality atom ``x ~ y`` (written ``x ' y`` in the paper), which
  constrains the stack only;
* basic *spatial* atoms, drawn from the predicate vocabulary of a registered
  spatial theory (:mod:`repro.spatial.theory`).  The paper's fragment — the
  builtin singly-linked theory — has ``next(x, y)`` (a single heap cell at
  ``x`` pointing to ``y``) and ``lseg(x, y)`` (a possibly empty acyclic list
  segment from ``x`` to ``y``); the doubly-linked theory has two-field cells
  ``cell(x, n, p)`` and segments ``dlseg(x, px, y, py)``;
* *spatial formulas* ``S1 * ... * Sn`` — finite multisets of basic spatial
  atoms joined by the separating conjunction, with ``emp`` for the empty
  multiset.

Atoms are plain data: every rule system that *interprets* them (normalisation,
well-formedness, unfolding, satisfaction) lives with the owning theory object,
keyed by the :attr:`SpatialAtom.theory` tag.

Disequalities ``x != y`` are not a separate atom kind: they are negated
equality atoms and are represented at the literal/clause level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.logic.terms import Const, make_const


def _order_pair(a: Const, b: Const) -> Tuple[Const, Const]:
    """Canonical presentation order for the two sides of an equality.

    Equality is symmetric, so ``EqAtom(x, y)`` and ``EqAtom(y, x)`` must be
    the same object value.  We therefore store the two sides in a fixed order:
    ``nil`` always last, otherwise lexicographically by name.
    """
    if a.is_nil and not b.is_nil:
        return b, a
    if b.is_nil and not a.is_nil:
        return a, b
    return (a, b) if a.name <= b.name else (b, a)


@dataclass(frozen=True, eq=False)
class EqAtom:
    """The pure atom ``left ~ right`` asserting that two constants are aliases.

    Instances are canonicalised so that the atom is symmetric:
    ``EqAtom(x, y) == EqAtom(y, x)``.  The hash and the structural sort key
    are precomputed at construction time: atoms are hashed on every frozenset
    operation of the saturation loop and sorted in several presentation paths,
    and recomputing either from the field values dominates those paths.
    """

    left: Const
    right: Const

    def __init__(self, left: "Const | str", right: "Const | str") -> None:
        first, second = _order_pair(make_const(left), make_const(right))
        object.__setattr__(self, "left", first)
        object.__setattr__(self, "right", second)
        object.__setattr__(self, "sort_key", (first.name, second.name))
        object.__setattr__(self, "_hash", hash((first.name, second.name)))
        # ``is_trivial`` (atoms of the form ``x ~ x``, always true) is read on
        # every simplification and tautology check; precompute it.
        object.__setattr__(self, "is_trivial", first == second)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EqAtom):
            return self is other or (self.left == other.left and self.right == other.right)
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @property
    def sides(self) -> Tuple[Const, Const]:
        """The two constants related by the atom."""
        return (self.left, self.right)

    def mentions(self, constant: Const) -> bool:
        """True if ``constant`` occurs in the atom."""
        return constant == self.left or constant == self.right

    def other(self, constant: Const) -> Const:
        """Given one side of the atom, return the other side."""
        if constant == self.left:
            return self.right
        if constant == self.right:
            return self.left
        raise ValueError("{} does not occur in {}".format(constant, self))

    def constants(self) -> FrozenSet[Const]:
        """The set of constants occurring in the atom."""
        return frozenset((self.left, self.right))

    def substitute(self, mapping: Dict[Const, Const]) -> "EqAtom":
        """Simultaneously replace constants according to ``mapping``."""
        return EqAtom(mapping.get(self.left, self.left), mapping.get(self.right, self.right))

    def __str__(self) -> str:
        return "{} = {}".format(self.left, self.right)

    def __repr__(self) -> str:
        return "EqAtom({!r}, {!r})".format(self.left.name, self.right.name)


class SpatialAtom:
    """Common interface of all basic spatial atoms, across theories.

    Every basic atom describes a piece of heap reachable from its *address*
    ``source``; the remaining arguments are theory specific.  The class is an
    abstract base; the builtin instances are :class:`PointsTo` and
    :class:`ListSegment` (singly-linked theory) and :class:`DllCell` and
    :class:`DllSegment` (doubly-linked theory).
    """

    source: Const
    target: Const

    #: Short predicate tag used by the printer, the parser and the canonical
    #: fingerprint ("next"/"lseg"/"cell"/"dlseg").
    kind: str = ""

    #: Name of the spatial theory the atom belongs to (see
    #: :mod:`repro.spatial.theory`).  Atoms of different theories may never be
    #: mixed in one formula that reaches the prover.
    theory: str = "sll"

    @property
    def address(self) -> Const:
        """The address of the atom (the paper calls ``x`` the address of ``f(x, y)``)."""
        return self.source

    @property
    def is_trivial(self) -> bool:
        """True for atoms satisfied exactly by the empty heap (empty segments)."""
        return False

    def argument_roles(self) -> Tuple[Tuple[str, Const], ...]:
        """The atom's arguments in declaration order, each with its role name.

        The role names feed the canonical fingerprint
        (:mod:`repro.logic.canonical`) and generic traversals; they must be
        stable across releases for any atom kind that can be cached.
        """
        raise NotImplementedError

    @property
    def sort_key(self) -> Tuple[str, ...]:
        """Deterministic structural key used to canonically order formulas."""
        raise NotImplementedError

    def constants(self) -> FrozenSet[Const]:
        """The set of constants occurring in the atom."""
        return frozenset(constant for _, constant in self.argument_roles())

    def substitute(self, mapping: Dict[Const, Const]) -> "SpatialAtom":
        """Simultaneously replace constants according to ``mapping``."""
        raise NotImplementedError

    def with_ends(self, source: Const, target: Const) -> "SpatialAtom":
        """Return an atom of the same kind with the given endpoints.

        Only meaningful for binary (singly-linked) atoms; the baselines use it
        to rename endpoints through their union-find.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class PointsTo(SpatialAtom):
    """The basic spatial atom ``next(x, y)``: a single cell at ``x`` storing ``y``."""

    source: Const
    target: Const
    kind = "next"
    theory = "sll"

    def __init__(self, source: "Const | str", target: "Const | str") -> None:
        object.__setattr__(self, "source", make_const(source))
        object.__setattr__(self, "target", make_const(target))

    def argument_roles(self) -> Tuple[Tuple[str, Const], ...]:
        return (("src", self.source), ("tgt", self.target))

    @property
    def sort_key(self) -> Tuple[str, ...]:
        key = self.__dict__.get("_sort_key")
        if key is None:
            key = (self.source.name, self.target.name, self.kind)
            object.__setattr__(self, "_sort_key", key)
        return key

    def constants(self) -> FrozenSet[Const]:
        return frozenset((self.source, self.target))

    def substitute(self, mapping: Dict[Const, Const]) -> "PointsTo":
        source = mapping.get(self.source, self.source)
        target = mapping.get(self.target, self.target)
        if source is self.source and target is self.target:
            return self
        return PointsTo(source, target)

    def with_ends(self, source: Const, target: Const) -> "PointsTo":
        return PointsTo(source, target)

    def __str__(self) -> str:
        return "next({}, {})".format(self.source, self.target)

    def __repr__(self) -> str:
        return "PointsTo({!r}, {!r})".format(self.source.name, self.target.name)


@dataclass(frozen=True)
class ListSegment(SpatialAtom):
    """The basic spatial atom ``lseg(x, y)``: an acyclic list segment from ``x`` to ``y``.

    The segment may be empty, in which case ``x`` and ``y`` denote the same
    location and the atom occupies no heap cells.
    """

    source: Const
    target: Const
    kind = "lseg"
    theory = "sll"

    def __init__(self, source: "Const | str", target: "Const | str") -> None:
        object.__setattr__(self, "source", make_const(source))
        object.__setattr__(self, "target", make_const(target))

    @property
    def is_trivial(self) -> bool:
        return self.source == self.target

    def argument_roles(self) -> Tuple[Tuple[str, Const], ...]:
        return (("src", self.source), ("tgt", self.target))

    @property
    def sort_key(self) -> Tuple[str, ...]:
        key = self.__dict__.get("_sort_key")
        if key is None:
            key = (self.source.name, self.target.name, self.kind)
            object.__setattr__(self, "_sort_key", key)
        return key

    def constants(self) -> FrozenSet[Const]:
        return frozenset((self.source, self.target))

    def substitute(self, mapping: Dict[Const, Const]) -> "ListSegment":
        source = mapping.get(self.source, self.source)
        target = mapping.get(self.target, self.target)
        if source is self.source and target is self.target:
            return self
        return ListSegment(source, target)

    def with_ends(self, source: Const, target: Const) -> "ListSegment":
        return ListSegment(source, target)

    def __str__(self) -> str:
        return "lseg({}, {})".format(self.source, self.target)

    def __repr__(self) -> str:
        return "ListSegment({!r}, {!r})".format(self.source.name, self.target.name)


@dataclass(frozen=True)
class DllCell(SpatialAtom):
    """The doubly-linked cell ``cell(x, n, p)``: one cell at ``x`` with two
    pointer fields, ``next = n`` and ``prev = p``."""

    source: Const
    target: Const  # the next field
    prev: Const
    kind = "cell"
    theory = "dll"

    def __init__(
        self, source: "Const | str", target: "Const | str", prev: "Const | str"
    ) -> None:
        object.__setattr__(self, "source", make_const(source))
        object.__setattr__(self, "target", make_const(target))
        object.__setattr__(self, "prev", make_const(prev))

    def argument_roles(self) -> Tuple[Tuple[str, Const], ...]:
        return (("src", self.source), ("tgt", self.target), ("prv", self.prev))

    @property
    def sort_key(self) -> Tuple[str, ...]:
        key = self.__dict__.get("_sort_key")
        if key is None:
            key = (self.source.name, self.target.name, self.kind, self.prev.name)
            object.__setattr__(self, "_sort_key", key)
        return key

    def substitute(self, mapping: Dict[Const, Const]) -> "DllCell":
        source = mapping.get(self.source, self.source)
        target = mapping.get(self.target, self.target)
        prev = mapping.get(self.prev, self.prev)
        if source is self.source and target is self.target and prev is self.prev:
            return self
        return DllCell(source, target, prev)

    def __str__(self) -> str:
        return "cell({}, {}, {})".format(self.source, self.target, self.prev)

    def __repr__(self) -> str:
        return "DllCell({!r}, {!r}, {!r})".format(
            self.source.name, self.target.name, self.prev.name
        )


@dataclass(frozen=True)
class DllSegment(SpatialAtom):
    """The doubly-linked segment ``dlseg(x, px, y, py)``.

    The segment runs from ``x`` (exclusive end ``y``); ``px`` is what the
    first cell's ``prev`` field points to and ``py`` is the *last cell* of the
    segment.  Inductively::

        dlseg(x, px, y, py)  =  (x = y /\\ px = py /\\ emp)
                             \\/ (exists u. cell(x, u, px) * dlseg(u, x, y, py))

    so the empty segment requires ``x = y`` and ``px = py``, a one-cell
    segment is ``cell(x, y, px)`` with ``py = x``, and in general the cells
    form a chain whose ``prev`` fields backlink each cell to its predecessor.
    The forced-path property of the fragment is preserved: a heap is a partial
    function, so the cells a ``dlseg`` atom may own are determined by walking
    ``next`` pointers from ``x`` while checking ``prev`` backlinks — no search.
    """

    source: Const
    prev: Const  # px: what the first cell's prev field points to
    target: Const  # y: the exclusive end of the segment
    back: Const  # py: the last cell of the segment
    kind = "dlseg"
    theory = "dll"

    def __init__(
        self,
        source: "Const | str",
        prev: "Const | str",
        target: "Const | str",
        back: "Const | str",
    ) -> None:
        object.__setattr__(self, "source", make_const(source))
        object.__setattr__(self, "prev", make_const(prev))
        object.__setattr__(self, "target", make_const(target))
        object.__setattr__(self, "back", make_const(back))

    @property
    def is_trivial(self) -> bool:
        """True for ``dlseg(x, p, x, p)``: satisfied exactly by the empty heap."""
        return self.source == self.target and self.prev == self.back

    def argument_roles(self) -> Tuple[Tuple[str, Const], ...]:
        return (
            ("src", self.source),
            ("psrc", self.prev),
            ("tgt", self.target),
            ("pback", self.back),
        )

    @property
    def sort_key(self) -> Tuple[str, ...]:
        key = self.__dict__.get("_sort_key")
        if key is None:
            key = (
                self.source.name,
                self.target.name,
                self.kind,
                self.prev.name,
                self.back.name,
            )
            object.__setattr__(self, "_sort_key", key)
        return key

    def substitute(self, mapping: Dict[Const, Const]) -> "DllSegment":
        source = mapping.get(self.source, self.source)
        prev = mapping.get(self.prev, self.prev)
        target = mapping.get(self.target, self.target)
        back = mapping.get(self.back, self.back)
        if (
            source is self.source
            and prev is self.prev
            and target is self.target
            and back is self.back
        ):
            return self
        return DllSegment(source, prev, target, back)

    def __str__(self) -> str:
        return "dlseg({}, {}, {}, {})".format(self.source, self.prev, self.target, self.back)

    def __repr__(self) -> str:
        return "DllSegment({!r}, {!r}, {!r}, {!r})".format(
            self.source.name, self.prev.name, self.target.name, self.back.name
        )


def _atom_sort_key(atom: SpatialAtom) -> Tuple[str, ...]:
    return atom.sort_key


class SpatialFormula:
    """A spatial formula ``S1 * ... * Sn``: a multiset of basic spatial atoms.

    The separating conjunction is associative and commutative, so a spatial
    formula is represented as a canonically sorted tuple of its basic atoms.
    It is *not* idempotent — the multiplicity of atoms matters — hence a
    multiset rather than a set.  The empty formula is ``emp``.

    Instances are immutable and hashable; all "mutators" return new formulas.
    """

    __slots__ = ("_atoms", "_constants")

    def __init__(self, atoms: Iterable[SpatialAtom] = ()):  # noqa: D107
        atom_list = list(atoms)
        for atom in atom_list:
            if not isinstance(atom, SpatialAtom):
                raise TypeError("expected a spatial atom, got {!r}".format(atom))
        self._atoms: Tuple[SpatialAtom, ...] = tuple(sorted(atom_list, key=_atom_sort_key))
        self._constants: Optional[FrozenSet[Const]] = None

    # -- basic protocol ----------------------------------------------------
    @property
    def atoms(self) -> Tuple[SpatialAtom, ...]:
        """The basic atoms in canonical order."""
        return self._atoms

    @property
    def is_emp(self) -> bool:
        """True for the empty spatial formula ``emp``."""
        return not self._atoms

    def __iter__(self) -> Iterator[SpatialAtom]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __contains__(self, atom: SpatialAtom) -> bool:
        return atom in self._atoms

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpatialFormula):
            return NotImplemented
        return self._atoms == other._atoms

    def __hash__(self) -> int:
        return hash(self._atoms)

    def __str__(self) -> str:
        if not self._atoms:
            return "emp"
        return " * ".join(str(atom) for atom in self._atoms)

    def __repr__(self) -> str:
        return "SpatialFormula({})".format(list(self._atoms))

    # -- queries -----------------------------------------------------------
    def count(self, atom: SpatialAtom) -> int:
        """Multiplicity of ``atom`` in the formula."""
        return sum(1 for candidate in self._atoms if candidate == atom)

    def constants(self) -> FrozenSet[Const]:
        """All constants occurring in the formula (memoised — instances are
        immutable, and normalisation re-queries the same formula every
        saturation round)."""
        result = self._constants
        if result is None:
            collected = set()
            for atom in self._atoms:
                collected.update(atom.constants())
            result = frozenset(collected)
            self._constants = result
        return result

    def addresses(self) -> Tuple[Const, ...]:
        """The addresses of the basic atoms, with multiplicities, in order."""
        return tuple(atom.address for atom in self._atoms)

    def atoms_at(self, address: Const) -> Tuple[SpatialAtom, ...]:
        """All basic atoms whose address is ``address``."""
        return tuple(atom for atom in self._atoms if atom.address == address)

    def atom_at(self, address: Const) -> Optional[SpatialAtom]:
        """The unique atom at ``address`` in a well-formed formula, or ``None``."""
        candidates = self.atoms_at(address)
        return candidates[0] if candidates else None

    def is_well_formed(self) -> bool:
        """Check the paper's well-formedness condition.

        A spatial formula is well formed when no basic atom has a ``nil``
        address and no two basic atoms share the same address.
        """
        seen = set()
        for atom in self._atoms:
            if atom.address.is_nil:
                return False
            if atom.address in seen:
                return False
            seen.add(atom.address)
        return True

    # -- constructive operations -------------------------------------------
    def star(self, other: "SpatialFormula | SpatialAtom") -> "SpatialFormula":
        """Separating conjunction with another formula or basic atom."""
        if isinstance(other, SpatialAtom):
            return SpatialFormula(self._atoms + (other,))
        return SpatialFormula(self._atoms + other._atoms)

    def __mul__(self, other: "SpatialFormula | SpatialAtom") -> "SpatialFormula":
        return self.star(other)

    def add(self, atom: SpatialAtom) -> "SpatialFormula":
        """Return the formula with one extra occurrence of ``atom``."""
        return SpatialFormula(self._atoms + (atom,))

    def remove(self, atom: SpatialAtom) -> "SpatialFormula":
        """Return the formula with one occurrence of ``atom`` removed."""
        remaining = list(self._atoms)
        try:
            remaining.remove(atom)
        except ValueError:
            raise KeyError("atom {} not present in {}".format(atom, self))
        return SpatialFormula(remaining)

    def replace(self, old: SpatialAtom, new_atoms: Iterable[SpatialAtom]) -> "SpatialFormula":
        """Remove one occurrence of ``old`` and add all atoms in ``new_atoms``."""
        return SpatialFormula(list(self.remove(old)._atoms) + list(new_atoms))

    def substitute(self, mapping: Dict[Const, Const]) -> "SpatialFormula":
        """Simultaneously replace constants according to ``mapping``."""
        return SpatialFormula(atom.substitute(mapping) for atom in self._atoms)

    def drop_trivial(self) -> "SpatialFormula":
        """Remove all trivial atoms ``lseg(x, x)`` (rule N2/N4 of the paper)."""
        return SpatialFormula(atom for atom in self._atoms if not atom.is_trivial)


def emp() -> SpatialFormula:
    """The empty spatial formula ``emp``."""
    return SpatialFormula(())


def spatial(*atoms: SpatialAtom) -> SpatialFormula:
    """Convenience constructor: ``spatial(pts(x, y), lseg(y, z))``."""
    return SpatialFormula(atoms)
