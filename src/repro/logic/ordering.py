"""Term, literal and clause orderings for the ground superposition calculus.

Superposition restricts its inferences to *maximal* literals with respect to a
reduction ordering on terms, and the model-generation argument (Section 3.3 of
the paper, following Nieuwenhuis and Rubio) processes clauses in increasing
clause order.  Because the fragment is ground and has no function symbols, a
reduction ordering is simply a total precedence on the constant symbols.

The paper imposes one requirement on the precedence: ``nil`` must be the
*minimal* constant, so that whenever a variable is equated with ``nil`` its
normal form is ``nil`` and the induced stack maps it to the null location.

Literal and clause orderings are the standard constructions:

* a positive equality ``x = y`` is measured by the multiset ``{x, y}``;
* a negative equality ``x != y`` is measured by the multiset ``{x, x, y, y}``
  (so a negative literal is larger than the positive literal over the same
  terms);
* clauses are compared by the multiset extension of the literal ordering.

For total ground orderings the multiset extension coincides with comparing the
multisets as descending-sorted sequences, longest-prefix wins, which is what
:func:`TermOrder.compare_key_multisets` implements.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.logic.atoms import EqAtom
from repro.logic.terms import Const, NIL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.logic.clauses import Clause


class TermOrder:
    """A total precedence over constant symbols with ``nil`` minimal.

    Parameters
    ----------
    precedence:
        Optional explicit order, listed from *smallest* to *largest*.  Any
        constant not listed is placed above the listed ones, ordered by name.
        ``nil`` is always forced to be the minimum regardless of its position
        in the list.
    """

    def __init__(self, precedence: Optional[Sequence[Const]] = None):
        self._rank: Dict[Const, int] = {}
        if precedence:
            for index, constant in enumerate(precedence):
                if constant.is_nil:
                    continue
                if constant not in self._rank:
                    self._rank[constant] = index + 1
        # Key computations sit in the innermost loops of saturation; term,
        # literal and clause keys are all memoised.  The literal caches are
        # split by polarity so the lookup key is the (interned) atom itself
        # rather than a freshly allocated ``(atom, sign)`` tuple.
        self._key_cache: Dict[Const, Tuple[int, int, str]] = {}
        self._pos_literal_key_cache: Dict[EqAtom, Tuple[Tuple[int, int, str], ...]] = {}
        self._neg_literal_key_cache: Dict[EqAtom, Tuple[Tuple[int, int, str], ...]] = {}
        self._clause_key_cache: Dict["Clause", Tuple[Tuple, ...]] = {}
        self._production_cache: Dict["Clause", Optional[Tuple[Const, Const, EqAtom]]] = {}

    # -- term level ---------------------------------------------------------
    def known_constants(self) -> List[Const]:
        """Every constant the precedence explicitly ranks, smallest first.

        ``nil`` is always included (and always first).  The dense integer
        kernel (:mod:`repro.superposition.kernel`) seeds its id space from
        this list: assigning ids in ascending precedence order turns every
        term comparison — and therefore every literal and clause comparison —
        into a plain integer compare on the dense side.
        """
        ranked = sorted(self._rank, key=self._rank.__getitem__)
        return [NIL] + ranked

    def key(self, constant: Const) -> Tuple[int, int, str]:
        """A sort key that realises the precedence (larger key = larger term)."""
        cached = self._key_cache.get(constant)
        if cached is not None:
            return cached
        if constant.is_nil:
            result = (0, 0, "")
        elif constant in self._rank:
            result = (1, self._rank[constant], constant.name)
        else:
            result = (2, 0, constant.name)
        self._key_cache[constant] = result
        return result

    def greater(self, left: Const, right: Const) -> bool:
        """``left > right`` in the term ordering."""
        return self.key(left) > self.key(right)

    def gte(self, left: Const, right: Const) -> bool:
        """``left >= right`` in the term ordering."""
        return self.key(left) >= self.key(right)

    def max_of(self, constants: Iterable[Const]) -> Const:
        """The maximal constant of a non-empty collection."""
        items = list(constants)
        if not items:
            raise ValueError("max_of requires at least one constant")
        return max(items, key=self.key)

    def sort_descending(self, constants: Iterable[Const]) -> List[Const]:
        """Sort constants from largest to smallest."""
        return sorted(constants, key=self.key, reverse=True)

    def orient(self, atom: EqAtom) -> Tuple[Const, Const]:
        """Return the sides of an equality as ``(larger, smaller)``.

        For an atom ``x = x`` both components are the same constant.
        """
        if self.gte(atom.left, atom.right):
            return atom.left, atom.right
        return atom.right, atom.left

    # -- literal level --------------------------------------------------------
    def literal_key(self, atom: EqAtom, positive: bool) -> Tuple[Tuple[int, int, str], ...]:
        """The measuring multiset of a literal, as a descending-sorted key tuple."""
        cache = self._pos_literal_key_cache if positive else self._neg_literal_key_cache
        cached = cache.get(atom)
        if cached is not None:
            return cached
        big, small = self.orient(atom)
        big_key, small_key = self.key(big), self.key(small)
        if positive:
            result = (big_key, small_key)
        else:
            result = (big_key, big_key, small_key, small_key)
        cache[atom] = result
        return result

    def compare_key_multisets(
        self,
        left: Sequence[Tuple],
        right: Sequence[Tuple],
    ) -> int:
        """Compare two descending-sorted key sequences as multisets.

        Returns a negative number, zero, or a positive number when ``left`` is
        respectively smaller than, equal to, or greater than ``right``.
        """
        for l_item, r_item in zip(left, right):
            if l_item != r_item:
                return -1 if l_item < r_item else 1
        if len(left) == len(right):
            return 0
        return -1 if len(left) < len(right) else 1

    def literal_greater(
        self, atom_a: EqAtom, positive_a: bool, atom_b: EqAtom, positive_b: bool
    ) -> bool:
        """Strict literal ordering ``A > B``."""
        return (
            self.compare_key_multisets(
                self.literal_key(atom_a, positive_a), self.literal_key(atom_b, positive_b)
            )
            > 0
        )

    # -- clause level -----------------------------------------------------------
    def clause_key(
        self, gamma: Iterable[EqAtom], delta: Iterable[EqAtom]
    ) -> Tuple[Tuple, ...]:
        """The measuring multiset of a pure clause ``Gamma -> Delta``."""
        keys = [self.literal_key(atom, positive=False) for atom in gamma]
        keys.extend(self.literal_key(atom, positive=True) for atom in delta)
        return tuple(sorted(keys, reverse=True))

    def clause_sort_key(self, clause: "Clause") -> Tuple[Tuple, ...]:
        """The memoised measuring multiset of a pure clause.

        Model generation sorts (and keeps sorted) the whole known clause set by
        this key on every round, so it is cached per clause.  Note the key is
        *injective* on pure clauses: each literal key pins down its literal
        (polarity by length, constants by name), so equal keys mean equal
        ``gamma``/``delta`` frozensets, i.e. the same clause.
        """
        cached = self._clause_key_cache.get(clause)
        if cached is None:
            cached = self.clause_key(clause.gamma, clause.delta)
            self._clause_key_cache[clause] = cached
        return cached

    def clause_greater(
        self,
        gamma_a: Iterable[EqAtom],
        delta_a: Iterable[EqAtom],
        gamma_b: Iterable[EqAtom],
        delta_b: Iterable[EqAtom],
    ) -> bool:
        """Strict clause ordering (multiset extension of the literal ordering)."""
        return (
            self.compare_key_multisets(
                self.clause_key(gamma_a, delta_a), self.clause_key(gamma_b, delta_b)
            )
            > 0
        )

    # -- maximality checks --------------------------------------------------------
    def is_maximal_in(
        self,
        atom: EqAtom,
        positive: bool,
        gamma: Iterable[EqAtom],
        delta: Iterable[EqAtom],
        strictly: bool = False,
    ) -> bool:
        """Check whether a literal is (strictly) maximal in a pure clause.

        The literal itself is assumed to occur in the clause; one occurrence is
        ignored when checking strict maximality.
        """
        own_key = self.literal_key(atom, positive)
        skipped_self = False
        for other_atom, other_positive in self._literals(gamma, delta):
            if (
                not skipped_self
                and other_atom == atom
                and other_positive == positive
            ):
                skipped_self = True
                continue
            comparison = self.compare_key_multisets(
                own_key, self.literal_key(other_atom, other_positive)
            )
            if comparison < 0:
                return False
            if strictly and comparison == 0:
                return False
        return True

    # -- productive equations -------------------------------------------------
    def production(self, clause: "Clause") -> Optional[Tuple[Const, Const, EqAtom]]:
        """The unique equation through which a pure clause can act productively.

        Returns ``(larger, smaller, equation)`` when the clause has no negative
        (selected) literals and its maximal positive equation is orientable and
        *strictly* maximal; ``None`` otherwise.  At most one equation can
        qualify — strict maximality singles out the literal with the largest
        key — so the result is a property of the clause and is memoised.

        Both the superposition calculus (the rewriting premise of an
        inference) and the Bachmair–Ganzinger model construction (a clause
        generating a rewrite edge) gate on exactly this condition, which is
        why it lives on the ordering rather than in either consumer.
        """
        if clause in self._production_cache:
            return self._production_cache[clause]
        result = None
        if not clause.gamma and clause.delta:
            best = None
            best_key = None
            for equation in clause.delta:
                key = self.literal_key(equation, True)
                if best_key is None or key > best_key:
                    best, best_key = equation, key
            if best is not None and not best.is_trivial:
                big, small = self.orient(best)
                if self.greater(big, small) and self.is_maximal_in(
                    best, True, clause.gamma, clause.delta, strictly=True
                ):
                    result = (big, small, best)
        self._production_cache[clause] = result
        return result

    @staticmethod
    def _literals(
        gamma: Iterable[EqAtom], delta: Iterable[EqAtom]
    ) -> Iterable[Tuple[EqAtom, bool]]:
        for atom in gamma:
            yield atom, False
        for atom in delta:
            yield atom, True


def default_order(constants: Iterable[Const]) -> TermOrder:
    """A deterministic order for a given constant pool: by name, ``nil`` minimal."""
    ordered = sorted({c for c in constants if not c.is_nil}, key=lambda c: c.name)
    return TermOrder([NIL] + ordered)
