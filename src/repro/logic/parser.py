"""A textual surface syntax for entailments.

The grammar is a small superset of the notation used in the paper and of
Smallfoot's assertion language:

.. code-block:: text

    entailment  ::=  side ('|-' | '==>') side
    side        ::=  'false' | conjunct (('/\\' | '&&' | '&' | '*') conjunct)*
    conjunct    ::=  'true' | 'emp' | pure | spatial
    pure        ::=  ident ('=' | '==') ident
                  |  ident ('!=' | '<>') ident
    spatial     ::=  'next' '(' ident ',' ident ')'
                  |  ident '|->' ident
                  |  ('lseg' | 'ls') '(' ident ',' ident ')'
    ident       ::=  [A-Za-z_][A-Za-z0-9_']*  |  'nil' | 'null' | 'NULL'

Pure and spatial conjuncts may be freely interleaved; the parser sorts them
into the pure part ``Pi`` and the spatial part ``Sigma`` of each side.  The
keyword ``false`` may be used as the complete right-hand side to express the
``F |- false`` entailments of the Table 1 benchmark.

Examples::

    parse_entailment("c != e /\\ lseg(a, b) * lseg(a, c) * next(c, d) * lseg(d, e) "
                     "|- lseg(b, c) * lseg(c, e)")
    parse_entailment("x |-> y * y |-> nil |- lseg(x, nil)")
    parse_entailment("x != y /\\ lseg(x, y) |- false")
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from repro.logic.atoms import SpatialAtom, SpatialFormula
from repro.logic.formula import Entailment, PureLiteral, eq, lseg, neq, pts


class ParseError(ValueError):
    """Raised when the input text is not a well-formed entailment."""


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


_TOKEN_SPEC = [
    ("POINTS", r"\|->"),
    ("TURNSTILE", r"\|-|==>"),
    ("AND", r"/\\|&&|&"),
    ("STAR", r"\*"),
    ("NEQ", r"!=|<>"),
    ("EQ", r"==|="),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_']*"),
    ("WS", r"\s+"),
]

_TOKEN_RE = re.compile("|".join("(?P<{}>{})".format(name, pattern) for name, pattern in _TOKEN_SPEC))


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                "unexpected character {!r} at position {}".format(text[position], position)
            )
        kind = match.lastgroup or ""
        if kind != "WS":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _Parser:
    """A tiny recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[_Token], text: str):
        self._tokens = tokens
        self._text = text
        self._index = 0

    # -- token helpers -------------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in {!r}".format(self._text))
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._advance()
        if token.kind != kind:
            raise ParseError(
                "expected {} but found {!r} at position {}".format(kind, token.text, token.position)
            )
        return token

    def _match(self, kind: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._index += 1
            return True
        return False

    # -- grammar -------------------------------------------------------------
    def parse_entailment(self) -> Entailment:
        lhs = self.parse_side()
        self._expect("TURNSTILE")
        rhs = self.parse_side()
        if self._peek() is not None:
            token = self._peek()
            raise ParseError(
                "unexpected trailing input {!r} at position {}".format(token.text, token.position)
            )
        if rhs == "false":
            if lhs == "false":
                raise ParseError("'false' can only appear as the whole right-hand side")
            return Entailment.with_false_rhs(lhs)
        if lhs == "false":
            raise ParseError("'false' can only appear as the whole right-hand side")
        return Entailment.build(lhs=lhs, rhs=rhs)

    def parse_side(self) -> Union[str, List[Union[PureLiteral, SpatialAtom]]]:
        token = self._peek()
        if token is not None and token.kind == "IDENT" and token.text == "false":
            self._advance()
            return "false"
        conjuncts: List[Union[PureLiteral, SpatialAtom]] = []
        while True:
            conjunct = self.parse_conjunct()
            if conjunct is not None:
                conjuncts.append(conjunct)
            token = self._peek()
            if token is not None and token.kind in ("AND", "STAR"):
                self._advance()
                continue
            break
        return conjuncts

    def parse_conjunct(self) -> Optional[Union[PureLiteral, SpatialAtom]]:
        token = self._advance()
        if token.kind != "IDENT":
            raise ParseError(
                "expected an atom but found {!r} at position {}".format(token.text, token.position)
            )
        word = token.text

        if word in ("true", "emp"):
            return None

        if word in ("next", "lseg", "ls"):
            next_token = self._peek()
            if next_token is not None and next_token.kind == "LPAREN":
                self._advance()
                first = self._expect("IDENT").text
                self._expect("COMMA")
                second = self._expect("IDENT").text
                self._expect("RPAREN")
                if word == "next":
                    return pts(first, second)
                return lseg(first, second)
            # fall through: "next" or "lseg" used as a plain identifier

        follower = self._peek()
        if follower is None:
            raise ParseError("dangling identifier {!r} at end of input".format(word))
        if follower.kind == "EQ":
            self._advance()
            other = self._expect("IDENT").text
            return eq(word, other)
        if follower.kind == "NEQ":
            self._advance()
            other = self._expect("IDENT").text
            return neq(word, other)
        if follower.kind == "POINTS":
            self._advance()
            other = self._expect("IDENT").text
            return pts(word, other)
        raise ParseError(
            "expected '=', '!=' or '|->' after {!r} at position {}".format(word, follower.position)
        )


def parse_entailment(text: str) -> Entailment:
    """Parse an entailment from its textual form."""
    parser = _Parser(_tokenize(text), text)
    return parser.parse_entailment()


def parse_spatial_formula(text: str) -> SpatialFormula:
    """Parse a spatial formula such as ``"next(x, y) * lseg(y, nil)"``.

    Pure conjuncts are not allowed here; use :func:`parse_entailment` for full
    entailments.
    """
    parser = _Parser(_tokenize(text), text)
    side = parser.parse_side()
    if parser._peek() is not None:  # noqa: SLF001 - module-internal access
        token = parser._peek()
        raise ParseError(
            "unexpected trailing input {!r} at position {}".format(token.text, token.position)
        )
    if side == "false":
        raise ParseError("'false' is not a spatial formula")
    atoms = []
    for conjunct in side:
        if isinstance(conjunct, PureLiteral):
            raise ParseError("pure literal {} not allowed in a spatial formula".format(conjunct))
        atoms.append(conjunct)
    return SpatialFormula(atoms)
