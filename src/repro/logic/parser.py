"""A textual surface syntax for entailments.

The grammar is a small superset of the notation used in the paper and of
Smallfoot's assertion language:

.. code-block:: text

    entailment  ::=  side ('|-' | '==>') side
    side        ::=  'false' | conjunct (('/\\' | '&&' | '&' | '*') conjunct)*
    conjunct    ::=  'true' | 'emp' | pure | spatial
    pure        ::=  ident ('=' | '==') ident
                  |  ident ('!=' | '<>') ident
    spatial     ::=  pred '(' ident (',' ident)* ')'
                  |  ident '|->' ident
    ident       ::=  [A-Za-z_][A-Za-z0-9_']*  |  'nil' | 'null' | 'NULL'

The spatial predicate names come from the registered spatial theories
(:func:`repro.spatial.theory.predicate_table`): the singly-linked theory
contributes ``next(x, y)`` and ``lseg(x, y)`` (``ls`` is accepted as an
alias, ``x |-> y`` abbreviates ``next``), the doubly-linked theory
contributes ``cell(x, n, p)`` and ``dlseg(x, px, y, py)``.  Pure and spatial
conjuncts may be freely interleaved; the parser sorts them into the pure part
``Pi`` and the spatial part ``Sigma`` of each side.  The keyword ``false``
may be used as the complete right-hand side to express the ``F |- false``
entailments of the Table 1 benchmark.

Syntax errors raise :class:`ParseError` carrying the 1-based line and column
of the offending token (and the token itself), so multi-line ``.ent`` files
report exactly where they broke.

Examples::

    parse_entailment("c != e /\\ lseg(a, b) * lseg(a, c) * next(c, d) * lseg(d, e) "
                     "|- lseg(b, c) * lseg(c, e)")
    parse_entailment("x |-> y * y |-> nil |- lseg(x, nil)")
    parse_entailment("cell(x, y, nil) * cell(y, nil, x) |- dlseg(x, nil, nil, y)")
    parse_entailment("x != y /\\ lseg(x, y) |- false")
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.logic.atoms import SpatialAtom, SpatialFormula
from repro.logic.formula import Entailment, PureLiteral, eq, neq, pts


class ParseError(ValueError):
    """Raised when the input text is not a well-formed entailment.

    Attributes
    ----------
    reason:
        The bare problem description, without the location prefix.
    line, column:
        1-based position of the offending token (or of the end of input);
        ``None`` when the error is not tied to a position.
    token:
        The offending token's text, or ``None`` at end of input.
    """

    def __init__(
        self,
        reason: str,
        line: Optional[int] = None,
        column: Optional[int] = None,
        token: Optional[str] = None,
    ):
        self.reason = reason
        self.line = line
        self.column = column
        self.token = token
        if line is not None and column is not None:
            message = "line {}, column {}: {}".format(line, column, reason)
        else:
            message = reason
        super().__init__(message)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int  # flat character offset; line/column are derived lazily


_TOKEN_SPEC = [
    ("POINTS", r"\|->"),
    ("TURNSTILE", r"\|-|==>"),
    ("AND", r"/\\|&&|&"),
    ("STAR", r"\*"),
    ("NEQ", r"!=|<>"),
    ("EQ", r"==|="),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_']*"),
    ("WS", r"\s+"),
]

_TOKEN_RE = re.compile("|".join("(?P<{}>{})".format(name, pattern) for name, pattern in _TOKEN_SPEC))

#: Extra spellings accepted for registered predicate names.
_PREDICATE_ALIASES = {"ls": "lseg", "dll": "dlseg"}


def _line_and_column(text: str, position: int) -> Tuple[int, int]:
    """1-based (line, column) of a character offset into ``text``."""
    line = text.count("\n", 0, position) + 1
    start = text.rfind("\n", 0, position) + 1
    return line, position - start + 1


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            line, column = _line_and_column(text, position)
            raise ParseError(
                "unexpected character {!r}".format(text[position]),
                line=line,
                column=column,
                token=text[position],
            )
        kind = match.lastgroup or ""
        if kind != "WS":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


def _predicate_constructors() -> Dict[str, Tuple[int, Callable[..., SpatialAtom], str]]:
    """Surface predicate name -> (arity, constructor, theory), from the registry."""
    from repro.spatial.theory import predicate_table

    table: Dict[str, Tuple[int, Callable[..., SpatialAtom], str]] = {}
    for name, (theory, signature) in predicate_table().items():
        table[name] = (signature.arity, signature.constructor, theory.name)
    for alias, name in _PREDICATE_ALIASES.items():
        if name in table:
            table[alias] = table[name]
    return table


class _Parser:
    """A tiny recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[_Token], text: str):
        self._tokens = tokens
        self._text = text
        self._index = 0
        self._predicates = _predicate_constructors()
        # The theory of the first spatial atom seen; later atoms must match
        # (mixed-theory formulas have no heap model and would otherwise only
        # blow up deep inside the prover, without a source location).
        self._theory: Optional[str] = None

    def _check_theory(self, theory: str, token: _Token) -> None:
        if self._theory is None:
            self._theory = theory
        elif self._theory != theory:
            raise self._error(
                "predicate {!r} belongs to the {!r} theory but the entailment "
                "already uses {!r} atoms; spatial theories cannot be mixed".format(
                    token.text, theory, self._theory
                ),
                token,
            )

    # -- error helpers -------------------------------------------------------
    def _error(self, reason: str, token: Optional[_Token]) -> ParseError:
        if token is None:
            line, column = _line_and_column(self._text, len(self._text))
            return ParseError(reason + " at end of input", line=line, column=column)
        line, column = _line_and_column(self._text, token.position)
        return ParseError(reason, line=line, column=column, token=token.text)

    # -- token helpers -------------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of input", None)
        self._index += 1
        return token

    def _expect(self, kind: str, what: str) -> _Token:
        token = self._peek()
        if token is None:
            raise self._error("expected {}".format(what), None)
        if token.kind != kind:
            raise self._error(
                "expected {} but found {!r}".format(what, token.text), token
            )
        self._index += 1
        return token

    def _match(self, kind: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._index += 1
            return True
        return False

    # -- grammar -------------------------------------------------------------
    def parse_entailment(self) -> Entailment:
        lhs = self.parse_side()
        self._expect("TURNSTILE", "'|-'")
        rhs = self.parse_side()
        token = self._peek()
        if token is not None:
            raise self._error("unexpected trailing input {!r}".format(token.text), token)
        if isinstance(rhs, str):  # the "false" right-hand side
            if isinstance(lhs, str):
                raise ParseError("'false' can only appear as the whole right-hand side")
            return Entailment.with_false_rhs(lhs)
        if isinstance(lhs, str):
            raise ParseError("'false' can only appear as the whole right-hand side")
        return Entailment.build(lhs=lhs, rhs=rhs)

    def parse_side(self) -> Union[str, List[Union[PureLiteral, SpatialAtom]]]:
        token = self._peek()
        if token is not None and token.kind == "IDENT" and token.text == "false":
            self._advance()
            return "false"
        conjuncts: List[Union[PureLiteral, SpatialAtom]] = []
        while True:
            conjunct = self.parse_conjunct()
            if conjunct is not None:
                conjuncts.append(conjunct)
            token = self._peek()
            if token is not None and token.kind in ("AND", "STAR"):
                self._advance()
                continue
            break
        return conjuncts

    def parse_conjunct(self) -> Optional[Union[PureLiteral, SpatialAtom]]:
        token = self._advance()
        if token.kind != "IDENT":
            raise self._error(
                "expected an atom but found {!r}".format(token.text), token
            )
        word = token.text

        if word in ("true", "emp"):
            return None

        if word in self._predicates:
            next_token = self._peek()
            if next_token is not None and next_token.kind == "LPAREN":
                arity, constructor, theory = self._predicates[word]
                self._check_theory(theory, token)
                self._advance()
                arguments = [self._expect("IDENT", "an identifier").text]
                while self._match("COMMA"):
                    arguments.append(self._expect("IDENT", "an identifier").text)
                closing = self._peek()
                if len(arguments) != arity:
                    raise self._error(
                        "{} takes {} arguments but got {}".format(word, arity, len(arguments)),
                        closing if closing is not None else next_token,
                    )
                self._expect("RPAREN", "')'")
                return constructor(*arguments)
            # fall through: a predicate name used as a plain identifier

        follower = self._peek()
        if follower is None:
            raise self._error("dangling identifier {!r}".format(word), None)
        if follower.kind == "EQ":
            self._advance()
            other = self._expect("IDENT", "an identifier").text
            return eq(word, other)
        if follower.kind == "NEQ":
            self._advance()
            other = self._expect("IDENT", "an identifier").text
            return neq(word, other)
        if follower.kind == "POINTS":
            self._check_theory("sll", token)  # x |-> y abbreviates next(x, y)
            self._advance()
            other = self._expect("IDENT", "an identifier").text
            return pts(word, other)
        raise self._error(
            "expected '=', '!=' or '|->' after {!r} but found {!r}".format(
                word, follower.text
            ),
            follower,
        )


def parse_entailment(text: str) -> Entailment:
    """Parse an entailment from its textual form."""
    parser = _Parser(_tokenize(text), text)
    return parser.parse_entailment()


def parse_spatial_formula(text: str) -> SpatialFormula:
    """Parse a spatial formula such as ``"next(x, y) * lseg(y, nil)"``.

    Pure conjuncts are not allowed here; use :func:`parse_entailment` for full
    entailments.
    """
    parser = _Parser(_tokenize(text), text)
    side = parser.parse_side()
    token = parser._peek()  # noqa: SLF001 - module-internal access
    if token is not None:
        raise parser._error(  # noqa: SLF001
            "unexpected trailing input {!r}".format(token.text), token
        )
    if isinstance(side, str):  # the "false" keyword
        raise ParseError("'false' is not a spatial formula")
    atoms = []
    for conjunct in side:
        if isinstance(conjunct, PureLiteral):
            raise ParseError("pure literal {} not allowed in a spatial formula".format(conjunct))
        atoms.append(conjunct)
    return SpatialFormula(atoms)
