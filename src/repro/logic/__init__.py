"""Syntax of the separation-logic fragment with list segments.

The modules in this package define the object language of the prover:

* :mod:`repro.logic.terms` — constant symbols (program variables) and ``nil``;
* :mod:`repro.logic.atoms` — pure equality atoms ``x ~ y`` and the basic
  spatial atoms of the registered theories (``next(x, y)``/``lseg(x, y)``
  singly-linked, ``cell(x, n, p)``/``dlseg(x, px, y, py)`` doubly-linked),
  together with spatial formulas (multisets of basic atoms joined by the
  separating conjunction);
* :mod:`repro.logic.formula` — pure literals and entailments
  ``Pi /\\ Sigma |- Pi' /\\ Sigma'``;
* :mod:`repro.logic.clauses` — the clause representation ``Gamma -> Delta``
  with at most one spatial atom;
* :mod:`repro.logic.cnf` — the clausal embedding ``cnf(E)`` of the negated
  entailment (Section 3.2 of the paper);
* :mod:`repro.logic.ordering` — the ground term/literal/clause orderings used
  by the superposition calculus, with ``nil`` as the minimal constant;
* :mod:`repro.logic.intern` — interning of constants and equality atoms (one
  shared object per distinct value, with precomputed hashes);
* :mod:`repro.logic.parser` — a textual surface syntax;
* :mod:`repro.logic.printer` — human-readable rendering of every syntactic
  category.
"""

from repro.logic.terms import Const, NIL
from repro.logic.atoms import (
    DllCell,
    DllSegment,
    EqAtom,
    ListSegment,
    PointsTo,
    SpatialAtom,
    SpatialFormula,
    emp,
)
from repro.logic.formula import (
    Entailment,
    PureLiteral,
    const,
    consts,
    dcell,
    dlseg,
    eq,
    lseg,
    neq,
    nil,
    pts,
)
from repro.logic.clauses import Clause, EMPTY_CLAUSE
from repro.logic.cnf import CnfEmbedding, cnf
from repro.logic.ordering import TermOrder
from repro.logic.parser import ParseError, parse_entailment, parse_spatial_formula

__all__ = [
    "Const",
    "NIL",
    "EqAtom",
    "PointsTo",
    "ListSegment",
    "DllCell",
    "DllSegment",
    "SpatialAtom",
    "SpatialFormula",
    "emp",
    "Entailment",
    "PureLiteral",
    "const",
    "consts",
    "eq",
    "neq",
    "pts",
    "lseg",
    "dcell",
    "dlseg",
    "nil",
    "Clause",
    "EMPTY_CLAUSE",
    "CnfEmbedding",
    "cnf",
    "TermOrder",
    "ParseError",
    "parse_entailment",
    "parse_spatial_formula",
]
