"""The clause representation ``Gamma -> Delta`` (Section 3.2 of the paper).

A clause is a disjunction of literals written in sequent form

    A1, ..., An  ->  B1, ..., Bm

meaning "if all atoms on the left hold then at least one atom on the right
holds".  The atoms on the left therefore occur *negatively* in the clause and
the atoms on the right occur *positively*.

Following the paper we only ever need clauses that contain **at most one
spatial atom** (a whole spatial formula ``Sigma`` counts as a single atom),
which gives three clause shapes:

* a *pure clause* ``Gamma -> Delta`` where both sides contain only equality
  atoms;
* a *positive spatial clause* ``Gamma -> Delta, Sigma``;
* a *negative spatial clause* ``Gamma, Sigma -> Delta``.

The class below represents all three with ``gamma``/``delta`` frozensets of
:class:`~repro.logic.atoms.EqAtom` plus an optional spatial formula tagged
with the side it occurs on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from operator import attrgetter

from repro.logic.atoms import EqAtom, SpatialFormula
from repro.logic.terms import Const

#: Structural sort key of an atom, precomputed by ``EqAtom.__init__``.
_atom_key = attrgetter("sort_key")


@dataclass(frozen=True)
class Clause:
    """A clause ``Gamma -> Delta`` with at most one spatial formula.

    Attributes
    ----------
    gamma:
        The pure atoms on the left of the sequent arrow (negative occurrences).
    delta:
        The pure atoms on the right of the sequent arrow (positive occurrences).
    spatial:
        The spatial formula occurring in the clause, or ``None`` for a pure
        clause.
    spatial_on_right:
        ``True`` when the spatial formula occurs on the right of the arrow
        (a positive spatial clause, asserting the heap shape), ``False`` when
        it occurs on the left (a negative spatial clause, refuting the shape).
        Ignored when ``spatial`` is ``None``.
    """

    gamma: FrozenSet[EqAtom] = frozenset()
    delta: FrozenSet[EqAtom] = frozenset()
    spatial: Optional[SpatialFormula] = None
    spatial_on_right: bool = True

    # -- constructors -------------------------------------------------------
    @staticmethod
    def pure(gamma: Iterable[EqAtom] = (), delta: Iterable[EqAtom] = ()) -> "Clause":
        """Build a pure clause ``Gamma -> Delta``."""
        return Clause(frozenset(gamma), frozenset(delta), None, True)

    @staticmethod
    def positive_spatial(
        sigma: SpatialFormula,
        gamma: Iterable[EqAtom] = (),
        delta: Iterable[EqAtom] = (),
    ) -> "Clause":
        """Build a positive spatial clause ``Gamma -> Delta, Sigma``."""
        return Clause(frozenset(gamma), frozenset(delta), sigma, True)

    @staticmethod
    def negative_spatial(
        sigma: SpatialFormula,
        gamma: Iterable[EqAtom] = (),
        delta: Iterable[EqAtom] = (),
    ) -> "Clause":
        """Build a negative spatial clause ``Gamma, Sigma -> Delta``."""
        return Clause(frozenset(gamma), frozenset(delta), sigma, False)

    # -- shape predicates ----------------------------------------------------
    #
    # ``is_pure``, ``is_empty`` and ``is_tautology`` are precomputed by
    # ``__post_init__`` (see below): they are read on every enqueue, every
    # model-generation round and every redundancy check, and recomputing the
    # tautology test in particular (a frozenset intersection) dominated those
    # paths.

    @property
    def is_positive_spatial(self) -> bool:
        """True for clauses of the form ``Gamma -> Delta, Sigma``."""
        return self.spatial is not None and self.spatial_on_right

    @property
    def is_negative_spatial(self) -> bool:
        """True for clauses of the form ``Gamma, Sigma -> Delta``."""
        return self.spatial is not None and not self.spatial_on_right

    # -- queries -----------------------------------------------------------
    def constants(self) -> FrozenSet[Const]:
        """All constants occurring in the clause (memoised).

        Callers treat a clause's constant set as a static property — the
        incremental model generator keys its per-constant invalidation on it
        every round — so it is computed once per clause object.
        """
        cached = self._constants  # type: ignore[attr-defined]
        if cached is not None:
            return cached
        result = set()
        for atom in self.gamma:
            result.add(atom.left)
            result.add(atom.right)
        for atom in self.delta:
            result.add(atom.left)
            result.add(atom.right)
        if self.spatial is not None:
            result.update(self.spatial.constants())
        cached = frozenset(result)
        object.__setattr__(self, "_constants", cached)
        return cached

    def literals(self) -> Tuple[Tuple[EqAtom, bool], ...]:
        """The pure literals of the clause as ``(atom, positive)`` pairs.

        Atoms are sorted by their precomputed structural key rather than by
        formatting them: this method sits on hot paths (CNF embedding, proof
        reconstruction) where string building shows up in profiles.
        """
        negative = tuple((atom, False) for atom in self.sorted_gamma())
        positive = tuple((atom, True) for atom in self.sorted_delta())
        return negative + positive

    def sorted_gamma(self) -> Tuple[EqAtom, ...]:
        """``gamma`` as a tuple in structural (presentation) sort-key order.

        This is the *canonical iteration order* of the clause's negative
        atoms.  The superposition calculus iterates negative literals in this
        order when generating inferences, so that every engine configuration
        — naive scan, clause index, dense integer kernel — emits conclusions
        in an identical sequence.  Memoised: the same clause is asked for its
        sorted sides by every inference it participates in.
        """
        cached = self._sorted_gamma  # type: ignore[attr-defined]
        if cached is None:
            cached = tuple(sorted(self.gamma, key=_atom_key))
            object.__setattr__(self, "_sorted_gamma", cached)
        return cached

    def sorted_delta(self) -> Tuple[EqAtom, ...]:
        """``delta`` as a tuple in structural sort-key order (memoised)."""
        cached = self._sorted_delta  # type: ignore[attr-defined]
        if cached is None:
            cached = tuple(sorted(self.delta, key=_atom_key))
            object.__setattr__(self, "_sorted_delta", cached)
        return cached

    def subsumes(self, other: "Clause") -> bool:
        """Clause subsumption for pure clauses.

        ``C`` subsumes ``D`` when every literal of ``C`` occurs in ``D`` (for
        ground clauses subsumption is simply literal-set inclusion).  Spatial
        clauses only subsume syntactically identical clauses.
        """
        if self.spatial is not None or other.spatial is not None:
            return self == other
        return self.gamma <= other.gamma and self.delta <= other.delta

    # -- transformations ----------------------------------------------------
    def substitute(self, mapping: Dict[Const, Const]) -> "Clause":
        """Apply a constant substitution to every component of the clause."""
        return Clause(
            frozenset(atom.substitute(mapping) for atom in self.gamma),
            frozenset(atom.substitute(mapping) for atom in self.delta),
            None if self.spatial is None else self.spatial.substitute(mapping),
            self.spatial_on_right,
        )

    def with_spatial(self, sigma: Optional[SpatialFormula], on_right: bool = True) -> "Clause":
        """Return a copy of the clause with its spatial component replaced."""
        return Clause(self.gamma, self.delta, sigma, on_right)

    def add_gamma(self, atoms: Iterable[EqAtom]) -> "Clause":
        """Return the clause with extra atoms added to the left-hand side."""
        return Clause(self.gamma | frozenset(atoms), self.delta, self.spatial, self.spatial_on_right)

    def add_delta(self, atoms: Iterable[EqAtom]) -> "Clause":
        """Return the clause with extra atoms added to the right-hand side."""
        return Clause(self.gamma, self.delta | frozenset(atoms), self.spatial, self.spatial_on_right)

    def pure_part(self) -> "Clause":
        """The pure clause obtained by dropping the spatial formula."""
        return Clause(self.gamma, self.delta, None, True)

    def __post_init__(self) -> None:
        # Clauses are set members throughout saturation; the generated
        # dataclass hash would rebuild a field tuple per call, so precompute
        # it.  The frozensets it covers cache their own hashes, which also
        # makes later membership tests on gamma/delta cheap.
        object.__setattr__(
            self, "_hash", hash((self.gamma, self.delta, self.spatial, self.spatial_on_right))
        )
        pure = self.spatial is None
        #: True when the clause contains no spatial formula.
        object.__setattr__(self, "is_pure", pure)
        #: True for the empty clause (the contradiction, written ``□``).
        object.__setattr__(self, "is_empty", pure and not self.gamma and not self.delta)
        # A pure clause is a tautology when some atom appears on both sides or
        # when the right-hand side contains a trivial equality ``x = x``;
        # spatial clauses are never considered tautologies by this check.
        tautology = pure and (
            any(atom.is_trivial for atom in self.delta) or bool(self.gamma & self.delta)
        )
        #: Cheap syntactic tautology check for pure clauses.
        object.__setattr__(self, "is_tautology", tautology)
        # Lazily-filled caches for the canonical iteration order (see
        # ``sorted_gamma``/``sorted_delta``) and the constant set.
        object.__setattr__(self, "_sorted_gamma", None)
        object.__setattr__(self, "_sorted_delta", None)
        object.__setattr__(self, "_constants", None)

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    # -- presentation ---------------------------------------------------------
    def __str__(self) -> str:
        from repro.logic.printer import format_clause

        return format_clause(self)


#: The empty clause ``□`` — deriving it refutes the clause set.
EMPTY_CLAUSE = Clause.pure()
