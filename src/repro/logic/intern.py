"""Interning of the fragment's ground objects.

The pure fragment is ground: every term is one of finitely many constants and
every pure atom is an (unordered) pair of constants.  The saturation loop
creates the *same* atoms over and over — every superposition step rewrites an
atom into one that, with high probability, some earlier inference already
produced.  Interning them collapses those duplicates into a single object, so

* hashing an atom is a single cached-integer read,
* equality checks hit the ``is`` fast path,
* the memoised ordering keys in :class:`~repro.logic.ordering.TermOrder`
  always land on an existing dictionary slot instead of a fresh key object.

Constants are interned by :func:`~repro.logic.terms.make_const` itself (every
construction path goes through it); this module adds the atom-level table and
re-exports the constant helper for symmetry.

The tables are module-level and grow with the set of distinct names seen by
the process.  That is bounded by the problem vocabulary for a single run; a
long-lived server embedding the prover can call :func:`clear_intern_tables`
between unrelated workloads.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.logic.atoms import EqAtom
from repro.logic.terms import Const, clear_const_intern, make_const

__all__ = ["intern_const", "intern_atom", "clear_intern_tables"]

#: One canonical :class:`EqAtom` per unordered pair of constants.  Keyed by
#: the pair *as given* so that both orientations resolve without re-running
#: the canonicalisation in :class:`EqAtom.__init__`.
_ATOM_INTERN: Dict[Tuple[Const, Const], EqAtom] = {}


def intern_const(name: "str | Const") -> Const:
    """The interned constant for ``name`` (alias of :func:`make_const`)."""
    return make_const(name)


def intern_atom(left: Const, right: Const) -> EqAtom:
    """The canonical ``EqAtom(left, right)``, shared across all call sites."""
    key = (left, right)
    atom = _ATOM_INTERN.get(key)
    if atom is None:
        atom = EqAtom(left, right)
        _ATOM_INTERN[key] = atom
        # Register the canonical orientation too, so EqAtom(y, x) lookups and
        # already-canonical lookups share the same object.
        _ATOM_INTERN.setdefault((atom.left, atom.right), atom)
        _ATOM_INTERN.setdefault((atom.right, atom.left), atom)
    return atom


def clear_intern_tables() -> None:
    """Drop the atom and constant intern tables (for long-lived processes).

    Call between unrelated workloads to stop the tables from pinning every
    name the process has ever seen.  Existing objects stay valid — interning
    only affects sharing, never equality.

    The dense kernel's clause-level decode memos deliberately do *not* live
    here: they are per-engine (see ``DenseEncoder.decode``), so a long batch
    or fuzzing run releases each problem's clauses with its engine instead of
    pinning them process-wide.
    """
    _ATOM_INTERN.clear()
    clear_const_intern()
