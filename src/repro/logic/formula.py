"""Pure literals and entailments.

The prover's input is an entailment of the restricted shape used throughout
program analysis tools built on this fragment (Section 3.1):

    Pi /\\ Sigma  |-  Pi' /\\ Sigma'

where ``Pi`` and ``Pi'`` are conjunctions of pure literals (equalities and
disequalities between program variables and ``nil``), while ``Sigma`` and
``Sigma'`` are spatial formulas (iterated separating conjunctions of ``next``
and ``lseg`` atoms).

This module provides:

* :class:`PureLiteral` — a possibly negated equality atom;
* :class:`Entailment` — the four components above with convenience helpers;
* small constructor functions (:func:`eq`, :func:`neq`, :func:`pts`,
  :func:`lseg`, :func:`const`, :func:`consts`, :func:`nil`) that make building
  entailments in code or in tests pleasant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Tuple, Union

from repro.logic.atoms import (
    DllCell,
    DllSegment,
    EqAtom,
    ListSegment,
    PointsTo,
    SpatialAtom,
    SpatialFormula,
    emp,
)
from repro.logic.terms import Const, NIL, make_const, make_consts


@dataclass(frozen=True)
class PureLiteral:
    """A pure literal: an equality atom with a polarity.

    ``PureLiteral(EqAtom(x, y), positive=True)`` is the equality ``x = y``;
    with ``positive=False`` it is the disequality ``x != y``.
    """

    atom: EqAtom
    positive: bool = True

    @property
    def negated(self) -> "PureLiteral":
        """The literal with the opposite polarity."""
        return PureLiteral(self.atom, not self.positive)

    @property
    def is_equality(self) -> bool:
        """True for ``x = y`` literals."""
        return self.positive

    @property
    def is_disequality(self) -> bool:
        """True for ``x != y`` literals."""
        return not self.positive

    @property
    def is_contradictory(self) -> bool:
        """True for literals of the form ``x != x`` (never satisfiable)."""
        return not self.positive and self.atom.is_trivial

    @property
    def is_trivially_true(self) -> bool:
        """True for literals of the form ``x = x``."""
        return self.positive and self.atom.is_trivial

    def constants(self) -> FrozenSet[Const]:
        """The constants occurring in the literal."""
        return self.atom.constants()

    def substitute(self, mapping: Dict[Const, Const]) -> "PureLiteral":
        """Simultaneously replace constants according to ``mapping``."""
        return PureLiteral(self.atom.substitute(mapping), self.positive)

    def __str__(self) -> str:
        separator = " = " if self.positive else " != "
        return "{}{}{}".format(self.atom.left, separator, self.atom.right)


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------

ConstLike = Union[str, Const]


def const(name: ConstLike) -> Const:
    """Create (or coerce) a constant symbol."""
    return make_const(name)


def consts(names: "str | Iterable[str]") -> Tuple[Const, ...]:
    """Create several constants; accepts a whitespace separated string."""
    return make_consts(names)


def nil() -> Const:
    """The null-pointer constant."""
    return NIL


def eq(left: ConstLike, right: ConstLike) -> PureLiteral:
    """The pure literal ``left = right``."""
    return PureLiteral(EqAtom(make_const(left), make_const(right)), positive=True)


def neq(left: ConstLike, right: ConstLike) -> PureLiteral:
    """The pure literal ``left != right``."""
    return PureLiteral(EqAtom(make_const(left), make_const(right)), positive=False)


def pts(source: ConstLike, target: ConstLike) -> PointsTo:
    """The basic spatial atom ``next(source, target)``."""
    return PointsTo(make_const(source), make_const(target))


def lseg(source: ConstLike, target: ConstLike) -> ListSegment:
    """The basic spatial atom ``lseg(source, target)``."""
    return ListSegment(make_const(source), make_const(target))


def dcell(source: ConstLike, target: ConstLike, prev: ConstLike) -> DllCell:
    """The doubly-linked cell ``cell(source, target, prev)``."""
    return DllCell(make_const(source), make_const(target), make_const(prev))


def dlseg(source: ConstLike, prev: ConstLike, target: ConstLike, back: ConstLike) -> DllSegment:
    """The doubly-linked segment ``dlseg(source, prev, target, back)``."""
    return DllSegment(make_const(source), make_const(prev), make_const(target), make_const(back))


SideItem = Union[PureLiteral, SpatialAtom, SpatialFormula]


def _split_side(items: Iterable[SideItem]) -> Tuple[Tuple[PureLiteral, ...], SpatialFormula]:
    """Split a mixed conjunction into its pure part and its spatial part."""
    pure = []
    spatial_atoms = []
    for item in items:
        if isinstance(item, PureLiteral):
            pure.append(item)
        elif isinstance(item, SpatialAtom):
            spatial_atoms.append(item)
        elif isinstance(item, SpatialFormula):
            spatial_atoms.extend(item.atoms)
        else:
            raise TypeError("unexpected conjunct {!r}".format(item))
    return tuple(pure), SpatialFormula(spatial_atoms)


@dataclass(frozen=True)
class Entailment:
    """An entailment ``Pi /\\ Sigma |- Pi' /\\ Sigma'``.

    Attributes
    ----------
    lhs_pure, rhs_pure:
        Tuples of :class:`PureLiteral` (the conjunctions ``Pi`` and ``Pi'``).
    lhs_spatial, rhs_spatial:
        :class:`SpatialFormula` instances (``Sigma`` and ``Sigma'``).
    """

    lhs_pure: Tuple[PureLiteral, ...]
    lhs_spatial: SpatialFormula
    rhs_pure: Tuple[PureLiteral, ...]
    rhs_spatial: SpatialFormula

    # -- constructors --------------------------------------------------------
    @classmethod
    def build(
        cls,
        lhs: Iterable[SideItem] = (),
        rhs: Iterable[SideItem] = (),
    ) -> "Entailment":
        """Build an entailment from two mixed conjunctions.

        Pure literals and spatial atoms may be freely mixed on either side;
        they are sorted into the pure and spatial components automatically::

            Entailment.build(
                lhs=[neq("c", "e"), lseg("a", "b"), pts("c", "d")],
                rhs=[lseg("b", "c")],
            )
        """
        lhs_pure, lhs_spatial = _split_side(lhs)
        rhs_pure, rhs_spatial = _split_side(rhs)
        return cls(lhs_pure, lhs_spatial, rhs_pure, rhs_spatial)

    @classmethod
    def with_false_rhs(cls, lhs: Iterable[SideItem]) -> "Entailment":
        """Build an entailment of the form ``Pi /\\ Sigma |- false``.

        The first synthetic benchmark of the paper (Table 1) checks
        entailments whose right-hand side is the contradiction ``⊥``; such an
        entailment is valid exactly when the left-hand side is unsatisfiable.
        We encode ``⊥`` as the unsatisfiable pure literal ``nil != nil`` which
        keeps every component of the pipeline uniform.
        """
        lhs_pure, lhs_spatial = _split_side(lhs)
        return cls(lhs_pure, lhs_spatial, (neq(NIL, NIL),), emp())

    # -- queries --------------------------------------------------------------
    @property
    def has_false_rhs(self) -> bool:
        """True if the right-hand side is the canonical encoding of ``false``."""
        return (
            self.rhs_spatial.is_emp
            and len(self.rhs_pure) == 1
            and self.rhs_pure[0].is_contradictory
        )

    def constants(self) -> FrozenSet[Const]:
        """All constants occurring anywhere in the entailment."""
        result = set()
        for literal in self.lhs_pure + self.rhs_pure:
            result.update(literal.constants())
        result.update(self.lhs_spatial.constants())
        result.update(self.rhs_spatial.constants())
        return frozenset(result)

    def variables(self) -> FrozenSet[Const]:
        """All program variables (constants other than ``nil``)."""
        return frozenset(c for c in self.constants() if not c.is_nil)

    def size(self) -> int:
        """A simple size measure: the total number of atoms on both sides."""
        return (
            len(self.lhs_pure)
            + len(self.rhs_pure)
            + len(self.lhs_spatial)
            + len(self.rhs_spatial)
        )

    # -- transformations --------------------------------------------------------
    def rename(self, mapping: Dict[Const, Const]) -> "Entailment":
        """Apply a renaming (or any substitution) to every component."""
        return Entailment(
            tuple(literal.substitute(mapping) for literal in self.lhs_pure),
            self.lhs_spatial.substitute(mapping),
            tuple(literal.substitute(mapping) for literal in self.rhs_pure),
            self.rhs_spatial.substitute(mapping),
        )

    def swap_sides(self) -> "Entailment":
        """Return the converse entailment (useful for testing equivalences)."""
        return Entailment(self.rhs_pure, self.rhs_spatial, self.lhs_pure, self.lhs_spatial)

    def __str__(self) -> str:
        from repro.logic.printer import format_entailment

        return format_entailment(self)
