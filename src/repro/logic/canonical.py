"""Canonical forms of entailments up to alpha-equivalence.

Two entailments that differ only in the names of their program variables (and
in the order of their pure or spatial conjuncts) are the *same* proving
problem: validity, proofs and counterexamples all transport along the
renaming.  The batch layer exploits this by memoising verdicts under a
canonical form, so it needs a fingerprint with two properties:

* **invariance** — renaming the variables (any bijection fixing ``nil``) or
  permuting conjuncts must not change the fingerprint;
* **completeness** — two entailments with the same fingerprint must actually
  be renamings of each other, otherwise a cache hit could return a wrong
  verdict.

Both are obtained by computing a canonical *labelling*: a deterministic total
order on the entailment's constants that depends only on the structure around
them, never on their names.  The entailment re-expressed in terms of the
positions in that order (:func:`CanonicalForm.key`) is then a complete
invariant — equal keys literally describe the same renamed entailment.

The labelling uses the standard colour-refinement / individualisation scheme
from graph canonicalisation:

1. view constants as nodes and atom occurrences as labelled (multi-)edges —
   ``x != y`` on the left-hand side links ``x`` and ``y`` with the label
   ``("pure", "lhs", "neq")``, ``lseg(x, y)`` on the right links them with
   ``("spatial", "rhs", "lseg")`` plus a source/target role, and so on;
2. start from the trivial colouring (``nil`` alone in its own class — it is
   never renamed) and refine: a constant's new colour is its old colour plus
   the multiset of (edge label, neighbour colour) pairs over its occurrences.
   Refinement is isomorphism-invariant, so renamings get the same colours;
3. if refinement leaves ties (a colour class with several constants), branch:
   individualise each member of the first tied class in turn, re-refine,
   recurse, and keep the branch whose fully ordered encoding is
   lexicographically smallest.  Taking the minimum over *all* members keeps
   the result independent of the input names.

Entailments in this fragment are small (tens of constants) and rarely
symmetric, so the branching is almost always trivial; a refinement budget
guards the pathological fully-symmetric cases, which simply opt out of
caching via :class:`TooSymmetricError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.logic.formula import Entailment
from repro.logic.terms import Const, make_const

__all__ = [
    "CanonicalForm",
    "TooSymmetricError",
    "canonicalize",
    "fingerprint",
    "canonical_entailment",
]

#: Version tag embedded in every fingerprint so that persisted keys from an
#: older encoding can never alias keys of a newer one.
_KEY_VERSION = "slp-canon-1"

#: Prefix of the canonical variable names ``c1, c2, ...``.
_CANONICAL_PREFIX = "c"

#: Default ceiling on colour-refinement passes across all branches of the
#: individualisation search.  Generous: a non-degenerate entailment needs a
#: handful of passes in total.
_DEFAULT_BUDGET = 2000


class TooSymmetricError(RuntimeError):
    """The individualisation search exceeded its refinement budget.

    Only (nearly) fully symmetric entailments trigger this; callers treat
    such inputs as uncacheable rather than spending factorial time on them.
    """


#: An edge label: (group, side, kind, role).  All four components are strings
#: so that labels — and everything built from them — sort without mixed-type
#: comparisons.
_Label = Tuple[str, str, str, str]

#: One occurrence of a constant: the edge label plus the constant at the
#: other end of the atom (the constant itself for degenerate ``x = x`` /
#: ``lseg(x, x)`` atoms, which refinement handles naturally).
_Occurrence = Tuple[_Label, Const]


def _occurrence_table(entailment: Entailment) -> Dict[Const, List[_Occurrence]]:
    """Every constant's atom occurrences, as labelled edges to its neighbours."""
    table: Dict[Const, List[_Occurrence]] = {c: [] for c in entailment.constants()}
    for side, literals in (("lhs", entailment.lhs_pure), ("rhs", entailment.rhs_pure)):
        for literal in literals:
            kind = "eq" if literal.positive else "neq"
            left, right = literal.atom.left, literal.atom.right
            table[left].append((("pure", side, kind, "end"), right))
            table[right].append((("pure", side, kind, "end"), left))
    for side, sigma in (("lhs", entailment.lhs_spatial), ("rhs", entailment.rhs_spatial)):
        for atom in sigma:
            roles = atom.argument_roles()
            if len(roles) == 2:
                # Binary atoms keep the original single-neighbour labels so
                # that singly-linked fingerprints are unchanged.
                (role_a, const_a), (role_b, const_b) = roles
                table[const_a].append((("spatial", side, atom.kind, role_a), const_b))
                table[const_b].append((("spatial", side, atom.kind, role_b), const_a))
                continue
            # Wider atoms: connect every argument to every other argument,
            # labelling the edge with the ordered role pair so refinement sees
            # the full incidence structure of the atom.
            for i, (role_i, const_i) in enumerate(roles):
                for j, (role_j, const_j) in enumerate(roles):
                    if i != j:
                        table[const_i].append(
                            (
                                ("spatial", side, atom.kind, "{}>{}".format(role_i, role_j)),
                                const_j,
                            )
                        )
    return table


class _Refiner:
    """Colour refinement with a shared pass budget across the whole search."""

    def __init__(self, occurrences: Dict[Const, List[_Occurrence]], budget: int):
        self.occurrences = occurrences
        self.budget = budget

    def refine(self, colours: Dict[Const, int]) -> Dict[Const, int]:
        """Refine ``colours`` to a fixpoint, renumbering classes canonically."""
        while True:
            if self.budget <= 0:
                raise TooSymmetricError(
                    "canonicalisation exceeded its refinement budget; "
                    "the entailment is too symmetric to fingerprint cheaply"
                )
            self.budget -= 1
            signatures = {
                constant: (
                    colour,
                    tuple(
                        sorted(
                            (label, colours[other])
                            for label, other in self.occurrences[constant]
                        )
                    ),
                )
                for constant, colour in colours.items()
            }
            # Renumber by sorted signature: the ids depend only on structure,
            # so isomorphic inputs are renumbered identically.
            numbering = {
                signature: index
                for index, signature in enumerate(sorted(set(signatures.values())))
            }
            refined = {c: numbering[signatures[c]] for c in colours}
            if len(numbering) == len(set(colours.values())):
                return refined
            colours = refined


def _cells(colours: Dict[Const, int]) -> List[List[Const]]:
    """The colour classes, ordered by colour id (members in arbitrary order)."""
    grouped: Dict[int, List[Const]] = {}
    for constant, colour in colours.items():
        grouped.setdefault(colour, []).append(constant)
    return [grouped[colour] for colour in sorted(grouped)]


_Key = Tuple


def _encode(entailment: Entailment, index: Mapping[Const, int]) -> _Key:
    """The entailment re-expressed through constant positions, conjuncts sorted.

    This *is* the fingerprint: equal encodings mean the two entailments
    become literally identical once their constants are numbered by ``index``.
    """

    def pure(literals) -> Tuple:
        encoded = []
        for literal in literals:
            i, j = index[literal.atom.left], index[literal.atom.right]
            encoded.append((int(literal.positive), min(i, j), max(i, j)))
        return tuple(sorted(encoded))

    def spatial(sigma) -> Tuple:
        return tuple(
            sorted(
                (atom.kind,) + tuple(index[constant] for _, constant in atom.argument_roles())
                for atom in sigma
            )
        )

    return (
        _KEY_VERSION,
        len(index),
        pure(entailment.lhs_pure),
        spatial(entailment.lhs_spatial),
        pure(entailment.rhs_pure),
        spatial(entailment.rhs_spatial),
    )


def _search(
    entailment: Entailment,
    refiner: _Refiner,
    colours: Dict[Const, int],
) -> Tuple[_Key, Dict[Const, int]]:
    """Individualisation-refinement: the minimal encoding over all tie-breaks."""
    colours = refiner.refine(colours)
    cells = _cells(colours)
    tied = next((cell for cell in cells if len(cell) > 1), None)
    if tied is None:
        # Discrete colouring: the colours induce a total order.  nil is pinned
        # to position 0 — it can never be renamed, so the key must record
        # which node it is — and the variables take 1..n in colour order.
        ordered = sorted(colours, key=lambda c: (0 if c.is_nil else 1, colours[c]))
        index = {constant: position for position, constant in enumerate(ordered)}
        if not any(c.is_nil for c in colours):
            # No nil anywhere: shift positions up so 0 still unambiguously
            # means "nil" across the whole key space.
            index = {constant: position + 1 for constant, position in index.items()}
        return _encode(entailment, index), index
    fresh = len(colours)  # strictly above every existing colour id
    best: Optional[Tuple[_Key, Dict[Const, int]]] = None
    for candidate in tied:
        branched = dict(colours)
        branched[candidate] = fresh
        outcome = _search(entailment, refiner, branched)
        if best is None or outcome[0] < best[0]:
            best = outcome
    assert best is not None
    return best


@dataclass(frozen=True)
class CanonicalForm:
    """An entailment's canonical fingerprint plus the renaming that realises it.

    Attributes
    ----------
    key:
        The hashable fingerprint.  ``a.key == b.key`` holds exactly when the
        two entailments are alpha-equivalent (same problem up to renaming of
        non-``nil`` constants and reordering of conjuncts).
    renaming:
        Bijection from the entailment's constants to the canonical names
        ``c1, c2, ...`` (``nil`` maps to itself).  Applying it with
        :meth:`Entailment.rename` yields the canonical representative shared
        by the whole alpha-equivalence class.
    inverse:
        The inverse bijection, used to map cached proofs and counterexamples
        back into the entailment's own vocabulary.
    """

    key: _Key
    renaming: Mapping[Const, Const]
    inverse: Mapping[Const, Const]


def canonicalize(entailment: Entailment, budget: int = _DEFAULT_BUDGET) -> CanonicalForm:
    """Compute the canonical form of ``entailment``.

    Raises :class:`TooSymmetricError` for pathologically symmetric inputs
    (callers should treat those as uncacheable).
    """
    occurrences = _occurrence_table(entailment)
    # nil is pinned: it can never be renamed, so it starts in its own class.
    colours = {c: (0 if c.is_nil else 1) for c in occurrences}
    if not colours:
        return CanonicalForm(key=_encode(entailment, {}), renaming={}, inverse={})
    refiner = _Refiner(occurrences, budget)
    key, index = _search(entailment, refiner, colours)
    # Positions -> canonical names.  nil keeps its name; the remaining
    # constants are numbered c1..cn by their canonical position.
    ordered = sorted(
        (c for c in index if not c.is_nil), key=lambda constant: index[constant]
    )
    renaming: Dict[Const, Const] = {}
    inverse: Dict[Const, Const] = {}
    for position, constant in enumerate(ordered, start=1):
        canonical = make_const("{}{}".format(_CANONICAL_PREFIX, position))
        renaming[constant] = canonical
        inverse[canonical] = constant
    return CanonicalForm(key=key, renaming=renaming, inverse=inverse)


def fingerprint(entailment: Entailment, budget: int = _DEFAULT_BUDGET) -> _Key:
    """The alpha-invariant fingerprint alone (see :class:`CanonicalForm`)."""
    return canonicalize(entailment, budget=budget).key


def canonical_entailment(
    entailment: Entailment, budget: int = _DEFAULT_BUDGET
) -> Entailment:
    """The canonical representative of the entailment's alpha-equivalence class.

    Alpha-equivalent entailments map to *equal* representatives: the renaming
    is the canonical one and the pure conjuncts are sorted (spatial formulas
    are already kept in canonical order by :class:`SpatialFormula`).
    """
    renamed = entailment.rename(dict(canonicalize(entailment, budget=budget).renaming))

    def literal_key(literal):
        return (literal.positive, literal.atom.sort_key)

    return Entailment(
        tuple(sorted(renamed.lhs_pure, key=literal_key)),
        renamed.lhs_spatial,
        tuple(sorted(renamed.rhs_pure, key=literal_key)),
        renamed.rhs_spatial,
    )
