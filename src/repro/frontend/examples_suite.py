"""The eighteen annotated example programs (the Table 3 workload).

The paper benchmarks the provers on the verification conditions that Smallfoot
generates for the list-manipulating example programs shipped with its
distribution — about 209 entailments over 18 programs.  This module provides
an equivalent suite written in our small heap language: eighteen classic
singly-linked-list procedures, each annotated with a precondition, loop
invariants and a postcondition, from which :func:`generate_suite_vcs` produces
the verification-condition entailments via symbolic execution.

All the programs are memory safe and their specifications hold, so every
generated verification condition is a *valid* entailment — which matches the
footnote in Section 6: the interesting difference between the provers on this
suite is that the incomplete jStar-style baseline fails to prove a substantial
subset of them (the ones that need general list-segment compositions), while
both SLP and the Smallfoot-style baseline prove them all.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.frontend.programs import (
    Assertion,
    Assign,
    Dispose,
    IfThenElse,
    Lookup,
    Mutate,
    New,
    Procedure,
    While,
)
from repro.frontend.symexec import VerificationCondition, generate_vcs
from repro.logic.formula import eq, lseg, neq, pts


def _traverse() -> Procedure:
    """Walk a null-terminated list to its end."""
    return Procedure(
        name="list_traverse",
        variables=["c", "t"],
        precondition=Assertion.of(lseg("c", "nil")),
        body=[
            Assign("t", "c"),
            While(
                neq("t", "nil"),
                Assertion.of(lseg("c", "t"), lseg("t", "nil")),
                [Lookup("t", "t")],
            ),
        ],
        postcondition=Assertion.of(eq("t", "nil"), lseg("c", "nil")),
        description="cursor walk over a complete list",
    )


def _dispose_list() -> Procedure:
    """Deallocate every node of a list."""
    return Procedure(
        name="list_dispose",
        variables=["c", "t"],
        precondition=Assertion.of(lseg("c", "nil")),
        body=[
            While(
                neq("c", "nil"),
                Assertion.of(lseg("c", "nil")),
                [Lookup("t", "c"), Dispose("c"), Assign("c", "t")],
            ),
        ],
        postcondition=Assertion.of(eq("c", "nil")),
        description="iterative disposal of a complete list",
    )


def _insert_front() -> Procedure:
    """Push a freshly allocated node on the front of a list."""
    return Procedure(
        name="list_insert_front",
        variables=["c", "t"],
        precondition=Assertion.of(lseg("c", "nil")),
        body=[New("t"), Mutate("t", "c"), Assign("c", "t")],
        postcondition=Assertion.of(lseg("c", "nil")),
        description="cons a new head cell",
    )


def _copy() -> Procedure:
    """Copy a list (the copy is built in reverse order, which has the same shape)."""
    return Procedure(
        name="list_copy",
        variables=["c", "d", "t", "u"],
        precondition=Assertion.of(lseg("c", "nil")),
        body=[
            Assign("t", "c"),
            Assign("d", "nil"),
            While(
                neq("t", "nil"),
                Assertion.of(lseg("c", "t"), lseg("t", "nil"), lseg("d", "nil")),
                [New("u"), Mutate("u", "d"), Assign("d", "u"), Lookup("t", "t")],
            ),
        ],
        postcondition=Assertion.of(lseg("c", "nil"), lseg("d", "nil")),
        description="structural copy of a list",
    )


def _reverse() -> Procedure:
    """In-place list reversal."""
    return Procedure(
        name="list_reverse",
        variables=["c", "d", "t"],
        precondition=Assertion.of(lseg("c", "nil")),
        body=[
            Assign("d", "nil"),
            While(
                neq("c", "nil"),
                Assertion.of(lseg("c", "nil"), lseg("d", "nil")),
                [Lookup("t", "c"), Mutate("c", "d"), Assign("d", "c"), Assign("c", "t")],
            ),
        ],
        postcondition=Assertion.of(eq("c", "nil"), lseg("d", "nil")),
        description="classic three-pointer reversal",
    )


def _append() -> Procedure:
    """Append list ``d`` at the end of the non-empty list ``c``."""
    return Procedure(
        name="list_append",
        variables=["c", "d", "t", "u"],
        precondition=Assertion.of(neq("c", "nil"), lseg("c", "nil"), lseg("d", "nil")),
        body=[
            Assign("t", "c"),
            Lookup("u", "t"),
            While(
                neq("u", "nil"),
                Assertion.of(lseg("c", "t"), pts("t", "u"), lseg("u", "nil"), lseg("d", "nil")),
                [Assign("t", "u"), Lookup("u", "u")],
            ),
            Mutate("t", "d"),
        ],
        postcondition=Assertion.of(lseg("c", "nil")),
        description="find the last node and link the second list there",
    )


def _insert_after() -> Procedure:
    """Insert a freshly allocated node right after a given interior node ``p``."""
    return Procedure(
        name="list_insert_after",
        variables=["c", "p", "q", "u"],
        precondition=Assertion.of(lseg("c", "p"), pts("p", "q"), lseg("q", "nil")),
        body=[New("u"), Mutate("u", "q"), Mutate("p", "u")],
        postcondition=Assertion.of(lseg("c", "p"), pts("p", "u"), pts("u", "q"), lseg("q", "nil")),
        description="splice a node into the middle of a list",
    )


def _delete_after() -> Procedure:
    """Unlink and dispose the node following ``p``."""
    return Procedure(
        name="list_delete_after",
        variables=["c", "p", "q", "r"],
        precondition=Assertion.of(lseg("c", "p"), pts("p", "q"), pts("q", "r"), lseg("r", "nil")),
        body=[Mutate("p", "r"), Dispose("q")],
        postcondition=Assertion.of(lseg("c", "p"), pts("p", "r"), lseg("r", "nil")),
        description="remove the successor of an interior node",
    )


def _head_dispose() -> Procedure:
    """Dispose the head node of a non-empty list."""
    return Procedure(
        name="list_head_dispose",
        variables=["c", "d"],
        precondition=Assertion.of(pts("c", "d"), lseg("d", "nil")),
        body=[Dispose("c"), Assign("c", "d")],
        postcondition=Assertion.of(lseg("c", "nil")),
        description="pop the head cell",
    )


def _queue_enqueue() -> Procedure:
    """Enqueue on a queue represented as a segment plus a sentinel cell."""
    return Procedure(
        name="queue_enqueue",
        variables=["f", "b", "u"],
        precondition=Assertion.of(lseg("f", "b"), pts("b", "nil")),
        body=[New("u"), Mutate("u", "nil"), Mutate("b", "u"), Assign("b", "u")],
        postcondition=Assertion.of(lseg("f", "b"), pts("b", "nil")),
        description="append a sentinel cell at the back of a queue",
    )


def _queue_dequeue() -> Procedure:
    """Dequeue from a non-empty queue."""
    return Procedure(
        name="queue_dequeue",
        variables=["f", "b", "q"],
        precondition=Assertion.of(pts("f", "q"), lseg("q", "b"), pts("b", "nil")),
        body=[Dispose("f"), Assign("f", "q")],
        postcondition=Assertion.of(lseg("f", "b"), pts("b", "nil")),
        description="drop the front cell of a queue",
    )


def _find_last() -> Procedure:
    """Position a cursor on the last node of a non-empty list."""
    return Procedure(
        name="list_find_last",
        variables=["c", "t", "u"],
        precondition=Assertion.of(neq("c", "nil"), lseg("c", "nil")),
        body=[
            Assign("t", "c"),
            Lookup("u", "t"),
            While(
                neq("u", "nil"),
                Assertion.of(lseg("c", "t"), pts("t", "u"), lseg("u", "nil")),
                [Assign("t", "u"), Lookup("u", "u")],
            ),
        ],
        postcondition=Assertion.of(lseg("c", "t"), pts("t", "nil")),
        description="walk to the last cell without modifying the list",
    )


def _double_traverse() -> Procedure:
    """Traverse two independent lists one after the other."""
    return Procedure(
        name="list_double_traverse",
        variables=["a", "b", "t"],
        precondition=Assertion.of(lseg("a", "nil"), lseg("b", "nil")),
        body=[
            Assign("t", "a"),
            While(
                neq("t", "nil"),
                Assertion.of(lseg("a", "t"), lseg("t", "nil"), lseg("b", "nil")),
                [Lookup("t", "t")],
            ),
            Assign("t", "b"),
            While(
                neq("t", "nil"),
                Assertion.of(lseg("a", "nil"), lseg("b", "t"), lseg("t", "nil")),
                [Lookup("t", "t")],
            ),
        ],
        postcondition=Assertion.of(lseg("a", "nil"), lseg("b", "nil")),
        description="two successive cursor walks",
    )


def _partial_traverse() -> Procedure:
    """Traverse a list up to a distinguished sentinel node ``s``."""
    return Procedure(
        name="list_partial_traverse",
        variables=["c", "s", "t"],
        precondition=Assertion.of(lseg("c", "s"), pts("s", "nil")),
        body=[
            Assign("t", "c"),
            While(
                neq("t", "s"),
                Assertion.of(lseg("c", "t"), lseg("t", "s"), pts("s", "nil")),
                [Lookup("t", "t")],
            ),
        ],
        postcondition=Assertion.of(eq("t", "s"), lseg("c", "s"), pts("s", "nil")),
        description="cursor walk that stops at an allocated sentinel",
    )


def _swap_tails() -> Procedure:
    """Swap the tails of two non-empty lists."""
    return Procedure(
        name="list_swap_tails",
        variables=["a", "b", "x", "y"],
        precondition=Assertion.of(pts("a", "x"), lseg("x", "nil"), pts("b", "y"), lseg("y", "nil")),
        body=[Mutate("a", "y"), Mutate("b", "x")],
        postcondition=Assertion.of(
            pts("a", "y"), lseg("y", "nil"), pts("b", "x"), lseg("x", "nil")
        ),
        description="exchange the successors of two head cells",
    )


def _build_three() -> Procedure:
    """Build a three-element list from nothing."""
    return Procedure(
        name="list_build_three",
        variables=["c", "t"],
        precondition=Assertion.of(),
        body=[
            Assign("c", "nil"),
            New("t"),
            Mutate("t", "c"),
            Assign("c", "t"),
            New("t"),
            Mutate("t", "c"),
            Assign("c", "t"),
            New("t"),
            Mutate("t", "c"),
            Assign("c", "t"),
        ],
        postcondition=Assertion.of(lseg("c", "nil")),
        description="allocate and link three cells",
    )


def _dispose_two() -> Procedure:
    """Dispose two lists one after the other."""
    return Procedure(
        name="list_dispose_two",
        variables=["a", "b", "t"],
        precondition=Assertion.of(lseg("a", "nil"), lseg("b", "nil")),
        body=[
            While(
                neq("a", "nil"),
                Assertion.of(lseg("a", "nil"), lseg("b", "nil")),
                [Lookup("t", "a"), Dispose("a"), Assign("a", "t")],
            ),
            While(
                neq("b", "nil"),
                Assertion.of(eq("a", "nil"), lseg("b", "nil")),
                [Lookup("t", "b"), Dispose("b"), Assign("b", "t")],
            ),
        ],
        postcondition=Assertion.of(eq("a", "nil"), eq("b", "nil")),
        description="sequential disposal of two lists",
    )


def _skip_one() -> Procedure:
    """Advance a cursor by one or two cells depending on a test."""
    return Procedure(
        name="list_skip_one",
        variables=["c", "t"],
        precondition=Assertion.of(neq("c", "nil"), lseg("c", "nil")),
        body=[
            Lookup("t", "c"),
            IfThenElse(neq("t", "nil"), [Lookup("t", "t")], []),
        ],
        postcondition=Assertion.of(lseg("c", "nil")),
        description="conditional double dereference",
    )


def all_programs() -> List[Procedure]:
    """The full example suite (18 annotated procedures)."""
    return [
        _traverse(),
        _dispose_list(),
        _insert_front(),
        _copy(),
        _reverse(),
        _append(),
        _insert_after(),
        _delete_after(),
        _head_dispose(),
        _queue_enqueue(),
        _queue_dequeue(),
        _find_last(),
        _double_traverse(),
        _partial_traverse(),
        _swap_tails(),
        _build_three(),
        _dispose_two(),
        _skip_one(),
    ]


def generate_suite_vcs(programs: Sequence[Procedure] = ()) -> List[VerificationCondition]:
    """Generate the verification conditions of the whole suite (or of a subset)."""
    selected = list(programs) if programs else all_programs()
    conditions: List[VerificationCondition] = []
    for procedure in selected:
        conditions.extend(generate_vcs(procedure))
    return conditions


def vcs_by_program() -> Dict[str, List[VerificationCondition]]:
    """The suite's verification conditions grouped by procedure name."""
    grouped: Dict[str, List[VerificationCondition]] = {}
    for condition in generate_suite_vcs():
        grouped.setdefault(condition.procedure, []).append(condition)
    return grouped
