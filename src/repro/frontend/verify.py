"""Batch verification of annotated procedures.

:func:`repro.frontend.symexec.generate_vcs` turns a procedure into a stream
of entailments; this module closes the loop by checking them all through the
batch engine.  Procedure VC streams are the workload where the proof cache
earns its keep: loop bodies re-emit the same invariant-preservation
obligation for every path with fresh cursor/old-value names, and the
memory-safety side conditions repeat almost verbatim across commands — all
alpha-equivalent, so only one representative of each class is ever proved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.core.batch import BatchProver
from repro.core.cache import ProofCache
from repro.core.config import ProverConfig
from repro.core.result import ProofResult
from repro.frontend.programs import Procedure
from repro.frontend.symexec import VerificationCondition, generate_vcs

__all__ = ["ProcedureReport", "prove_procedure"]


@dataclass
class ProcedureReport:
    """The outcome of checking every verification condition of a procedure.

    ``results`` pairs each VC with its proof result in generation order; a
    ``None`` result marks a VC that exceeded the per-instance budget (only
    possible when the configuration sets one).
    """

    procedure: str
    results: List[Tuple[VerificationCondition, Optional[ProofResult]]]
    cache_hits: int = 0
    deduplicated: int = 0

    @property
    def verified(self) -> bool:
        """True when every verification condition was proved valid."""
        return all(result is not None and result.is_valid for _, result in self.results)

    def failures(self) -> List[Tuple[VerificationCondition, Optional[ProofResult]]]:
        """The VCs that are invalid (with counterexamples) or undecided."""
        return [
            (vc, result)
            for vc, result in self.results
            if result is None or result.is_invalid
        ]

    def __str__(self) -> str:
        status = "verified" if self.verified else "FAILED"
        return "{}: {} ({} VCs, {} from cache)".format(
            self.procedure, status, len(self.results), self.cache_hits + self.deduplicated
        )


def prove_procedure(
    procedure: Procedure,
    config: Optional[ProverConfig] = None,
    jobs: int = 1,
    cache: Union[bool, ProofCache] = True,
    batch_prover: Optional[BatchProver] = None,
) -> ProcedureReport:
    """Generate and batch-check all verification conditions of ``procedure``.

    Pass ``batch_prover`` to reuse a warm pool and cache across procedures
    (e.g. when verifying a whole example suite); otherwise a throwaway engine
    with the requested ``jobs``/``cache`` is used.
    """
    vcs = generate_vcs(procedure)
    entailments = [vc.entailment for vc in vcs]
    if batch_prover is not None:
        hits_before = batch_prover.statistics.cache_hits
        dedup_before = batch_prover.statistics.deduplicated
        results = batch_prover.prove_all(entailments)
        hits = batch_prover.statistics.cache_hits - hits_before
        dedup = batch_prover.statistics.deduplicated - dedup_before
    else:
        with BatchProver(config, jobs=jobs, cache=cache) as engine:
            results = engine.prove_all(entailments)
            hits = engine.statistics.cache_hits
            dedup = engine.statistics.deduplicated
    return ProcedureReport(
        procedure=procedure.name,
        results=list(zip(vcs, results)),
        cache_hits=hits,
        deduplicated=dedup,
    )
