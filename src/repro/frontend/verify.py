"""Batch verification of annotated procedures.

:func:`repro.frontend.symexec.generate_vcs` turns a procedure into a stream
of entailments; this module closes the loop by checking them all through the
batch engine.  Procedure VC streams are the workload where the proof cache
earns its keep: loop bodies re-emit the same invariant-preservation
obligation for every path with fresh cursor/old-value names, and the
memory-safety side conditions repeat almost verbatim across commands — all
alpha-equivalent, so only one representative of each class is ever proved.

Soundness under partial failure: a VC whose prover run produced no verdict —
timed out, ran out of memory, crashed and was quarantined — reports
``unknown``, and an ``unknown`` VC makes the whole procedure unverified.
"Crashed" is never "valid".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.core.batch import BatchOutcome, BatchProver, FailureInfo
from repro.core.cache import ProofCache
from repro.core.config import ProverConfig
from repro.core.result import ProofResult
from repro.frontend.programs import Procedure
from repro.frontend.symexec import VerificationCondition, generate_vcs

__all__ = ["ProcedureReport", "outcome_label", "prove_procedure"]


def outcome_label(outcome: Optional[BatchOutcome]) -> str:
    """A one-word-ish status for a VC outcome, failure-safe by construction."""
    if isinstance(outcome, ProofResult):
        return "valid" if outcome.is_valid else "invalid"
    if isinstance(outcome, FailureInfo):
        if outcome.kind == "timeout":
            return "unknown: timeout"
        if outcome.kind == "oom":
            return "unknown: out of memory"
        return "unknown: crashed"
    return "unknown: no outcome"


@dataclass
class ProcedureReport:
    """The outcome of checking every verification condition of a procedure.

    ``results`` pairs each VC with its outcome in generation order: a
    :class:`~repro.core.result.ProofResult` when the prover answered, or a
    :class:`~repro.core.supervisor.FailureInfo` when it could not (budget
    exhausted, worker crashed and the task was quarantined, ...).
    """

    procedure: str
    results: List[Tuple[VerificationCondition, BatchOutcome]]
    cache_hits: int = 0
    deduplicated: int = 0

    @property
    def verified(self) -> bool:
        """True only when every VC produced an actual *valid* verdict.

        The check is deliberately positive (``isinstance`` + ``is_valid``)
        rather than negative ("not invalid"): an undecided or crashed VC must
        never verify a procedure.
        """
        return all(
            isinstance(result, ProofResult) and result.is_valid
            for _, result in self.results
        )

    def failures(self) -> List[Tuple[VerificationCondition, Optional[BatchOutcome]]]:
        """The VCs that are invalid (with counterexamples) or undecided."""
        return [
            (vc, result)
            for vc, result in self.results
            if not isinstance(result, ProofResult) or result.is_invalid
        ]

    def __str__(self) -> str:
        status = "verified" if self.verified else "FAILED"
        text = "{}: {} ({} VCs, {} from cache)".format(
            self.procedure, status, len(self.results), self.cache_hits + self.deduplicated
        )
        undecided = [label for label in (outcome_label(r) for _, r in self.failures())
                     if label.startswith("unknown")]
        if undecided:
            text += " [{}]".format(", ".join(sorted(set(undecided))))
        return text


def prove_procedure(
    procedure: Procedure,
    config: Optional[ProverConfig] = None,
    jobs: int = 1,
    cache: Union[bool, ProofCache] = True,
    batch_prover: Optional[BatchProver] = None,
) -> ProcedureReport:
    """Generate and batch-check all verification conditions of ``procedure``.

    Pass ``batch_prover`` to reuse a warm pool and cache across procedures
    (e.g. when verifying a whole example suite); otherwise a throwaway engine
    with the requested ``jobs``/``cache`` is used.
    """
    vcs = generate_vcs(procedure)
    entailments = [vc.entailment for vc in vcs]
    if batch_prover is not None:
        hits_before = batch_prover.statistics.cache_hits
        dedup_before = batch_prover.statistics.deduplicated
        results = batch_prover.prove_all(entailments)
        hits = batch_prover.statistics.cache_hits - hits_before
        dedup = batch_prover.statistics.deduplicated - dedup_before
    else:
        with BatchProver(config, jobs=jobs, cache=cache) as engine:
            results = engine.prove_all(entailments)
            hits = engine.statistics.cache_hits
            dedup = engine.statistics.deduplicated
    return ProcedureReport(
        procedure=procedure.name,
        results=list(zip(vcs, results)),
        cache_hits=hits,
        deduplicated=dedup,
    )
