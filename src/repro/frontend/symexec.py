"""Symbolic execution with separation logic (the verification-condition generator).

This module plays the part of Smallfoot's symbolic executor: given an
annotated :class:`~repro.frontend.programs.Procedure` it runs the body over
symbolic states of the form ``Pi /\\ Sigma`` and emits the entailments whose
validity establishes the specification:

* *loop entry*: the state reaching a loop must entail the loop invariant;
* *loop preservation*: executing the body from the invariant (plus the loop
  condition) must re-establish the invariant;
* *postcondition*: every state reaching the end of the body must entail the
  postcondition.

Heap-accessing commands additionally require the accessed cell to be present
in the symbolic state; when the cell is hidden inside a list segment that the
pure part guarantees to be non-empty, the executor unfolds one cell off the
segment (the same rearrangement step Smallfoot performs).  If the cell cannot
be exhibited the program is rejected with :class:`SymbolicExecutionError` —
the example suite only contains memory-safe programs, so this is a programming
error in the example rather than a prover task.

The generated entailments fall squarely in the fragment the prover handles, so
``generate_vcs`` composed with :func:`repro.core.prover.prove` is a miniature
but faithful version of the Smallfoot pipeline used for Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.baselines.common import UnionFind, canonical_pair
from repro.frontend.programs import (
    Assertion,
    Assign,
    Command,
    Dispose,
    IfThenElse,
    Lookup,
    Mutate,
    New,
    Procedure,
    Skip,
    While,
)
from repro.logic.atoms import EqAtom, ListSegment, PointsTo
from repro.logic.formula import Entailment, PureLiteral, eq
from repro.logic.terms import Const, NIL
from repro.utils.naming import FreshNames


class SymbolicExecutionError(RuntimeError):
    """Raised when a heap access cannot be justified by the symbolic state."""


@dataclass(frozen=True)
class VerificationCondition:
    """One entailment that must be valid for a procedure's specification to hold."""

    procedure: str
    description: str
    entailment: Entailment

    def __str__(self) -> str:
        return "[{}] {}: {}".format(self.procedure, self.description, self.entailment)


class _Executor:
    """Symbolic execution of a single procedure."""

    def __init__(self, procedure: Procedure):
        self.procedure = procedure
        used = {constant.name for constant in procedure.variables}
        used.update(c.name for c in procedure.precondition.constants())
        used.update(c.name for c in procedure.postcondition.constants())
        for command in _all_commands(procedure.body):
            if isinstance(command, While):
                used.update(c.name for c in command.invariant.constants())
        self.fresh = FreshNames(used)
        self.vcs: List[VerificationCondition] = []

    # ------------------------------------------------------------------
    def run(self) -> List[VerificationCondition]:
        """Execute the whole procedure body and return the collected VCs."""
        final_states = self._run_block(self.procedure.body, [self.procedure.precondition])
        for index, state in enumerate(final_states):
            self._emit(
                state,
                self.procedure.postcondition,
                "postcondition (path {})".format(index + 1),
            )
        return self.vcs

    # ------------------------------------------------------------------
    def _run_block(self, block: Sequence[Command], states: List[Assertion]) -> List[Assertion]:
        current = list(states)
        for command in block:
            next_states: List[Assertion] = []
            for state in current:
                next_states.extend(self._step(command, state))
            current = next_states
        return current

    def _step(self, command: Command, state: Assertion) -> List[Assertion]:
        if isinstance(command, Skip):
            return [state]
        if isinstance(command, Assign):
            return [self._assign(state, command.target, command.value)]
        if isinstance(command, Lookup):
            return [self._lookup(state, command.target, command.source)]
        if isinstance(command, Mutate):
            return [self._mutate(state, command.target, command.value)]
        if isinstance(command, New):
            return [self._new(state, command.target)]
        if isinstance(command, Dispose):
            return [self._dispose(state, command.target)]
        if isinstance(command, IfThenElse):
            then_states = self._run_block(
                command.then_branch, [state.with_pure(command.condition)]
            )
            else_states = self._run_block(
                command.else_branch, [state.with_pure(command.condition.negated)]
            )
            return then_states + else_states
        if isinstance(command, While):
            self._emit(state, command.invariant, "loop invariant established")
            body_start = command.invariant.with_pure(command.condition)
            body_end_states = self._run_block(command.body, [body_start])
            for index, body_end in enumerate(body_end_states):
                self._emit(
                    body_end,
                    command.invariant,
                    "loop invariant preserved (path {})".format(index + 1),
                )
            return [command.invariant.with_pure(command.condition.negated)]
        raise TypeError("unknown command {!r}".format(command))

    # ------------------------------------------------------------------
    def _emit(self, state: Assertion, target: Assertion, description: str) -> None:
        self.vcs.append(
            VerificationCondition(
                procedure=self.procedure.name,
                description=description,
                entailment=state.entails(target),
            )
        )

    # -- individual commands -------------------------------------------------
    def _rename_modified(self, state: Assertion, variable: Const) -> Tuple[Assertion, Const]:
        """Rename ``variable`` to a fresh "old value" constant throughout the state."""
        old = Const(self.fresh.fresh("{}_0".format(variable.name)))
        return state.substitute({variable: old}), old

    def _assign(self, state: Assertion, target: Const, value: Const) -> Assertion:
        renamed, old = self._rename_modified(state, target)
        new_value = old if value == target else value
        return renamed.with_pure(eq(target, new_value))

    def _lookup(self, state: Assertion, target: Const, source: Const) -> Assertion:
        renamed, old = self._rename_modified(state, target)
        actual_source = old if source == target else source
        exposed, cell = self._materialise_cell(renamed, actual_source)
        return exposed.with_pure(eq(target, cell.target))

    def _mutate(self, state: Assertion, target: Const, value: Const) -> Assertion:
        exposed, cell = self._materialise_cell(state, target)
        updated = exposed.spatial.replace(cell, [PointsTo(cell.source, value)])
        return exposed.with_spatial(updated)

    def _new(self, state: Assertion, target: Const) -> Assertion:
        renamed, _ = self._rename_modified(state, target)
        junk = Const(self.fresh.fresh("{}_junk".format(target.name)))
        return renamed.with_spatial(renamed.spatial.add(PointsTo(target, junk)))

    def _dispose(self, state: Assertion, target: Const) -> Assertion:
        exposed, cell = self._materialise_cell(state, target)
        return exposed.with_spatial(exposed.spatial.remove(cell))

    # -- heap access ---------------------------------------------------------
    def _emit_safety(self, state: Assertion, address: Const) -> None:
        """Emit the memory-safety condition for an access to ``address``.

        Smallfoot checks, for every heap dereference, that the accessed
        address is not ``nil``; the corresponding entailment keeps the state's
        spatial part on both sides so that it stays within the exact-match
        fragment handled by the provers.
        """
        target = Assertion(
            state.pure + (PureLiteral(EqAtom(address, NIL), positive=False),),
            state.spatial,
        )
        self._emit(state, target, "memory safety of access to {}".format(address))

    def _materialise_cell(self, state: Assertion, address: Const) -> Tuple[Assertion, PointsTo]:
        """Exhibit the ``next`` cell at ``address``, unfolding a list segment if needed."""
        self._emit_safety(state, address)
        aliases = UnionFind(
            (literal.atom.left, literal.atom.right)
            for literal in state.pure
            if literal.positive
        )
        disequalities = {
            canonical_pair(aliases.find(literal.atom.left), aliases.find(literal.atom.right))
            for literal in state.pure
            if not literal.positive
        }
        address_rep = aliases.find(address)

        for atom in state.spatial:
            if aliases.find(atom.source) != address_rep:
                continue
            if isinstance(atom, PointsTo):
                return state, atom
            source_rep = aliases.find(atom.source)
            target_rep = aliases.find(atom.target)
            known_nonempty = (
                canonical_pair(source_rep, target_rep) in disequalities
                and source_rep != target_rep
            )
            if not known_nonempty:
                continue
            middle = Const(self.fresh.fresh("cursor"))
            cell = PointsTo(atom.source, middle)
            unfolded = state.spatial.replace(atom, [cell, ListSegment(middle, atom.target)])
            return state.with_spatial(unfolded), cell

        raise SymbolicExecutionError(
            "procedure {}: cannot establish that {} is allocated in state {}".format(
                self.procedure.name, address, state
            )
        )


def _all_commands(block: Sequence[Command]) -> List[Command]:
    """Flatten a command block, including the bodies of conditionals and loops."""
    result: List[Command] = []
    for command in block:
        result.append(command)
        if isinstance(command, IfThenElse):
            result.extend(_all_commands(command.then_branch))
            result.extend(_all_commands(command.else_branch))
        elif isinstance(command, While):
            result.extend(_all_commands(command.body))
    return result


def generate_vcs(procedure: Procedure) -> List[VerificationCondition]:
    """Generate all verification conditions of an annotated procedure."""
    return _Executor(procedure).run()
