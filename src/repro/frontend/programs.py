"""Abstract syntax of the annotated heap-programming language.

The language is the tiny imperative core that Smallfoot-style tools verify:
program variables hold pointers, the heap stores singly linked records with a
single ``next`` field, and specifications are separation-logic assertions over
the fragment handled by the prover (pure equalities/disequalities plus
``next``/``lseg`` spatial atoms).

Commands
--------

``Assign(x, e)``          ``x = e``            (``e`` a variable or ``nil``)
``Lookup(x, y)``          ``x = y->next``
``Mutate(x, e)``          ``x->next = e``
``New(x)``                ``x = new()``        (allocates a cell with an arbitrary next field)
``Dispose(x)``            ``dispose(x)``
``Skip()``                no-op
``IfThenElse(c, t, f)``   branching on a pure condition
``While(c, inv, body)``   loop with a user-supplied invariant

A :class:`Procedure` bundles a name, the program variables it uses, a
precondition, a body (a sequence of commands) and a postcondition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Sequence, Tuple, Union

from repro.logic.atoms import SpatialAtom, SpatialFormula
from repro.logic.formula import Entailment, PureLiteral
from repro.logic.terms import Const, make_const


@dataclass(frozen=True)
class Assertion:
    """A separation-logic assertion ``Pi /\\ Sigma`` (one side of an entailment)."""

    pure: Tuple[PureLiteral, ...] = ()
    spatial: SpatialFormula = field(default_factory=SpatialFormula)

    @classmethod
    def of(cls, *items: Union[PureLiteral, SpatialAtom, SpatialFormula]) -> "Assertion":
        """Build an assertion from a mixed list of pure literals and spatial atoms."""
        pure = []
        atoms = []
        for item in items:
            if isinstance(item, PureLiteral):
                pure.append(item)
            elif isinstance(item, SpatialAtom):
                atoms.append(item)
            elif isinstance(item, SpatialFormula):
                atoms.extend(item.atoms)
            else:
                raise TypeError("unexpected assertion item {!r}".format(item))
        return cls(tuple(pure), SpatialFormula(atoms))

    def constants(self) -> FrozenSet[Const]:
        """All constants mentioned by the assertion."""
        result = set(self.spatial.constants())
        for literal in self.pure:
            result.update(literal.constants())
        return frozenset(result)

    def substitute(self, mapping: Dict[Const, Const]) -> "Assertion":
        """Apply a constant substitution."""
        return Assertion(
            tuple(literal.substitute(mapping) for literal in self.pure),
            self.spatial.substitute(mapping),
        )

    def with_pure(self, *literals: PureLiteral) -> "Assertion":
        """A copy of the assertion with extra pure conjuncts."""
        return Assertion(self.pure + tuple(literals), self.spatial)

    def with_spatial(self, sigma: SpatialFormula) -> "Assertion":
        """A copy of the assertion with the spatial part replaced."""
        return Assertion(self.pure, sigma)

    def entails(self, other: "Assertion") -> Entailment:
        """The entailment ``self |- other``."""
        return Entailment(self.pure, self.spatial, other.pure, other.spatial)

    def __str__(self) -> str:
        parts = [str(literal) for literal in self.pure]
        parts.append(str(self.spatial))
        return " /\\ ".join(parts)


class Command:
    """Base class of all commands (purely a marker; commands are frozen dataclasses)."""


@dataclass(frozen=True)
class Skip(Command):
    """The no-op command."""


@dataclass(frozen=True)
class Assign(Command):
    """``target = value`` where ``value`` is a variable or ``nil``."""

    target: Const
    value: Const

    def __init__(self, target: Union[str, Const], value: Union[str, Const]) -> None:
        object.__setattr__(self, "target", make_const(target))
        object.__setattr__(self, "value", make_const(value))


@dataclass(frozen=True)
class Lookup(Command):
    """``target = source->next``."""

    target: Const
    source: Const

    def __init__(self, target: Union[str, Const], source: Union[str, Const]) -> None:
        object.__setattr__(self, "target", make_const(target))
        object.__setattr__(self, "source", make_const(source))


@dataclass(frozen=True)
class Mutate(Command):
    """``target->next = value``."""

    target: Const
    value: Const

    def __init__(self, target: Union[str, Const], value: Union[str, Const]) -> None:
        object.__setattr__(self, "target", make_const(target))
        object.__setattr__(self, "value", make_const(value))


@dataclass(frozen=True)
class New(Command):
    """``target = new()``: allocate a fresh cell with an arbitrary ``next`` field."""

    target: Const

    def __init__(self, target: Union[str, Const]) -> None:
        object.__setattr__(self, "target", make_const(target))


@dataclass(frozen=True)
class Dispose(Command):
    """``dispose(target)``: free the cell at ``target``."""

    target: Const

    def __init__(self, target: Union[str, Const]) -> None:
        object.__setattr__(self, "target", make_const(target))


@dataclass(frozen=True)
class IfThenElse(Command):
    """Branch on a pure condition."""

    condition: PureLiteral
    then_branch: Tuple[Command, ...]
    else_branch: Tuple[Command, ...] = ()

    def __init__(
        self,
        condition: PureLiteral,
        then_branch: Sequence[Command],
        else_branch: Sequence[Command] = (),
    ) -> None:
        object.__setattr__(self, "condition", condition)
        object.__setattr__(self, "then_branch", tuple(then_branch))
        object.__setattr__(self, "else_branch", tuple(else_branch))


@dataclass(frozen=True)
class While(Command):
    """A loop annotated with its invariant."""

    condition: PureLiteral
    invariant: Assertion
    body: Tuple[Command, ...]

    def __init__(
        self, condition: PureLiteral, invariant: Assertion, body: Sequence[Command]
    ) -> None:
        object.__setattr__(self, "condition", condition)
        object.__setattr__(self, "invariant", invariant)
        object.__setattr__(self, "body", tuple(body))


@dataclass(frozen=True)
class Procedure:
    """An annotated procedure: precondition, body, postcondition."""

    name: str
    variables: Tuple[Const, ...]
    precondition: Assertion
    body: Tuple[Command, ...]
    postcondition: Assertion
    description: str = ""

    def __init__(
        self,
        name: str,
        variables: Iterable[Union[str, Const]],
        precondition: Assertion,
        body: Sequence[Command],
        postcondition: Assertion,
        description: str = "",
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "variables", tuple(make_const(v) for v in variables))
        object.__setattr__(self, "precondition", precondition)
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "postcondition", postcondition)
        object.__setattr__(self, "description", description)

    def __str__(self) -> str:
        return "procedure {}({})".format(self.name, ", ".join(str(v) for v in self.variables))
