"""A small verification front end playing the role of Smallfoot's VC generator.

The paper's Table 3 benchmark does not check hand-written entailments: it
checks the ~209 verification conditions that Smallfoot's symbolic execution
generates from 18 annotated list-manipulating C programs.  Since the Smallfoot
distribution is not available here, this package provides an equivalent
substrate built from scratch:

* :mod:`repro.frontend.programs` — an abstract syntax for a small imperative
  heap language (assignment, heap lookup and update, allocation, disposal,
  conditionals and loops with invariants) together with separation-logic
  assertions and procedure specifications;
* :mod:`repro.frontend.symexec` — a symbolic executor in the style of
  "Symbolic Execution with Separation Logic" that runs a procedure body over
  symbolic states ``Pi /\\ Sigma`` and emits the entailments that must be
  valid for the specification to hold (loop-invariant establishment and
  preservation, postcondition checks, memory-safety side conditions);
* :mod:`repro.frontend.examples_suite` — eighteen annotated example programs
  (traversals, insertions, deletions, reversal, disposal, queue operations,
  ...) whose verification conditions form the Table 3 workload;
* :mod:`repro.frontend.verify` — :func:`prove_procedure`, which batch-checks
  all VCs of a procedure through the batch engine (parallel workers plus the
  alpha-equivalence proof cache, which loop unrollings hit hard).
"""

from repro.frontend.programs import (
    Assertion,
    Assign,
    Command,
    Dispose,
    IfThenElse,
    Lookup,
    Mutate,
    New,
    Procedure,
    Skip,
    While,
)
from repro.frontend.symexec import SymbolicExecutionError, VerificationCondition, generate_vcs
from repro.frontend.examples_suite import all_programs, generate_suite_vcs
from repro.frontend.verify import ProcedureReport, prove_procedure

__all__ = [
    "Assertion",
    "Assign",
    "Command",
    "Dispose",
    "IfThenElse",
    "Lookup",
    "Mutate",
    "New",
    "Procedure",
    "Skip",
    "While",
    "SymbolicExecutionError",
    "VerificationCondition",
    "generate_vcs",
    "all_programs",
    "generate_suite_vcs",
    "ProcedureReport",
    "prove_procedure",
]
