"""Command-line interface of the prover.

The ``slp`` console script checks entailments written one per line in the
textual surface syntax (see :mod:`repro.logic.parser`)::

    $ slp entailments.txt
    valid    c != e /\\ lseg(a, b) * ... |- lseg(b, c) * lseg(c, e)
    invalid  lseg(x, y) |- next(x, y)

    $ echo "x |-> y * y |-> nil |- lseg(x, nil)" | slp -
    valid    x |-> y * y |-> nil |- lseg(x, nil)

Options allow printing proofs and counterexamples and selecting one of the
baseline provers for comparison.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterable, List, Optional

from repro.core.config import ProverConfig
from repro.core.prover import Prover
from repro.logic.parser import ParseError, parse_entailment


def _read_lines(path: str) -> List[str]:
    if path == "-":
        return sys.stdin.read().splitlines()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read().splitlines()


def _select_prover(name: str):
    """Return a callable ``entailment -> bool`` for the requested engine."""
    if name == "slp":
        prover = Prover(ProverConfig())
        return lambda entailment: prover.prove(entailment).is_valid
    if name == "smallfoot":
        from repro.baselines.smallfoot import SmallfootProver

        baseline = SmallfootProver()
        return lambda entailment: baseline.prove(entailment).is_valid
    if name == "jstar":
        from repro.baselines.jstar import JStarProver

        baseline = JStarProver()
        return lambda entailment: baseline.prove(entailment).is_valid
    raise SystemExit("unknown prover {!r}; choose slp, smallfoot or jstar".format(name))


def main(argv: Optional[Iterable[str]] = None) -> int:
    """Entry point of the ``slp`` console script."""
    parser = argparse.ArgumentParser(
        prog="slp",
        description="Check separation-logic entailments with list segments.",
    )
    parser.add_argument(
        "input",
        help="a file with one entailment per line, or '-' for standard input",
    )
    parser.add_argument(
        "--prover",
        default="slp",
        choices=("slp", "smallfoot", "jstar"),
        help="which engine to use (default: slp)",
    )
    parser.add_argument(
        "--proof",
        action="store_true",
        help="print the SI proof for valid entailments (slp prover only)",
    )
    parser.add_argument(
        "--counterexample",
        action="store_true",
        help="print the counterexample interpretation for invalid entailments (slp only)",
    )
    parser.add_argument(
        "--time",
        action="store_true",
        help="print the total wall-clock time at the end",
    )
    arguments = parser.parse_args(list(argv) if argv is not None else None)

    lines = [line.strip() for line in _read_lines(arguments.input)]
    lines = [line for line in lines if line and not line.startswith("#")]

    use_full_result = arguments.prover == "slp" and (arguments.proof or arguments.counterexample)
    slp_prover = Prover(ProverConfig()) if use_full_result else None
    check = _select_prover(arguments.prover)

    start = time.perf_counter()
    exit_code = 0
    for line in lines:
        try:
            entailment = parse_entailment(line)
        except ParseError as error:
            print("error    {}  ({})".format(line, error))
            exit_code = 2
            continue
        if slp_prover is not None:
            result = slp_prover.prove(entailment)
            verdict = "valid" if result.is_valid else "invalid"
            print("{:<8} {}".format(verdict, line))
            if arguments.proof and result.proof is not None:
                print(result.proof.format())
            if arguments.counterexample and result.counterexample is not None:
                print("    counterexample: {}".format(result.counterexample))
        else:
            verdict = "valid" if check(entailment) else "invalid"
            print("{:<8} {}".format(verdict, line))

    if arguments.time:
        print("total time: {:.3f}s".format(time.perf_counter() - start))
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
