"""Command-line interface of the prover.

The ``slp`` console script checks entailments written one per line in the
textual surface syntax (see :mod:`repro.logic.parser`)::

    $ slp entailments.txt
    valid    c != e /\\ lseg(a, b) * ... |- lseg(b, c) * lseg(c, e)
    invalid  lseg(x, y) |- next(x, y)

    $ echo "x |-> y * y |-> nil |- lseg(x, nil)" | slp -
    valid    x |-> y * y |-> nil |- lseg(x, nil)

    $ echo "cell(x, y, nil) * cell(y, nil, x) |- dlseg(x, nil, nil, y)" | slp -
    valid    cell(x, y, nil) * cell(y, nil, x) |- dlseg(x, nil, nil, y)

Every registered spatial theory's syntax is accepted (singly-linked
``next``/``lseg``, doubly-linked ``cell``/``dlseg``; see ARCHITECTURE.md);
the baselines only speak the singly-linked fragment and report ``invalid``
as "cannot prove" on anything else.

Batches go through the batch engine (:mod:`repro.core.batch`): ``--jobs N``
checks the file on ``N`` supervised worker processes, and alpha-equivalent
entailments (same problem up to variable renaming and conjunct order) are
proved once and answered from the proof cache afterwards — disable that with
``--no-cache``.  Budgets: ``--timeout SECONDS`` bounds each instance
(exceeded instances report ``timeout``; ``--grace`` scales the hard watchdog
that reclaims a worker ignoring its budget) and ``--max-memory MB`` caps each
worker's address space (exceeded instances report ``oom``).  A worker crash
is retried up to ``--retries`` times; a task that keeps failing reports
``crashed``.  Output lines always appear in input order, whatever the
completion order of the workers.

Persistence: ``--store PATH`` backs the proof cache with a crash-safe
on-disk store (:mod:`repro.core.store`) shared across runs and across
concurrent ``slp`` processes — a second invocation of the same workload is
answered from disk.  ``--run-dir DIR`` additionally *checkpoints* the run:
every completed instance is journaled, and after a crash or SIGKILL
``slp FILE --run-dir DIR --resume`` skips the finished work and prints a
report bit-identical to an uninterrupted run.  A cache summary line goes to
standard error at the end of every cached run.

Exit status: 0 for a clean run (timeouts included — undecided is an honest
answer), 2 for parse errors, 3 when any instance crashed, was quarantined or
ran out of memory.

Options also allow printing proofs and counterexamples and selecting one of
the baseline provers for comparison (the baselines are sequential and ignore
``--jobs``/``--no-cache``).

The ``fuzz`` subcommand runs a differential fuzzing campaign instead of
checking a file (see :mod:`repro.fuzz.cli`)::

    $ slp fuzz --seed 0 --iterations 200 --jobs 4

The ``serve`` subcommand starts a persistent entailment service — warm
worker pool plus sharded on-disk proof store, spoken to over HTTP/JSON
(see :mod:`repro.server`)::

    $ slp serve --port 8080 --jobs 4 --store proofs.store
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
import time
from dataclasses import replace
from typing import Dict, Iterable, List, Optional

from repro.core.batch import BatchProver, FailureInfo
from repro.core.cache import PersistentProofCache
from repro.core.config import ProverConfig
from repro.core.store import JournalMismatch, RunJournal
from repro.logic.parser import ParseError, parse_entailment


def _read_lines(path: str) -> List[str]:
    if path == "-":
        return sys.stdin.read().splitlines()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read().splitlines()


def _baseline_checker(name: str):
    """Return a callable ``entailment -> bool`` for the requested baseline."""
    if name == "smallfoot":
        from repro.baselines.smallfoot import SmallfootProver

        baseline = SmallfootProver()
        return lambda entailment: baseline.prove(entailment).is_valid
    if name == "jstar":
        from repro.baselines.jstar import JStarProver

        baseline = JStarProver()
        return lambda entailment: baseline.prove(entailment).is_valid
    raise SystemExit("unknown prover {!r}; choose slp, smallfoot or jstar".format(name))


def _outcome_label(outcome) -> str:
    """The one-word report label for a batch outcome (matches stdout format)."""
    if isinstance(outcome, FailureInfo):
        return outcome.kind if outcome.kind in ("timeout", "oom") else "crashed"
    return "valid" if outcome.is_valid else "invalid"


def _print_cache_summary(stats) -> None:
    print(
        "cache: {} hits ({} from disk), {} misses, {} deduplicated".format(
            stats.cache_hits, stats.disk_hits, stats.cache_misses, stats.deduplicated
        ),
        file=sys.stderr,
    )


def _print_failure_summary(timed_out: int, oom: int, crashed: int) -> None:
    summary = []
    if timed_out:
        summary.append("{} timed out".format(timed_out))
    if oom:
        summary.append("{} out of memory".format(oom))
    if crashed:
        summary.append("{} crashed/quarantined".format(crashed))
    if summary:
        print("failures: {}".format("; ".join(summary)), file=sys.stderr)


def _run_checkpointed(arguments, parsed, config, workload_digest: str) -> int:
    """The ``--run-dir`` execution path: journaled, resumable, order-stable.

    Completed instances are journaled *as they complete* (out of order — a
    SIGKILL loses only in-flight work, not finished-but-unprinted results)
    and the report is printed at the end from the journal, so a resumed run's
    standard output is bit-identical to an uninterrupted one.
    """
    os.makedirs(arguments.run_dir, exist_ok=True)
    journal_path = os.path.join(arguments.run_dir, "journal.slp")
    meta = {
        "kind": "slp-batch",
        "workload": workload_digest,
        "timeout": arguments.timeout,
        "max_memory": arguments.max_memory,
        "no_cache": bool(arguments.no_cache),
    }
    try:
        journal, completed = RunJournal.open_run(
            journal_path, meta, resume=arguments.resume
        )
    except JournalMismatch as error:
        raise SystemExit("slp: {}".format(error))

    tasks = []  # (task index, source line, entailment) for parseable lines
    for line, entailment in parsed:
        if entailment is not None:
            tasks.append((len(tasks), line, entailment))
    digests = {
        index: hashlib.sha256(line.encode("utf-8")).hexdigest()[:12]
        for index, line, _ in tasks
    }
    labels: Dict[int, str] = {}
    for record in completed:
        index, label = record.get("i"), record.get("label")
        if record.get("t") != "task" or not isinstance(index, int):
            continue
        if index not in digests or not isinstance(label, str):
            continue
        if record.get("d") != digests[index]:
            journal.close()
            raise SystemExit(
                "slp: {}: journaled instance {} does not match this workload;"
                " use a fresh run directory".format(journal_path, index)
            )
        labels[index] = label

    pending = [(index, entailment) for index, _, entailment in tasks if index not in labels]
    cache = (
        False
        if arguments.no_cache
        else PersistentProofCache(os.path.join(arguments.run_dir, "proofs.slp"))
    )
    try:
        with BatchProver(
            config,
            jobs=arguments.jobs,
            cache=cache,
            retries=arguments.retries,
            grace_factor=arguments.grace,
        ) as batch:
            indices = [index for index, _ in pending]
            for position, outcome in batch.iter_results(
                [entailment for _, entailment in pending]
            ):
                index = indices[position]
                labels[index] = _outcome_label(outcome)
                try:
                    journal.append(
                        {"t": "task", "i": index, "label": labels[index], "d": digests[index]}
                    )
                except OSError:
                    pass  # the journal is resilience, not a reason to fail the run
            stats = batch.statistics
    finally:
        journal.close()
        if cache is not False:
            cache.close()

    task_labels = iter(tasks)
    for line, entailment in parsed:
        if entailment is None:
            print("error    {}".format(line))
            continue
        index, _, _ = next(task_labels)
        print("{:<8} {}".format(labels[index], line))

    counted = list(labels.values())
    timed_out = counted.count("timeout")
    oom = counted.count("oom")
    crashed = counted.count("crashed")
    _print_failure_summary(timed_out, oom, crashed)
    if cache is not False:
        _print_cache_summary(stats)
    return 3 if (oom or crashed) else 0


def main(argv: Optional[Iterable[str]] = None) -> int:
    """Entry point of the ``slp`` console script."""
    arguments_list = list(argv) if argv is not None else sys.argv[1:]
    if arguments_list and arguments_list[0] == "fuzz":
        from repro.fuzz.cli import fuzz_main

        return fuzz_main(arguments_list[1:])
    if arguments_list and arguments_list[0] == "serve":
        from repro.server.cli import serve_main

        return serve_main(arguments_list[1:])

    parser = argparse.ArgumentParser(
        prog="slp",
        description="Check separation-logic entailments with list segments.",
    )
    parser.add_argument(
        "input",
        help="a file with one entailment per line, or '-' for standard input",
    )
    parser.add_argument(
        "--prover",
        default="slp",
        choices=("slp", "smallfoot", "jstar"),
        help="which engine to use (default: slp)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="check entailments on N worker processes (slp prover only; default 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the alpha-equivalence proof cache and in-batch deduplication (slp only)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-entailment time budget; exceeded instances report 'timeout' (slp only)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="re-dispatch a crashed instance up to N times before quarantining it"
        " (slp only; default 2)",
    )
    parser.add_argument(
        "--grace",
        type=float,
        default=2.0,
        metavar="FACTOR",
        help="hard watchdog factor: kill a worker holding one instance longer than"
        " timeout*FACTOR (slp only; default 2.0)",
    )
    parser.add_argument(
        "--max-memory",
        type=int,
        default=None,
        metavar="MB",
        help="address-space budget per worker process; exceeded instances report"
        " 'oom' (slp only)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="back the proof cache with a persistent on-disk store at PATH,"
        " shared across runs and concurrent slp processes (slp only)",
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="checkpoint the run in DIR (journal + proof store); a killed run"
        " restarts with --resume and skips finished instances (slp only)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume the checkpointed run in --run-dir, skipping journaled work",
    )
    parser.add_argument(
        "--proof",
        action="store_true",
        help="print the SI proof for valid entailments (slp prover only)",
    )
    parser.add_argument(
        "--counterexample",
        action="store_true",
        help="print the counterexample interpretation for invalid entailments (slp only)",
    )
    parser.add_argument(
        "--time",
        action="store_true",
        help="print the total wall-clock time at the end",
    )
    arguments = parser.parse_args(arguments_list)

    if arguments.jobs < 1:
        parser.error("--jobs must be at least 1")
    if arguments.retries < 0:
        parser.error("--retries must be >= 0")
    if arguments.grace < 1.0:
        parser.error("--grace must be >= 1.0")
    if arguments.prover != "slp" and (
        arguments.jobs != 1
        or arguments.no_cache
        or arguments.timeout is not None
        or arguments.max_memory is not None
        or arguments.retries != 2
        or arguments.grace != 2.0
        or arguments.store is not None
        or arguments.run_dir is not None
    ):
        parser.error(
            "--jobs/--no-cache/--timeout/--retries/--grace/--max-memory/--store/--run-dir"
            " are only supported by the slp prover"
        )
    if arguments.resume and arguments.run_dir is None:
        parser.error("--resume requires --run-dir")
    if arguments.run_dir is not None and arguments.store is not None:
        parser.error("--run-dir manages its own store; drop --store")
    if arguments.store is not None and arguments.no_cache:
        parser.error("--store needs the cache; drop --no-cache")
    if arguments.run_dir is not None and (arguments.proof or arguments.counterexample):
        parser.error(
            "--proof/--counterexample are not journaled; they cannot be combined"
            " with --run-dir"
        )

    lines = [line.strip() for line in _read_lines(arguments.input)]
    lines = [line for line in lines if line and not line.startswith("#")]

    parsed = []  # (line, entailment-or-None); None marks a parse error
    exit_code = 0
    for line in lines:
        try:
            parsed.append((line, parse_entailment(line)))
        except ParseError as error:
            parsed.append(("{}  ({})".format(line, error), None))
            exit_code = 2

    start = time.perf_counter()
    if arguments.prover == "slp":
        # Only record proofs when they will be printed: with --jobs the full
        # proof trace of every valid entailment would otherwise be pickled
        # back from the workers just to be discarded.
        config = (
            replace(ProverConfig(), record_proof=arguments.proof)
            .with_timeout(arguments.timeout)
            .with_memory_limit(arguments.max_memory)
        )
        if arguments.run_dir is not None:
            workload_digest = hashlib.sha256(
                "\n".join(line for line, _ in parsed).encode("utf-8")
            ).hexdigest()
            run_code = _run_checkpointed(arguments, parsed, config, workload_digest)
            if exit_code == 0:
                exit_code = run_code
            if arguments.time:
                print("total time: {:.3f}s".format(time.perf_counter() - start))
            return exit_code

        entailments = [entailment for _, entailment in parsed if entailment is not None]
        cache = (
            PersistentProofCache(arguments.store)
            if arguments.store is not None
            else not arguments.no_cache
        )
        # Every exit from here on — including an exception mid-print (a
        # closed stdout pipe, say) — must release the store's advisory lock,
        # so the close lives in a ``finally`` rather than on the happy path.
        try:
            with BatchProver(
                config,
                jobs=arguments.jobs,
                cache=cache,
                retries=arguments.retries,
                grace_factor=arguments.grace,
            ) as batch:
                results = batch.iter_ordered(entailments)
                for line, entailment in parsed:
                    if entailment is None:
                        print("error    {}".format(line))
                        continue
                    _, result = next(results)
                    if isinstance(result, FailureInfo):
                        label = result.kind if result.kind in ("timeout", "oom") else "crashed"
                        print("{:<8} {}".format(label, line))
                        continue
                    verdict = "valid" if result.is_valid else "invalid"
                    print("{:<8} {}".format(verdict, line))
                    if arguments.proof and result.proof is not None:
                        print(result.proof.format())
                    if arguments.counterexample and result.counterexample is not None:
                        print("    counterexample: {}".format(result.counterexample))
                for _ in results:  # run the generator to completion: it settles
                    pass  # the batch statistics (counter deltas) in its finally
                stats = batch.statistics
        finally:
            if arguments.store is not None:
                cache.close()
        if stats.failed:
            summary = []
            if stats.timed_out:
                summary.append("{} timed out".format(stats.timed_out))
            if stats.oom:
                summary.append("{} out of memory".format(stats.oom))
            if stats.quarantined:
                summary.append("{} crashed/quarantined".format(stats.quarantined))
            if stats.retried or stats.respawned_workers:
                summary.append(
                    "{} retries, {} workers respawned".format(
                        stats.retried, stats.respawned_workers
                    )
                )
            print("failures: {}".format("; ".join(summary)), file=sys.stderr)
        if not arguments.no_cache:
            _print_cache_summary(stats)
        # Timeouts are an honest "undecided within budget" and keep exit 0;
        # crashes and memory blow-ups mean the run did not do what was asked.
        if exit_code == 0 and (stats.quarantined or stats.oom):
            exit_code = 3
    else:
        check = _baseline_checker(arguments.prover)
        for line, entailment in parsed:
            if entailment is None:
                print("error    {}".format(line))
                continue
            verdict = "valid" if check(entailment) else "invalid"
            print("{:<8} {}".format(verdict, line))

    if arguments.time:
        print("total time: {:.3f}s".format(time.perf_counter() - start))
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
