"""A tiny stopwatch used by the benchmark harness.

The paper reports, for each prover and each benchmark row, the total wall
clock time spent over a batch of entailments together with the percentage of
instances solved when a timeout was hit.  :class:`Stopwatch` supports exactly
this accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Stopwatch:
    """Accumulates elapsed time and solved/attempted counts for a prover run."""

    budget_seconds: Optional[float] = None
    elapsed: float = 0.0
    solved: int = 0
    attempted: int = 0
    _start: float = field(default=0.0, repr=False)

    def start(self) -> None:
        """Start timing one instance."""
        self._start = time.perf_counter()

    def stop(self, success: bool = True) -> float:
        """Stop timing; record the instance and return its duration."""
        duration = time.perf_counter() - self._start
        self.elapsed += duration
        self.attempted += 1
        if success:
            self.solved += 1
        return duration

    @property
    def exhausted(self) -> bool:
        """True when the configured time budget has been spent."""
        return self.budget_seconds is not None and self.elapsed >= self.budget_seconds

    @property
    def solved_fraction(self) -> float:
        """Fraction of attempted instances that were solved."""
        if self.attempted == 0:
            return 1.0
        return self.solved / self.attempted

    def summary(self) -> str:
        """Render the paper-style cell: seconds, or ``(p%)`` when timed out."""
        if self.exhausted and self.solved < self.attempted:
            return "({:.0f}%)".format(100.0 * self.solved_fraction)
        return "{:.2f}".format(self.elapsed)
