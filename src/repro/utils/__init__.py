"""Small generic utilities shared across the package."""

from repro.utils.multiset import Multiset
from repro.utils.naming import FreshNames, rename_suffix
from repro.utils.timing import Stopwatch

__all__ = ["Multiset", "FreshNames", "rename_suffix", "Stopwatch"]
