"""A small immutable multiset.

Spatial formulas in the paper's fragment are multisets of basic spatial atoms
(the separating conjunction is associative and commutative but *not*
idempotent: ``next(x, y) * next(x, y)`` is unsatisfiable rather than equal to
``next(x, y)``).  The :class:`Multiset` class below provides exactly the
operations the prover needs: membership with multiplicities, union, removal of
a single occurrence, and a canonical ordering so that two multisets with the
same elements compare and hash equal.
"""

from __future__ import annotations

from collections import Counter
from typing import Generic, Hashable, Iterable, Iterator, Tuple, TypeVar

T = TypeVar("T", bound=Hashable)


class Multiset(Generic[T]):
    """An immutable multiset with value semantics.

    The implementation keeps a :class:`collections.Counter` internally and a
    cached canonical tuple (sorted by ``repr``) used for hashing and ordering.
    """

    __slots__ = ("_counter", "_canonical")

    def __init__(self, items: Iterable[T] = ()):  # noqa: D107 - simple init
        self._counter: Counter = Counter(items)
        self._canonical: Tuple[T, ...] = tuple(
            sorted(self._counter.elements(), key=repr)
        )

    # -- basic protocol ----------------------------------------------------
    def __iter__(self) -> Iterator[T]:
        return iter(self._canonical)

    def __len__(self) -> int:
        return len(self._canonical)

    def __contains__(self, item: T) -> bool:
        return self._counter[item] > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._counter == other._counter

    def __hash__(self) -> int:
        return hash(self._canonical)

    def __repr__(self) -> str:
        return "Multiset({})".format(list(self._canonical))

    def __bool__(self) -> bool:
        return bool(self._counter)

    # -- queries -----------------------------------------------------------
    def count(self, item: T) -> int:
        """Return the multiplicity of ``item``."""
        return self._counter[item]

    def distinct(self) -> Tuple[T, ...]:
        """Return the distinct elements (each once), in canonical order."""
        seen = []
        for item in self._canonical:
            if not seen or seen[-1] != item:
                seen.append(item)
        return tuple(seen)

    def issubset(self, other: "Multiset[T]") -> bool:
        """Multiset inclusion: every multiplicity here is <= the other's."""
        return all(other._counter[x] >= n for x, n in self._counter.items())

    # -- constructive operations -------------------------------------------
    def add(self, item: T, times: int = 1) -> "Multiset[T]":
        """Return a new multiset with ``times`` extra occurrences of ``item``."""
        if times < 0:
            raise ValueError("times must be non-negative")
        counter = Counter(self._counter)
        counter[item] += times
        return Multiset(counter.elements())

    def remove(self, item: T, times: int = 1) -> "Multiset[T]":
        """Return a new multiset with ``times`` occurrences of ``item`` removed.

        Raises :class:`KeyError` if there are fewer than ``times`` occurrences.
        """
        if self._counter[item] < times:
            raise KeyError(item)
        counter = Counter(self._counter)
        counter[item] -= times
        return Multiset(counter.elements())

    def union(self, other: "Multiset[T]") -> "Multiset[T]":
        """Multiset union (multiplicities add up)."""
        counter = Counter(self._counter)
        counter.update(other._counter)
        return Multiset(counter.elements())

    def replace(self, old: T, new_items: Iterable[T]) -> "Multiset[T]":
        """Remove one occurrence of ``old`` and add all of ``new_items``."""
        result = self.remove(old)
        counter = Counter(result._counter)
        counter.update(new_items)
        return Multiset(counter.elements())
