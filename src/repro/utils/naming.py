"""Helpers for generating fresh variable names.

Fresh names are needed in two places: the symbolic execution front end
introduces fresh logical constants when a heap cell is read or allocated, and
the cloning transformation used by the Table 3 benchmark renames all variables
of an entailment apart.
"""

from __future__ import annotations

from typing import Iterable, Set


class FreshNames:
    """A generator of names guaranteed not to clash with a set of used names."""

    def __init__(self, used: Iterable[str] = ()):  # noqa: D107 - simple init
        self._used: Set[str] = set(used)
        self._counters = {}

    def reserve(self, name: str) -> None:
        """Mark ``name`` as used without generating it."""
        self._used.add(name)

    def fresh(self, base: str = "v") -> str:
        """Return a fresh name of the form ``base`` or ``base_<k>``."""
        if base not in self._used:
            self._used.add(base)
            return base
        counter = self._counters.get(base, 0)
        while True:
            counter += 1
            candidate = "{}_{}".format(base, counter)
            if candidate not in self._used:
                self._counters[base] = counter
                self._used.add(candidate)
                return candidate

    def __contains__(self, name: str) -> bool:
        return name in self._used


def rename_suffix(name: str, copy_index: int) -> str:
    """Rename a variable for the ``copy_index``-th clone of an entailment.

    The cloning benchmark of Table 3 takes a verification condition and
    conjoins several copies of it "with their variables renamed apart"; this
    helper implements the renaming scheme.  ``nil`` is never renamed because it
    denotes the same null pointer in every copy.
    """
    if name == "nil":
        return name
    return "{}__c{}".format(name, copy_index)
