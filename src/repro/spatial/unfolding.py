"""Unfolding: rewrite a demanded spatial formula into the asserted one.

Unfolding is the heart of the prover's spatial reasoning.  Its inputs are

* a *positive* spatial clause ``C = Gamma -> Delta, Sigma`` whose spatial
  formula has already been normalised and checked well-formed, and
* a *negative* spatial clause ``C' = Gamma', Sigma' -> Delta'`` (also
  normalised).

The positive formula induces a concrete heap — its graph — and the procedure
checks whether that heap also satisfies ``Sigma'``.  Crucially, because both
formulas are normalised, the check involves **no search**: the heap is a
partial function, so the path each segment atom of ``Sigma'`` must follow is
forced, and every rewrite of ``Sigma'`` towards ``Sigma`` is an application of
exactly one unfolding rule of the owning spatial theory
(:mod:`repro.spatial.theory`).

For the builtin singly-linked theory these are the paper's rules (Figure 1,
Lemma 4.4):

* U1 turns a final ``lseg(x, z)`` into the cell ``next(x, z)`` (side condition
  ``x = z`` recorded in ``Delta'``);
* U2 peels a cell ``next(x, y)`` off the front of ``lseg(x, z)`` (side
  condition ``x = z``);
* U3/U4/U5 split ``lseg(x, z)`` at an intermediate point ``y`` when the
  positive formula guarantees that ``z`` cannot occur strictly inside the
  remaining segment (``z`` is ``nil``, or ``z`` is allocated by a ``next`` or
  ``lseg`` atom of ``Sigma``; U5 records the side condition ``z = w``);
* SR finally resolves the two identical spatial formulas away, producing a
  pure clause.

The doubly-linked theory (:mod:`repro.spatial.dll`) instantiates the same
rule skeleton over two-field cells, additionally tracking ``prev`` backlinks
and the segment's last cell.

When the rewrite cannot be completed the procedure reports *why*, and the
reason tells the counterexample builder how to exhibit a heap satisfying the
left-hand side but not the right-hand side:

* ``"mismatch"`` — the graph of ``Sigma`` itself already fails ``Sigma'``;
* ``"next_expects_cell"`` — ``Sigma'`` pins down cells where ``Sigma`` only
  guarantees a stretchable segment (stretching the segment through a fresh
  anonymous location breaks the entailment);
* ``"dangling_segment"`` — a segment of ``Sigma'`` should stop at a location
  about which ``Sigma`` says nothing (re-routing the heap through that
  location breaks the entailment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.logic.atoms import EqAtom, SpatialAtom, SpatialFormula
from repro.logic.clauses import Clause
from repro.logic.terms import Const
from repro.spatial.theory import theory_of


@dataclass(frozen=True)
class UnfoldingStep:
    """One application of an unfolding rule (or of spatial resolution)."""

    rule: str
    before: Clause
    after: Clause
    positive_premise: Optional[Clause] = None
    side_condition: Optional[EqAtom] = None
    description: str = ""


@dataclass
class UnfoldingOutcome:
    """The result of attempting to unfold ``Sigma'`` against ``Sigma``.

    Attributes
    ----------
    success:
        True when the rewrite completed and spatial resolution produced a pure
        clause.
    derived_pure:
        The pure clause produced by SR (only on success).
    steps:
        The rule applications performed, in order (ending with SR on success).
    failure_kind:
        One of ``"mismatch"``, ``"next_expects_cell"``, ``"dangling_segment"``
        when ``success`` is false.
    failure_edge:
        For the two case-(b) failures, the edge ``(x, y)`` of the positive
        graph involved in the failure.
    failure_atom:
        For the two case-(b) failures, the positive atom involved — the
        segment the counterexample builder stretches or re-routes.
    failure_target:
        For ``"dangling_segment"``, the end point ``z`` the segment should have
        reached.
    failure_detail:
        A human readable explanation (used in results and logs).
    """

    success: bool
    derived_pure: Optional[Clause] = None
    steps: List[UnfoldingStep] = field(default_factory=list)
    failure_kind: Optional[str] = None
    failure_edge: Optional[Tuple[Const, Const]] = None
    failure_atom: Optional[SpatialAtom] = None
    failure_target: Optional[Const] = None
    failure_detail: str = ""


def address_map(sigma: SpatialFormula) -> Dict[Const, SpatialAtom]:
    """Map each address of a well-formed formula to its unique atom."""
    mapping: Dict[Const, SpatialAtom] = {}
    for atom in sigma:
        if atom.is_trivial:
            continue
        if atom.address in mapping:
            raise ValueError(
                "unfolding requires a well-formed positive formula; "
                "address {} occurs twice".format(atom.address)
            )
        mapping[atom.address] = atom
    return mapping


def mismatch(detail: str) -> UnfoldingOutcome:
    """A failed outcome of kind ``"mismatch"`` (the base graph falsifies)."""
    return UnfoldingOutcome(success=False, failure_kind="mismatch", failure_detail=detail)


def apply_rule(
    negative: Clause,
    positive: Clause,
    rule: str,
    old_atom: SpatialAtom,
    new_atoms: List[SpatialAtom],
    side_condition: Optional[EqAtom],
    description: str,
) -> Tuple[Clause, UnfoldingStep]:
    """Rewrite one atom of the negative clause's formula and record the step."""
    sigma = negative.spatial
    assert sigma is not None
    new_sigma = sigma.replace(old_atom, new_atoms)
    new_delta = negative.delta | {side_condition} if side_condition is not None else negative.delta
    updated = Clause(negative.gamma, new_delta, new_sigma, spatial_on_right=False)
    step = UnfoldingStep(
        rule=rule,
        before=negative,
        after=updated,
        positive_premise=positive,
        side_condition=side_condition,
        description=description,
    )
    return updated, step


def unclaimed_cells_mismatch(claimed: Dict[Const, bool]) -> Optional[UnfoldingOutcome]:
    """The end-of-matching check: every positive atom must have been claimed.

    Returns the ``"mismatch"`` outcome naming the uncovered addresses, or
    ``None`` when the cover is complete.  Shared by every theory's matcher.
    """
    unclaimed = [address for address, used in claimed.items() if not used]
    if not unclaimed:
        return None
    return mismatch(
        "the right-hand side leaves the cell(s) at {} uncovered".format(
            ", ".join(str(address) for address in sorted(unclaimed, key=str))
        )
    )


def resolve_spatial(
    positive: Clause, current_clause: Clause, steps: List[UnfoldingStep]
) -> UnfoldingOutcome:
    """Spatial resolution: the shared final phase of every theory's unfolding.

    After the rewrite the two spatial formulas coincide (asserted here) and SR
    produces the pure clause ``Gamma u Gamma' -> Delta u Delta'``.
    """
    sigma = positive.spatial
    rewritten_sigma = current_clause.spatial
    assert sigma is not None and rewritten_sigma is not None
    if rewritten_sigma.drop_trivial() != sigma.drop_trivial():
        raise AssertionError(
            "unfolding completed but the rewritten formula {} differs from {}".format(
                rewritten_sigma, sigma
            )
        )

    derived = Clause.pure(
        positive.gamma | current_clause.gamma, positive.delta | current_clause.delta
    )
    steps.append(
        UnfoldingStep(
            rule="SR",
            before=current_clause,
            after=derived,
            positive_premise=positive,
            description="resolve the matching spatial formulas away",
        )
    )
    return UnfoldingOutcome(success=True, derived_pure=derived, steps=steps)


def unfold(positive: Clause, negative: Clause) -> UnfoldingOutcome:
    """Attempt to rewrite the negative clause's formula into the positive one.

    ``positive`` must be a normalised, well-formed positive spatial clause and
    ``negative`` a normalised negative spatial clause (both as produced by
    :func:`repro.spatial.normalization.normalize_clause`).  The rewrite is
    delegated to the spatial theory owning the formulas' predicates.
    """
    if not positive.is_positive_spatial:
        raise ValueError("the first argument must be a positive spatial clause")
    if not negative.is_negative_spatial:
        raise ValueError("the second argument must be a negative spatial clause")
    return theory_of(positive, negative).unfold(positive, negative)
