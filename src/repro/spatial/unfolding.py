"""Unfolding rules U1–U5 and spatial resolution SR (Figure 1, Lemma 4.4).

Unfolding is the heart of the prover's spatial reasoning.  Its inputs are

* a *positive* spatial clause ``C = Gamma -> Delta, Sigma`` whose spatial
  formula has already been normalised and checked well-formed, and
* a *negative* spatial clause ``C' = Gamma', Sigma' -> Delta'`` (also
  normalised).

The positive formula induces a concrete heap — its graph — and the procedure
checks whether that heap also satisfies ``Sigma'``.  Crucially, because both
formulas are normalised, the check involves **no search**: the heap is a
partial function, so the path each ``lseg`` atom of ``Sigma'`` must follow is
forced, and every rewrite of ``Sigma'`` towards ``Sigma`` is an application of
exactly one unfolding rule:

* U1 turns a final ``lseg(x, z)`` into the cell ``next(x, z)`` (side condition
  ``x = z`` recorded in ``Delta'``);
* U2 peels a cell ``next(x, y)`` off the front of ``lseg(x, z)`` (side
  condition ``x = z``);
* U3/U4/U5 split ``lseg(x, z)`` at an intermediate point ``y`` when the
  positive formula guarantees that ``z`` cannot occur strictly inside the
  remaining segment (``z`` is ``nil``, or ``z`` is allocated by a ``next`` or
  ``lseg`` atom of ``Sigma``; U5 records the side condition ``z = w``);
* SR finally resolves the two identical spatial formulas away, producing a
  pure clause.

When the rewrite cannot be completed the procedure reports *why*, and the
reason tells the counterexample builder how to exhibit a heap satisfying the
left-hand side but not the right-hand side:

* ``"mismatch"`` — the graph of ``Sigma`` itself already fails ``Sigma'``;
* ``"next_expects_cell"`` — ``Sigma'`` demands a single cell where ``Sigma``
  only guarantees a list segment (stretching the segment to two cells breaks
  the entailment);
* ``"dangling_segment"`` — a segment of ``Sigma'`` should stop at a location
  about which ``Sigma`` says nothing (re-routing the heap through that
  location breaks the entailment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.logic.atoms import EqAtom, ListSegment, PointsTo, SpatialAtom, SpatialFormula
from repro.logic.clauses import Clause
from repro.logic.terms import Const


@dataclass(frozen=True)
class UnfoldingStep:
    """One application of an unfolding rule (or of spatial resolution)."""

    rule: str
    before: Clause
    after: Clause
    positive_premise: Optional[Clause] = None
    side_condition: Optional[EqAtom] = None
    description: str = ""


@dataclass
class UnfoldingOutcome:
    """The result of attempting to unfold ``Sigma'`` against ``Sigma``.

    Attributes
    ----------
    success:
        True when the rewrite completed and spatial resolution produced a pure
        clause.
    derived_pure:
        The pure clause produced by SR (only on success).
    steps:
        The rule applications performed, in order (ending with SR on success).
    failure_kind:
        One of ``"mismatch"``, ``"next_expects_cell"``, ``"dangling_segment"``
        when ``success`` is false.
    failure_edge:
        For the two case-(b) failures, the edge ``(x, y)`` of the positive
        graph involved in the failure.
    failure_target:
        For ``"dangling_segment"``, the end point ``z`` the segment should have
        reached.
    failure_detail:
        A human readable explanation (used in results and logs).
    """

    success: bool
    derived_pure: Optional[Clause] = None
    steps: List[UnfoldingStep] = field(default_factory=list)
    failure_kind: Optional[str] = None
    failure_edge: Optional[Tuple[Const, Const]] = None
    failure_target: Optional[Const] = None
    failure_detail: str = ""


def _address_map(sigma: SpatialFormula) -> Dict[Const, SpatialAtom]:
    """Map each address of a well-formed formula to its unique atom."""
    mapping: Dict[Const, SpatialAtom] = {}
    for atom in sigma:
        if atom.is_trivial:
            continue
        if atom.address in mapping:
            raise ValueError(
                "unfolding requires a well-formed positive formula; "
                "address {} occurs twice".format(atom.address)
            )
        mapping[atom.address] = atom
    return mapping


def unfold(positive: Clause, negative: Clause) -> UnfoldingOutcome:
    """Attempt to rewrite the negative clause's formula into the positive one.

    ``positive`` must be a normalised, well-formed positive spatial clause and
    ``negative`` a normalised negative spatial clause (both as produced by
    :func:`repro.spatial.normalization.normalize_clause`).
    """
    if not positive.is_positive_spatial:
        raise ValueError("the first argument must be a positive spatial clause")
    if not negative.is_negative_spatial:
        raise ValueError("the second argument must be a negative spatial clause")

    sigma = positive.spatial
    sigma_neg = negative.spatial
    assert sigma is not None and sigma_neg is not None

    addresses = _address_map(sigma)
    claimed: Dict[Const, bool] = {address: False for address in addresses}

    # ------------------------------------------------------------------
    # Phase 1: matching.  Determine, for every atom of Sigma', the forced
    # sequence of Sigma atoms whose graph it must cover.  Any failure here
    # means the graph of Sigma itself falsifies Sigma' ("mismatch"), except
    # for the next-vs-lseg clash which is the paper's case (b).
    # ------------------------------------------------------------------
    matches: List[Tuple[SpatialAtom, List[SpatialAtom]]] = []
    for demanded in sigma_neg:
        if demanded.is_trivial:
            continue
        if isinstance(demanded, PointsTo):
            cell = addresses.get(demanded.source)
            if cell is None or cell.target != demanded.target:
                return _mismatch(
                    "no cell at {} pointing to {}".format(demanded.source, demanded.target)
                )
            if claimed[cell.address]:
                return _mismatch("cell at {} needed twice".format(cell.address))
            if isinstance(cell, ListSegment):
                return UnfoldingOutcome(
                    success=False,
                    failure_kind="next_expects_cell",
                    failure_edge=(cell.source, cell.target),
                    failure_detail=(
                        "{} demands a single cell but the left-hand side only "
                        "guarantees the segment {}".format(demanded, cell)
                    ),
                )
            claimed[cell.address] = True
            matches.append((demanded, [cell]))
        else:  # a non-trivial list segment lseg(x, z)
            chain: List[SpatialAtom] = []
            current = demanded.source
            visited = {current}
            while current != demanded.target:
                cell = addresses.get(current)
                if cell is None:
                    return _mismatch(
                        "the path demanded by {} dangles at {}".format(demanded, current)
                    )
                if claimed[cell.address]:
                    return _mismatch(
                        "the path demanded by {} reuses the cell at {}".format(demanded, current)
                    )
                claimed[cell.address] = True
                chain.append(cell)
                current = cell.target
                if current in visited and current != demanded.target:
                    return _mismatch(
                        "the path demanded by {} runs into a cycle at {}".format(demanded, current)
                    )
                visited.add(current)
            matches.append((demanded, chain))

    unclaimed = [address for address, used in claimed.items() if not used]
    if unclaimed:
        return _mismatch(
            "the right-hand side leaves the cell(s) at {} uncovered".format(
                ", ".join(str(address) for address in sorted(unclaimed, key=str))
            )
        )

    # ------------------------------------------------------------------
    # Phase 2: rewriting.  Replay the matching as a sequence of U-rule
    # applications on the negative clause, accumulating side conditions.
    # ------------------------------------------------------------------
    steps: List[UnfoldingStep] = []
    current_clause = negative

    for demanded, chain in matches:
        if isinstance(demanded, PointsTo):
            # Exact match with a next atom: nothing to rewrite.
            continue

        remaining = demanded  # the lseg atom still to be unfolded
        for index, cell in enumerate(chain):
            is_last = index == len(chain) - 1
            if is_last:
                if isinstance(cell, ListSegment):
                    # The final piece is literally the remaining segment.
                    break
                # U1: the final piece is a cell next(x, z).
                current_clause, step = _apply_rule(
                    current_clause,
                    positive,
                    "U1",
                    remaining,
                    [PointsTo(cell.source, cell.target)],
                    side_condition=EqAtom(cell.source, demanded.target),
                    description="fold the final cell {} into {}".format(cell, remaining),
                )
                steps.append(step)
                break

            peeled = ListSegment(cell.target, demanded.target)
            if isinstance(cell, PointsTo):
                # U2: peel a cell off the front of the segment.
                current_clause, step = _apply_rule(
                    current_clause,
                    positive,
                    "U2",
                    remaining,
                    [PointsTo(cell.source, cell.target), peeled],
                    side_condition=EqAtom(cell.source, demanded.target),
                    description="peel {} off {}".format(cell, remaining),
                )
            else:
                target = demanded.target
                if target.is_nil:
                    rule, side = "U3", None
                else:
                    anchor = addresses.get(target)
                    if anchor is None:
                        return UnfoldingOutcome(
                            success=False,
                            steps=steps,
                            failure_kind="dangling_segment",
                            failure_edge=(cell.source, cell.target),
                            failure_target=target,
                            failure_detail=(
                                "{} must stop at {} but the left-hand side does not "
                                "allocate {}".format(demanded, target, target)
                            ),
                        )
                    if isinstance(anchor, PointsTo):
                        rule, side = "U4", None
                    else:
                        rule, side = "U5", EqAtom(anchor.source, anchor.target)
                current_clause, step = _apply_rule(
                    current_clause,
                    positive,
                    rule,
                    remaining,
                    [ListSegment(cell.source, cell.target), peeled],
                    side_condition=side,
                    description="split {} at {}".format(remaining, cell.target),
                )
            steps.append(step)
            remaining = peeled

    # ------------------------------------------------------------------
    # Phase 3: spatial resolution.  After the rewrite the two spatial formulas
    # coincide and SR produces a pure clause.
    # ------------------------------------------------------------------
    rewritten_sigma = current_clause.spatial
    assert rewritten_sigma is not None
    if rewritten_sigma.drop_trivial() != sigma.drop_trivial():
        raise AssertionError(
            "unfolding completed but the rewritten formula {} differs from {}".format(
                rewritten_sigma, sigma
            )
        )

    derived = Clause.pure(
        positive.gamma | current_clause.gamma, positive.delta | current_clause.delta
    )
    steps.append(
        UnfoldingStep(
            rule="SR",
            before=current_clause,
            after=derived,
            positive_premise=positive,
            description="resolve the matching spatial formulas away",
        )
    )
    return UnfoldingOutcome(success=True, derived_pure=derived, steps=steps)


def _mismatch(detail: str) -> UnfoldingOutcome:
    return UnfoldingOutcome(success=False, failure_kind="mismatch", failure_detail=detail)


def _apply_rule(
    negative: Clause,
    positive: Clause,
    rule: str,
    old_atom: SpatialAtom,
    new_atoms: List[SpatialAtom],
    side_condition: Optional[EqAtom],
    description: str,
) -> Tuple[Clause, UnfoldingStep]:
    """Rewrite one atom of the negative clause's formula and record the step."""
    sigma = negative.spatial
    assert sigma is not None
    new_sigma = sigma.replace(old_atom, new_atoms)
    new_delta = negative.delta | {side_condition} if side_condition is not None else negative.delta
    updated = Clause(negative.gamma, new_delta, new_sigma, spatial_on_right=False)
    step = UnfoldingStep(
        rule=rule,
        before=negative,
        after=updated,
        positive_premise=positive,
        side_condition=side_condition,
        description=description,
    )
    return updated, step
