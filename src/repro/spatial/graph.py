"""The graph ``gr_R Sigma`` of a spatial formula (Definition 4.1).

Once a spatial formula has been normalised with respect to the equality model
``R``, every remaining basic atom contributes exactly one edge to its graph:

* ``next(x, y)`` contributes the edge ``x => y``;
* ``lseg(x, y)`` with ``x != y`` contributes the edge ``x => y`` (the
  candidate model realises every non-empty list segment as a single cell);
* trivial atoms ``lseg(x, x)`` contribute nothing (they describe the empty
  heap).

For a *well-formed* normalised formula the resulting edge set is a partial
function on non-``nil`` constants — i.e. a heap — and Lemma 4.1 shows that
this heap together with the induced stack is a model of the formula.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.logic.atoms import SpatialFormula
from repro.logic.terms import Const


class GraphConflictError(ValueError):
    """Raised when the formula is not well-formed and its graph is not a function."""


def spatial_graph(sigma: SpatialFormula, strict: bool = True) -> Dict[Const, Const]:
    """Compute the graph of a (normalised) spatial formula.

    Parameters
    ----------
    sigma:
        The spatial formula.  Constants are taken at face value: callers that
        want the graph with respect to an equality model should normalise the
        formula first (:func:`repro.spatial.normalization.normalize_clause`)
        so that every constant is its own normal form.
    strict:
        When true (default) raise :class:`GraphConflictError` if two atoms
        share an address or an address is ``nil`` — i.e. when the formula is
        not well-formed and its graph would not be a heap.
    """
    graph: Dict[Const, Const] = {}
    for atom in sigma:
        if atom.is_trivial:
            continue
        address = atom.address
        if strict and address.is_nil:
            raise GraphConflictError("atom {} has a nil address".format(atom))
        if strict and address in graph:
            raise GraphConflictError(
                "two atoms share the address {} — the formula is not well-formed".format(address)
            )
        graph[address] = atom.target
    return graph


def graph_edges(sigma: SpatialFormula) -> Tuple[Tuple[Const, Const], ...]:
    """The edges of the graph as a sorted tuple of pairs (convenience for tests)."""
    graph = spatial_graph(sigma, strict=False)
    return tuple(sorted(graph.items(), key=lambda edge: (edge[0].name, edge[1].name)))
