"""Spatial inference rules of the *SI* proof system (Figure 1 of the paper).

The *SI* system augments the superposition calculus with three groups of
rules that manipulate the spatial formula carried by a clause:

* **Normalisation** (N1–N4, :mod:`repro.spatial.normalization`): rewrite the
  constants of a spatial formula to their normal forms under the current
  equality model and drop trivial ``lseg(x, x)`` atoms.
* **Well-formedness** (W1–W5, :mod:`repro.spatial.wellformedness`): derive
  pure clauses from positive spatial clauses whose heap description is
  inconsistent (a ``nil`` address, or two atoms sharing an address).
* **Unfolding** (U1–U5 and spatial resolution SR,
  :mod:`repro.spatial.unfolding`): rewrite the spatial formula of a negative
  spatial clause using the (already normalised and well-formed) positive
  spatial clause, and resolve the two away, producing a new pure clause.

:mod:`repro.spatial.graph` computes the graph ``gr_R Sigma`` of a spatial
formula, i.e. the heap induced by reading every basic atom as a single cell.

Which concrete rules fire is owned by the spatial theory of the formula's
predicates: :mod:`repro.spatial.theory` defines the :class:`SpatialTheory`
interface and the registry, :mod:`repro.spatial.sll` is the builtin
``next``/``lseg`` fragment and :mod:`repro.spatial.dll` the doubly-linked
``cell``/``dlseg`` family (see ARCHITECTURE.md).
"""

from repro.spatial.graph import spatial_graph
from repro.spatial.normalization import NormalizationStep, normalize_clause
from repro.spatial.theory import (
    MixedTheoryError,
    PredicateSignature,
    SpatialTheory,
    available_theories,
    get_theory,
    register_theory,
    theory_of,
)
from repro.spatial.unfolding import UnfoldingOutcome, UnfoldingStep, unfold
from repro.spatial.wellformedness import WellFormednessConsequence, well_formedness_consequences

__all__ = [
    "spatial_graph",
    "MixedTheoryError",
    "PredicateSignature",
    "SpatialTheory",
    "available_theories",
    "get_theory",
    "register_theory",
    "theory_of",
    "NormalizationStep",
    "normalize_clause",
    "WellFormednessConsequence",
    "well_formedness_consequences",
    "UnfoldingOutcome",
    "UnfoldingStep",
    "unfold",
]
