"""The builtin singly-linked spatial theory: ``next(x, y)`` and ``lseg(x, y)``.

This is the paper's fragment, routed through the :class:`SpatialTheory`
interface.  The rule implementations are the original ones — well-formedness
W1–W5, the forced-path unfolding U1–U5/SR, the single-cell candidate-model
realisation of Definition 4.1 and the Lemma 4.4 counterexample tweaks — and
their behaviour is pinned byte-identical by the tier-1 suite, the
index-equivalence oracle and the fuzz corpus.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.logic.atoms import (
    EqAtom,
    ListSegment,
    PointsTo,
    SpatialAtom,
    SpatialFormula,
)
from repro.logic.clauses import Clause
from repro.logic.terms import NIL, Const
from repro.semantics.heap import Heap, Loc, NIL_LOC, Stack, fresh_location
from repro.spatial.graph import spatial_graph
from repro.spatial.theory import PredicateSignature, SpatialTheory, register_theory
from repro.spatial.unfolding import (
    UnfoldingOutcome,
    UnfoldingStep,
    address_map,
    apply_rule,
    mismatch,
    resolve_spatial,
    unclaimed_cells_mismatch,
)
from repro.spatial.wellformedness import WellFormednessConsequence, consequence_emitter


class SinglyLinkedTheory(SpatialTheory):
    """The ``next``/``lseg`` fragment of Berdine, Calcagno and O'Hearn."""

    name = "sll"
    description = "singly-linked cells next(x, y) and acyclic segments lseg(x, y)"
    cell_fields = 1
    signatures = (
        PredicateSignature(
            name="next",
            kind="cell",
            arity=2,
            constructor=PointsTo,
            doc="a single cell at x storing y",
        ),
        PredicateSignature(
            name="lseg",
            kind="segment",
            arity=2,
            constructor=ListSegment,
            doc="a possibly empty acyclic list segment from x to y",
        ),
    )

    # -- classification ----------------------------------------------------
    def is_segment(self, atom: SpatialAtom) -> bool:
        return isinstance(atom, ListSegment)

    # -- well-formedness (W1-W5, Figure 1) ---------------------------------
    def well_formedness_consequences(self, clause: Clause) -> List[WellFormednessConsequence]:
        sigma = clause.spatial
        assert sigma is not None

        consequences: List[WellFormednessConsequence] = []
        emit = consequence_emitter(clause, consequences)

        atoms = list(sigma)

        # W1 / W2: nil used as an address.
        for atom in atoms:
            if not atom.address.is_nil:
                continue
            if isinstance(atom, PointsTo):
                emit("W1", (), (atom,))
            elif isinstance(atom, ListSegment) and not atom.is_trivial:
                emit("W2", (EqAtom(atom.target, NIL),), (atom,))

        # W3 / W4 / W5: two atoms sharing the same address.
        for i in range(len(atoms)):
            for j in range(i + 1, len(atoms)):
                first, second = atoms[i], atoms[j]
                if first.address != second.address or first.address.is_nil:
                    continue
                first_is_next = isinstance(first, PointsTo)
                second_is_next = isinstance(second, PointsTo)
                if first_is_next and second_is_next:
                    emit("W3", (), (first, second))
                elif first_is_next and not second_is_next:
                    emit("W4", (EqAtom(second.source, second.target),), (first, second))
                elif not first_is_next and second_is_next:
                    emit("W4", (EqAtom(first.source, first.target),), (second, first))
                else:
                    emit(
                        "W5",
                        (
                            EqAtom(first.source, first.target),
                            EqAtom(second.source, second.target),
                        ),
                        (first, second),
                    )

        return consequences

    # -- unfolding (U1-U5 and SR, Figure 1 / Lemma 4.4) --------------------
    def unfold(self, positive: Clause, negative: Clause) -> UnfoldingOutcome:
        sigma = positive.spatial
        sigma_neg = negative.spatial
        assert sigma is not None and sigma_neg is not None

        addresses = address_map(sigma)
        claimed: Dict[Const, bool] = {address: False for address in addresses}

        # ------------------------------------------------------------------
        # Phase 1: matching.  Determine, for every atom of Sigma', the forced
        # sequence of Sigma atoms whose graph it must cover.  Any failure here
        # means the graph of Sigma itself falsifies Sigma' ("mismatch"), except
        # for the next-vs-lseg clash which is the paper's case (b).
        # ------------------------------------------------------------------
        matches: List[Tuple[SpatialAtom, List[SpatialAtom]]] = []
        for demanded in sigma_neg:
            if demanded.is_trivial:
                continue
            if isinstance(demanded, PointsTo):
                cell = addresses.get(demanded.source)
                if cell is None or cell.target != demanded.target:
                    return mismatch(
                        "no cell at {} pointing to {}".format(demanded.source, demanded.target)
                    )
                if claimed[cell.address]:
                    return mismatch("cell at {} needed twice".format(cell.address))
                if isinstance(cell, ListSegment):
                    return UnfoldingOutcome(
                        success=False,
                        failure_kind="next_expects_cell",
                        failure_edge=(cell.source, cell.target),
                        failure_atom=cell,
                        failure_detail=(
                            "{} demands a single cell but the left-hand side only "
                            "guarantees the segment {}".format(demanded, cell)
                        ),
                    )
                claimed[cell.address] = True
                matches.append((demanded, [cell]))
            else:  # a non-trivial list segment lseg(x, z)
                chain: List[SpatialAtom] = []
                current = demanded.source
                visited = {current}
                while current != demanded.target:
                    cell = addresses.get(current)
                    if cell is None:
                        return mismatch(
                            "the path demanded by {} dangles at {}".format(demanded, current)
                        )
                    if claimed[cell.address]:
                        return mismatch(
                            "the path demanded by {} reuses the cell at {}".format(
                                demanded, current
                            )
                        )
                    claimed[cell.address] = True
                    chain.append(cell)
                    current = cell.target
                    if current in visited and current != demanded.target:
                        return mismatch(
                            "the path demanded by {} runs into a cycle at {}".format(
                                demanded, current
                            )
                        )
                    visited.add(current)
                matches.append((demanded, chain))

        uncovered = unclaimed_cells_mismatch(claimed)
        if uncovered is not None:
            return uncovered

        # ------------------------------------------------------------------
        # Phase 2: rewriting.  Replay the matching as a sequence of U-rule
        # applications on the negative clause, accumulating side conditions.
        # ------------------------------------------------------------------
        steps: List[UnfoldingStep] = []
        current_clause = negative

        for demanded, chain in matches:
            if isinstance(demanded, PointsTo):
                # Exact match with a next atom: nothing to rewrite.
                continue

            remaining = demanded  # the lseg atom still to be unfolded
            for index, cell in enumerate(chain):
                is_last = index == len(chain) - 1
                if is_last:
                    if isinstance(cell, ListSegment):
                        # The final piece is literally the remaining segment.
                        break
                    # U1: the final piece is a cell next(x, z).
                    current_clause, step = apply_rule(
                        current_clause,
                        positive,
                        "U1",
                        remaining,
                        [PointsTo(cell.source, cell.target)],
                        side_condition=EqAtom(cell.source, demanded.target),
                        description="fold the final cell {} into {}".format(cell, remaining),
                    )
                    steps.append(step)
                    break

                peeled = ListSegment(cell.target, demanded.target)
                if isinstance(cell, PointsTo):
                    # U2: peel a cell off the front of the segment.
                    current_clause, step = apply_rule(
                        current_clause,
                        positive,
                        "U2",
                        remaining,
                        [PointsTo(cell.source, cell.target), peeled],
                        side_condition=EqAtom(cell.source, demanded.target),
                        description="peel {} off {}".format(cell, remaining),
                    )
                else:
                    target = demanded.target
                    if target.is_nil:
                        rule, side = "U3", None
                    else:
                        anchor = addresses.get(target)
                        if anchor is None:
                            return UnfoldingOutcome(
                                success=False,
                                steps=steps,
                                failure_kind="dangling_segment",
                                failure_edge=(cell.source, cell.target),
                                failure_atom=cell,
                                failure_target=target,
                                failure_detail=(
                                    "{} must stop at {} but the left-hand side does not "
                                    "allocate {}".format(demanded, target, target)
                                ),
                            )
                        if isinstance(anchor, PointsTo):
                            rule, side = "U4", None
                        else:
                            rule, side = "U5", EqAtom(anchor.source, anchor.target)
                    current_clause, step = apply_rule(
                        current_clause,
                        positive,
                        rule,
                        remaining,
                        [ListSegment(cell.source, cell.target), peeled],
                        side_condition=side,
                        description="split {} at {}".format(remaining, cell.target),
                    )
                steps.append(step)
                remaining = peeled

        # Phase 3: spatial resolution (shared across theories).
        return resolve_spatial(positive, current_clause, steps)

    # -- candidate model (Definition 4.1) ----------------------------------
    def model_heap_cells(
        self, locate: Callable[[Const], Loc], positive: Clause
    ) -> Dict[Loc, object]:
        sigma = positive.spatial
        assert sigma is not None
        graph = spatial_graph(sigma, strict=True)
        return {locate(source): locate(target) for source, target in graph.items()}

    # -- exact satisfaction -------------------------------------------------
    def satisfies_spatial(self, stack: Stack, heap: Heap, sigma: SpatialFormula) -> bool:
        claimed: Set[Loc] = set()

        for atom in sigma:
            source = stack.evaluate(atom.source)
            target = stack.evaluate(atom.target)

            if isinstance(atom, PointsTo):
                if source == NIL_LOC:
                    return False
                if heap.lookup(source) != target:
                    return False
                if source in claimed:
                    return False
                claimed.add(source)
                continue

            assert isinstance(atom, ListSegment)
            if source == target:
                continue  # the empty segment owns no cells
            current = source
            visited: Set[Loc] = set()
            while current != target:
                if current == NIL_LOC:
                    return False
                if current in visited:
                    return False  # a cycle that never reaches the target
                visited.add(current)
                value = heap.lookup(current)
                if value is None:
                    return False
                if current in claimed:
                    return False
                claimed.add(current)
                current = value

        return claimed == heap.domain()

    # -- counterexample tweaks (Lemma 4.4) ----------------------------------
    def counterexample_candidates(
        self,
        locate: Callable[[Const], Loc],
        base_cells: Dict[Loc, object],
        outcome: Optional[UnfoldingOutcome],
    ) -> List[Tuple[Dict[Loc, object], str]]:
        candidates: List[Tuple[Dict[Loc, object], str]] = []

        if outcome is not None and outcome.failure_kind == "next_expects_cell":
            assert outcome.failure_edge is not None
            source, target = outcome.failure_edge
            source_loc = locate(source)
            target_loc = locate(target)
            used = list(base_cells) + list(base_cells.values()) + [NIL_LOC]
            middle = fresh_location(used)
            stretched = dict(base_cells)
            stretched[source_loc] = middle
            stretched[middle] = target_loc
            candidates.append(
                (
                    stretched,
                    "the segment lseg({}, {}) stretched into two cells".format(source, target),
                )
            )

        if outcome is not None and outcome.failure_kind == "dangling_segment":
            assert outcome.failure_edge is not None and outcome.failure_target is not None
            source, target = outcome.failure_edge
            via = outcome.failure_target
            source_loc = locate(source)
            target_loc = locate(target)
            via_loc = locate(via)
            rerouted = dict(base_cells)
            rerouted[source_loc] = via_loc
            rerouted[via_loc] = target_loc
            candidates.append(
                (
                    rerouted,
                    "the segment lseg({}, {}) re-routed through {}".format(source, target, via),
                )
            )

        return candidates

    # -- generator hooks -----------------------------------------------------
    def frame_atom(self, source: Const, pool: List[Const], rng: random.Random) -> SpatialAtom:
        target = rng.choice(pool + [NIL]) if pool else NIL
        return (
            PointsTo(source, target) if rng.random() < 0.6 else ListSegment(source, target)
        )

    def empty_segment_atom(
        self, anchor: Const, pool: List[Const], rng: random.Random
    ) -> SpatialAtom:
        return ListSegment(anchor, anchor)


#: The registered singleton.
THEORY = register_theory(SinglyLinkedTheory())
