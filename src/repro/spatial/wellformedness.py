"""Well-formedness rules: unsatisfiable heap shapes become pure clauses.

A positive spatial clause ``Gamma -> Delta, Sigma`` asserts a heap shape; the
well-formedness rules detect shapes that cannot be realised by any heap and
turn them into *pure* clauses.  Which shapes those are is theory specific —
the rules belong to the :class:`~repro.spatial.theory.SpatialTheory` owning
the formula's predicates — but they all follow the same scheme: an allocated
address that is ``nil`` or claimed twice forces the involved segments to be
empty (their emptiness equations are added to ``Delta``) or, when no segment
can absorb the conflict, yields the plain clause ``Gamma -> Delta``.

For the builtin singly-linked theory these are the paper's rules W1–W5
(Figure 1):

* **W1** ``next(nil, y)`` occurs in ``Sigma``: no heap has a cell at ``nil``;
  derive ``Gamma -> Delta``.
* **W2** ``lseg(nil, y)`` occurs: the segment must be empty; derive
  ``Gamma -> y = nil, Delta``.
* **W3** two ``next`` atoms share an address: impossible; derive
  ``Gamma -> Delta``.
* **W4** ``next(x, y)`` and ``lseg(x, z)`` share the address ``x``: the
  segment must be empty; derive ``Gamma -> x = z, Delta``.
* **W5** ``lseg(x, y)`` and ``lseg(x, z)`` share the address ``x``: one of the
  two segments must be empty; derive ``Gamma -> x = y, x = z, Delta``.

The doubly-linked rules (W1–W5 analogues plus the back-anchor rules D1–D4)
live in :mod:`repro.spatial.dll`.

Like normalisation, computing these consequences involves no search: it is a
single pass over the (finitely many) atoms and pairs of atoms of ``Sigma``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.logic.atoms import SpatialAtom
from repro.logic.clauses import Clause
from repro.spatial.theory import theory_of


@dataclass(frozen=True)
class WellFormednessConsequence:
    """A pure clause derived by one of the well-formedness rules."""

    rule: str
    conclusion: Clause
    premise: Clause
    offending: Tuple[SpatialAtom, ...]

    def __str__(self) -> str:
        return "[{}] {}".format(self.rule, self.conclusion)


def consequence_emitter(clause: Clause, consequences: List[WellFormednessConsequence]):
    """An ``emit(rule, extra_delta, offending)`` closure appending consequences.

    Shared by the theories' rule implementations: the conclusion is always the
    premise's pure part with the rule's extra equalities added to ``Delta``.
    """

    def emit(rule, extra_delta, offending) -> None:
        conclusion = Clause.pure(clause.gamma, clause.delta | frozenset(extra_delta))
        consequences.append(
            WellFormednessConsequence(
                rule=rule, conclusion=conclusion, premise=clause, offending=tuple(offending)
            )
        )

    return emit


def well_formedness_consequences(clause: Clause) -> List[WellFormednessConsequence]:
    """All pure clauses derivable from a positive spatial clause.

    The input must be a positive spatial clause; the consequences are pure
    clauses sharing the input's ``Gamma``/``Delta`` with the extra equalities
    mandated by each rule of the owning theory.
    """
    if not clause.is_positive_spatial:
        raise ValueError("well-formedness rules apply to positive spatial clauses only")
    return theory_of(clause).well_formedness_consequences(clause)
