"""Well-formedness rules W1–W5 (Figure 1).

A positive spatial clause ``Gamma -> Delta, Sigma`` asserts a heap shape; the
well-formedness rules detect shapes that cannot be realised by any heap and
turn them into *pure* clauses:

* **W1** ``next(nil, y)`` occurs in ``Sigma``: no heap has a cell at ``nil``;
  derive ``Gamma -> Delta``.
* **W2** ``lseg(nil, y)`` occurs: the segment must be empty; derive
  ``Gamma -> y = nil, Delta``.
* **W3** two ``next`` atoms share an address: impossible; derive
  ``Gamma -> Delta``.
* **W4** ``next(x, y)`` and ``lseg(x, z)`` share the address ``x``: the
  segment must be empty; derive ``Gamma -> x = z, Delta``.
* **W5** ``lseg(x, y)`` and ``lseg(x, z)`` share the address ``x``: one of the
  two segments must be empty; derive ``Gamma -> x = y, x = z, Delta``.

Like normalisation, computing these consequences involves no search: it is a
single pass over the (finitely many) atoms and pairs of atoms of ``Sigma``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.logic.atoms import EqAtom, ListSegment, PointsTo, SpatialAtom
from repro.logic.clauses import Clause
from repro.logic.terms import NIL


@dataclass(frozen=True)
class WellFormednessConsequence:
    """A pure clause derived by one of the rules W1–W5."""

    rule: str
    conclusion: Clause
    premise: Clause
    offending: Tuple[SpatialAtom, ...]

    def __str__(self) -> str:
        return "[{}] {}".format(self.rule, self.conclusion)


def well_formedness_consequences(clause: Clause) -> List[WellFormednessConsequence]:
    """All pure clauses derivable from a positive spatial clause by W1–W5.

    The input must be a positive spatial clause; the consequences are pure
    clauses sharing the input's ``Gamma``/``Delta`` with the extra equalities
    mandated by each rule.
    """
    if not clause.is_positive_spatial:
        raise ValueError("well-formedness rules apply to positive spatial clauses only")
    sigma = clause.spatial
    assert sigma is not None

    consequences: List[WellFormednessConsequence] = []

    def emit(rule: str, extra_delta: Tuple[EqAtom, ...], offending: Tuple[SpatialAtom, ...]) -> None:
        conclusion = Clause.pure(clause.gamma, clause.delta | frozenset(extra_delta))
        consequences.append(
            WellFormednessConsequence(
                rule=rule, conclusion=conclusion, premise=clause, offending=offending
            )
        )

    atoms = list(sigma)

    # W1 / W2: nil used as an address.
    for atom in atoms:
        if not atom.address.is_nil:
            continue
        if isinstance(atom, PointsTo):
            emit("W1", (), (atom,))
        elif isinstance(atom, ListSegment) and not atom.is_trivial:
            emit("W2", (EqAtom(atom.target, NIL),), (atom,))

    # W3 / W4 / W5: two atoms sharing the same address.
    for i in range(len(atoms)):
        for j in range(i + 1, len(atoms)):
            first, second = atoms[i], atoms[j]
            if first.address != second.address or first.address.is_nil:
                continue
            first_is_next = isinstance(first, PointsTo)
            second_is_next = isinstance(second, PointsTo)
            if first_is_next and second_is_next:
                emit("W3", (), (first, second))
            elif first_is_next and not second_is_next:
                emit("W4", (EqAtom(second.source, second.target),), (first, second))
            elif not first_is_next and second_is_next:
                emit("W4", (EqAtom(first.source, first.target),), (second, first))
            else:
                emit(
                    "W5",
                    (
                        EqAtom(first.source, first.target),
                        EqAtom(second.source, second.target),
                    ),
                    (first, second),
                )

    return consequences
