"""Normalisation rules N1–N4 (Figure 1) driven by the equality model.

Normalisation rewrites the spatial formula of a clause so that every constant
it mentions is in normal form with respect to the current rewrite relation
``R``, and removes trivial ``lseg(x, x)`` atoms.

Each rewrite step is an instance of rule N1 (for positive spatial clauses) or
N3 (for negative ones): the pure premise is the *generating clause* of the
rewrite edge being applied, and its leftover literals are added to the
conclusion — exactly as in the worked example of Section 2, where normalising
with the clause ``∅ -> a = b, a = c`` leaves the reminder literal ``a = b`` in
the normalised clause.  Removing a trivial atom is an instance of N2/N4.

The important property (Lemma 4.2) is that normalisation requires **no
search**: the model tells us which constant to rewrite and which clause
justifies the step.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.logic.atoms import SpatialAtom, SpatialFormula
from repro.logic.clauses import Clause
from repro.logic.terms import Const
from repro.superposition.model import EqualityModel


@dataclass(frozen=True)
class NormalizationStep:
    """One application of a normalisation rule.

    Attributes
    ----------
    rule:
        ``"N1"``/``"N3"`` for a rewrite step, ``"N2"``/``"N4"`` for the removal
        of a trivial atom.
    before, after:
        The clause before and after the step.
    pure_premise:
        The generating pure clause justifying a rewrite step (``None`` for
        N2/N4 steps).
    rewritten:
        The pair ``(x, y)`` of the rewrite edge used (``None`` for N2/N4).
    removed:
        The trivial atom removed by an N2/N4 step (``None`` for N1/N3).
    """

    rule: str
    before: Clause
    after: Clause
    pure_premise: Optional[Clause] = None
    rewritten: Optional[Tuple[Const, Const]] = None
    removed: Optional[SpatialAtom] = None


def normalize_clause(clause: Clause, model: EqualityModel) -> Tuple[Clause, List[NormalizationStep]]:
    """Normalise the spatial formula of ``clause`` with respect to ``model``.

    Returns the normalised clause together with the list of rule applications
    performed (used for proof reconstruction).  Pure clauses are returned
    unchanged.

    The rewriting applies single edges of the model's rewrite relation one at
    a time, mirroring rule N1/N3 exactly: each step substitutes ``y`` for
    ``x`` throughout the spatial formula, where ``x => y`` is an edge of ``R``
    and the generating clause's leftover literals are merged into the clause.
    """
    if clause.is_pure or clause.spatial is None:
        return clause, []

    rewrite_rule = "N1" if clause.spatial_on_right else "N3"
    removal_rule = "N2" if clause.spatial_on_right else "N4"

    steps: List[NormalizationStep] = []
    current = clause

    # Phase 1: rewrite constants to their normal forms, one edge at a time.
    while True:
        sigma = current.spatial
        assert sigma is not None
        reducible = _find_reducible_constant(sigma, model)
        if reducible is None:
            break
        source = reducible
        target = model.relation.successor(source)
        assert target is not None
        generator = model.generator_for(source, target)
        updated = Clause(
            current.gamma | generator.leftover_gamma,
            current.delta | generator.leftover_delta,
            sigma.substitute({source: target}),
            current.spatial_on_right,
        )
        steps.append(
            NormalizationStep(
                rule=rewrite_rule,
                before=current,
                after=updated,
                pure_premise=generator.clause,
                rewritten=(source, target),
            )
        )
        current = updated

    # Phase 2: drop trivial lseg(x, x) atoms.
    while True:
        sigma = current.spatial
        assert sigma is not None
        trivial = next((atom for atom in sigma if atom.is_trivial), None)
        if trivial is None:
            break
        updated = Clause(
            current.gamma,
            current.delta,
            sigma.remove(trivial),
            current.spatial_on_right,
        )
        steps.append(
            NormalizationStep(
                rule=removal_rule,
                before=current,
                after=updated,
                removed=trivial,
            )
        )
        current = updated

    return current, steps


def _find_reducible_constant(sigma: SpatialFormula, model: EqualityModel) -> Optional[Const]:
    """The first constant of the formula that is reducible under the model, if any."""
    for constant in sorted(sigma.constants(), key=lambda c: c.name):
        if not model.relation.is_irreducible(constant):
            return constant
    return None


def normalize_clause_fast(clause: Clause, model: EqualityModel) -> Tuple[Clause, int]:
    """:func:`normalize_clause` without materialising the step objects.

    Returns the identical normalised clause together with the *number* of
    rule applications the step-by-step algorithm would record.  The prover
    uses this path whenever no proof trace is being recorded: the stepwise
    loop builds a fresh clause and spatial formula per rewrite step purely
    for the trace, which dominated normalisation cost in profiles.

    Equivalence with the stepwise algorithm (pinned by
    ``tests/test_kernel.py``):

    * the final spatial formula is the one-pass simultaneous substitution of
      every constant by its normal form — sequential single-edge application
      composes to exactly that map;
    * the merged leftover literals are those of the *applied* edges, and the
      set of applied edges is the union of the rewrite paths of the
      formula's original constants (every applied edge lies on such a path,
      and every path edge eventually fires);
    * the step count is replayed on a lightweight constant set using the
      same pick order (name-least reducible constant first).
    """
    if clause.is_pure or clause.spatial is None:
        return clause, 0

    sigma = clause.spatial
    relation = model.relation
    successor = relation.successor

    constants = set(sigma.constants())
    if not any(constant in relation for constant in constants):
        rewrite_steps = 0
        gamma, delta = clause.gamma, clause.delta
        final_sigma = sigma
    else:
        rewrite_steps = 0
        gamma_parts = [clause.gamma]
        delta_parts = [clause.delta]
        present = set(constants)
        # The pick order re-sorts the present set by name every step; keep a
        # name-sorted list in step (one sort up front, splices per step)
        # instead of sorting from scratch each round of the loop.
        ordered = sorted(present, key=_const_name)
        while True:
            source = None
            for constant in ordered:
                if constant in relation:
                    source = constant
                    break
            if source is None:
                break
            target = successor(source)
            assert target is not None
            generator = model.generator_for(source, target)
            gamma_parts.append(generator.leftover_gamma)
            delta_parts.append(generator.leftover_delta)
            present.discard(source)
            ordered.remove(source)
            if target not in present:
                present.add(target)
                insort(ordered, target, key=_const_name)
            rewrite_steps += 1
        gamma = frozenset().union(*gamma_parts)
        delta = frozenset().union(*delta_parts)
        mapping = {
            constant: relation.normal_form(constant)
            for constant in constants
            if constant in relation
        }
        final_sigma = sigma.substitute(mapping)

    removals = sum(1 for atom in final_sigma if atom.is_trivial)
    if removals:
        final_sigma = SpatialFormula(
            atom for atom in final_sigma if not atom.is_trivial
        )
    if rewrite_steps or removals:
        normalized = Clause(gamma, delta, final_sigma, clause.spatial_on_right)
    else:
        normalized = clause
    return normalized, rewrite_steps + removals


def _const_name(constant: Const) -> str:
    return constant.name
