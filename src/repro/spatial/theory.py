"""The pluggable spatial-theory layer.

The paper presents the entailment procedure for one fixed fragment —
``next``/``lseg`` — but nothing in the *algorithm* depends on that choice:
superposition, the clausal embedding, normalisation (N1–N4) and the Figure 3
loop are all parametric in the predicate vocabulary.  What *is* predicate
specific is

* the well-formedness axioms (which shapes are unsatisfiable and which pure
  clauses they yield),
* the forced-path unfolding rules (U1–U5/SR) that rewrite a demanded spatial
  formula into the asserted one,
* the candidate-model construction (how each atom is realised as concrete
  heap cells),
* the exact satisfaction relation of each atom, and
* the counterexample tweaks of Lemma 4.4 (how a failed unfolding is turned
  into a concrete falsifying heap).

A :class:`SpatialTheory` bundles exactly these ingredients behind one object.
The builtin singly-linked theory (:mod:`repro.spatial.sll`) is the paper's
fragment; the doubly-linked theory (:mod:`repro.spatial.dll`) proves the
abstraction out with two-field cells ``cell(x, n, p)`` and segments
``dlseg(x, px, y, py)``.  Both keep the fragment's crucial *no-search*
property: because a heap is a partial function, the cells any atom may own
are forced.

Atoms carry their theory as a string tag (:attr:`SpatialAtom.theory`), so
formulas remain plain data; :func:`theory_of` recovers the owning theory from
any formula/clause/entailment and rejects mixed-theory inputs, which have no
meaningful heap model (the theories disagree on the cell layout).

See ``ARCHITECTURE.md`` for the layer diagram and a walkthrough of adding a
new predicate family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from repro.logic.atoms import SpatialAtom, SpatialFormula
from repro.logic.terms import Const

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    import random

    from repro.logic.clauses import Clause
    from repro.spatial.unfolding import UnfoldingOutcome
    from repro.spatial.wellformedness import WellFormednessConsequence

__all__ = [
    "PredicateSignature",
    "SpatialTheory",
    "MixedTheoryError",
    "UnknownTheoryError",
    "register_theory",
    "get_theory",
    "available_theories",
    "predicate_table",
    "theory_of",
]


class MixedTheoryError(ValueError):
    """Raised when one formula/entailment mixes atoms of different theories.

    Theories disagree on the heap-cell layout (one pointer field vs two), so a
    mixed formula has no model space to interpret it in.
    """


class UnknownTheoryError(KeyError):
    """Raised when a theory name is not in the registry."""


@dataclass(frozen=True)
class PredicateSignature:
    """Declarative description of one spatial predicate.

    Attributes
    ----------
    name:
        The surface-syntax predicate name (``next``, ``lseg``, ``cell``, ...).
    kind:
        ``"cell"`` for points-to-like predicates that always occupy exactly
        one heap cell, ``"segment"`` for possibly-empty inductive predicates.
    arity:
        Number of constant arguments.
    constructor:
        Callable building the atom from ``arity`` constants, in surface
        argument order.
    doc:
        One-line reading of the predicate, shown in diagnostics and docs.
    """

    name: str
    kind: str
    arity: int
    constructor: Callable[..., SpatialAtom]
    doc: str = ""


class SpatialTheory:
    """A predicate family plus all the layer-specific logic it owns.

    Subclasses implement the hooks below; everything else in the pipeline
    (CNF embedding, saturation, normalisation, the Figure 3 loop, batching,
    caching, fuzzing) is theory independent and must not be overridden.
    """

    #: Registry key and :attr:`SpatialAtom.theory` tag of the family.
    name: str = ""

    #: One-line description, shown in docs and diagnostics.
    description: str = ""

    #: Number of pointer fields per heap cell.  Determines the heap-value
    #: shape: 1 field stores a bare location, k > 1 fields store a k-tuple.
    cell_fields: int = 1

    #: The predicate signatures of the family, in canonical order.
    signatures: Tuple[PredicateSignature, ...] = ()

    # -- classification ----------------------------------------------------
    def is_segment(self, atom: SpatialAtom) -> bool:
        """True for possibly-empty inductive (segment-like) atoms."""
        raise NotImplementedError

    def is_cell(self, atom: SpatialAtom) -> bool:
        """True for points-to-like atoms (exactly one cell, never empty)."""
        return not self.is_segment(atom)

    # -- saturation-side hooks ---------------------------------------------
    def well_formedness_consequences(self, clause: "Clause") -> List["WellFormednessConsequence"]:
        """All pure clauses derivable from a positive spatial clause.

        The consequences must be sound axioms of the theory: shapes no heap
        can realise yield ``Gamma -> Delta`` style pure clauses, with the
        emptiness equations of the involved segments added to ``Delta``.
        """
        raise NotImplementedError

    def unfold(self, positive: "Clause", negative: "Clause") -> "UnfoldingOutcome":
        """Rewrite the negative clause's formula into the positive one.

        Both clauses are normalised (and the positive one is well-formed at
        the fixpoint of :meth:`well_formedness_consequences`).  The rewrite
        must require no search — the forced-path property of the fragment —
        and on failure must report one of the failure kinds that
        :meth:`counterexample_candidates` knows how to realise.
        """
        raise NotImplementedError

    # -- model-side hooks --------------------------------------------------
    def model_heap_cells(
        self, locate: Callable[[Const], str], positive: "Clause"
    ) -> Dict[str, object]:
        """The candidate heap induced by a normalised positive spatial clause.

        ``locate`` maps constants to location names through the equality
        model.  Cell values are bare locations for one-field theories and
        location tuples otherwise (matching :attr:`cell_fields`).
        """
        raise NotImplementedError

    def satisfies_spatial(self, stack, heap, sigma: SpatialFormula) -> bool:
        """The exact relation ``s, h |= S1 * ... * Sn`` for this theory."""
        raise NotImplementedError

    def counterexample_candidates(
        self,
        locate: Callable[[Const], str],
        base_cells: Dict[str, object],
        outcome: Optional["UnfoldingOutcome"],
    ) -> List[Tuple[Dict[str, object], str]]:
        """Candidate falsifying heaps derived from a failed unfolding.

        Returns ``(cells, description)`` pairs in decreasing order of
        preference; the counterexample builder appends the untweaked base
        heap as the final candidate and verifies each against the exact
        semantics before returning it.
        """
        raise NotImplementedError

    # -- generator hooks (fuzzing / metamorphic transforms) -----------------
    def frame_atom(self, source: Const, pool: List[Const], rng: "random.Random") -> SpatialAtom:
        """A random atom addressed at the fresh variable ``source``.

        Used by the frame-extension metamorphic transform; the atom's only
        requirement is that its address is ``source`` (so the frame is
        separated from the rest of the formula by freshness).
        """
        raise NotImplementedError

    def empty_segment_atom(
        self, anchor: Const, pool: List[Const], rng: "random.Random"
    ) -> SpatialAtom:
        """A trivial (empty) segment atom anchored at ``anchor``.

        Must satisfy ``atom.is_trivial``, i.e. be the unit of ``*``.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<SpatialTheory {!r}>".format(self.name)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, SpatialTheory] = {}
_BUILTINS_LOADED = False

#: The theory assumed for purely-pure / ``emp`` inputs, which are meaningful
#: in every theory.  The builtin singly-linked fragment keeps the seed
#: behaviour byte-identical.
DEFAULT_THEORY = "sll"


def register_theory(theory: SpatialTheory) -> SpatialTheory:
    """Add a theory to the registry (idempotent per name; returns it)."""
    if not theory.name:
        raise ValueError("a spatial theory needs a non-empty name")
    _REGISTRY[theory.name] = theory
    return theory


def _ensure_builtins() -> None:
    """Import the builtin theories on first registry access.

    Lazy so that :mod:`repro.spatial.theory` can be imported from anywhere in
    the package (including the modules the builtin theories themselves
    import) without a cycle.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.spatial import dll, sll  # noqa: F401  (self-registering imports)


def get_theory(name: str) -> SpatialTheory:
    """Look a theory up by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownTheoryError(
            "unknown spatial theory {!r}; registered: {}".format(
                name, ", ".join(sorted(_REGISTRY)) or "none"
            )
        )


def available_theories() -> Tuple[SpatialTheory, ...]:
    """All registered theories, sorted by name."""
    _ensure_builtins()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def predicate_table() -> Dict[str, Tuple[SpatialTheory, PredicateSignature]]:
    """Map every registered predicate name to its theory and signature.

    This is the parser's single source of truth for the spatial surface
    syntax; predicate names must therefore be globally unique.
    """
    _ensure_builtins()
    table: Dict[str, Tuple[SpatialTheory, PredicateSignature]] = {}
    for theory in available_theories():
        for signature in theory.signatures:
            if signature.name in table:
                raise ValueError(
                    "predicate name {!r} registered by two theories".format(signature.name)
                )
            table[signature.name] = (theory, signature)
    return table


def _theory_names(atoms: Iterable[SpatialAtom]) -> frozenset:
    return frozenset(atom.theory for atom in atoms)


def theory_of(*sources) -> SpatialTheory:
    """The unique theory owning the atoms of the given sources.

    Accepts any mix of :class:`SpatialFormula`, clause-like objects (with a
    ``spatial`` attribute), entailment-like objects (with ``lhs_spatial`` /
    ``rhs_spatial``) and iterables of atoms.  Sources with no spatial atoms
    contribute nothing; when *no* source has an atom the default (singly
    linked) theory is returned, since pure reasoning is theory independent.

    Raises :class:`MixedTheoryError` when two different theories occur.
    """
    names = set()
    for source in sources:
        if source is None:
            continue
        if isinstance(source, SpatialFormula):
            names.update(_theory_names(source))
        elif hasattr(source, "lhs_spatial"):
            names.update(_theory_names(source.lhs_spatial))
            names.update(_theory_names(source.rhs_spatial))
        elif hasattr(source, "spatial"):
            if source.spatial is not None:
                names.update(_theory_names(source.spatial))
        else:
            names.update(_theory_names(source))
    if len(names) > 1:
        raise MixedTheoryError(
            "spatial atoms of different theories may not be mixed: {}".format(
                ", ".join(sorted(names))
            )
        )
    return get_theory(names.pop() if names else DEFAULT_THEORY)
