"""The doubly-linked spatial theory: ``cell(x, n, p)`` and ``dlseg(x, px, y, py)``.

This is the first predicate family beyond the paper's fragment, instantiated
through the :class:`~repro.spatial.theory.SpatialTheory` interface.  A heap
cell has two pointer fields (``next``, ``prev``); the segment predicate is

    dlseg(x, px, y, py)  =  (x = y /\\ px = py /\\ emp)
                         \\/ (exists u. cell(x, u, px) * dlseg(u, x, y, py))

so ``px`` is what the first cell's ``prev`` field points to and ``py`` is the
*last cell* of the segment.  The family keeps the fragment's no-search
forced-path property: a heap is a partial function, so the cells a ``dlseg``
atom may own are found by walking ``next`` pointers from ``x`` while checking
the ``prev`` backlinks — there is never a choice point.

Consequences of the definition that drive the rule systems below:

* a non-empty segment owns ``x`` and ``py`` (they coincide exactly for
  one-cell segments), and its end ``y`` is *not* owned, so ``py != y`` and
  ``py != nil`` whenever the segment is non-empty;
* ``dlseg(x, px, x, py)`` with ``px != py`` is unsatisfiable unless
  ``px = py`` holds (rule D1);
* the candidate model realises every non-empty segment with the fewest cells
  its arguments allow: one cell ``x -> (y, px)`` when ``py = x``, otherwise
  the two cells ``x -> (py, px)`` and ``py -> (y, x)``.  The back cell is a
  second *allocation anchor*, which is what the D-rules below track.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.logic.atoms import (
    DllCell,
    DllSegment,
    EqAtom,
    SpatialAtom,
    SpatialFormula,
)
from repro.logic.clauses import Clause
from repro.logic.terms import NIL, Const
from repro.semantics.heap import Heap, Loc, NIL_LOC, Stack, fresh_location
from repro.spatial.theory import PredicateSignature, SpatialTheory, register_theory
from repro.spatial.unfolding import (
    UnfoldingOutcome,
    UnfoldingStep,
    address_map,
    apply_rule,
    mismatch,
    resolve_spatial,
    unclaimed_cells_mismatch,
)
from repro.spatial.wellformedness import WellFormednessConsequence, consequence_emitter


def _back_map(sigma: SpatialFormula) -> Dict[Const, DllSegment]:
    """Map the *back* cell of every two-cell segment to its atom.

    Only segments whose back differs from their head contribute — a one-cell
    segment's back IS its address and lives in the address map.
    """
    backs: Dict[Const, DllSegment] = {}
    for atom in sigma:
        if isinstance(atom, DllSegment) and not atom.is_trivial and atom.back != atom.source:
            if atom.back in backs:
                raise ValueError(
                    "unfolding requires a well-formed positive formula; "
                    "back cell {} occurs twice".format(atom.back)
                )
            backs[atom.back] = atom
    return backs


def _stretch_failure(segment: DllSegment, demanded: SpatialAtom) -> UnfoldingOutcome:
    """The case-(b) failure: the RHS pins down cells inside a stretchable segment."""
    return UnfoldingOutcome(
        success=False,
        failure_kind="next_expects_cell",
        failure_edge=(segment.source, segment.target),
        failure_atom=segment,
        failure_detail=(
            "{} pins down cells but the left-hand side only guarantees the "
            "stretchable segment {}".format(demanded, segment)
        ),
    )


class DoublyLinkedTheory(SpatialTheory):
    """Two-field cells and doubly-linked segments."""

    name = "dll"
    description = "two-field cells cell(x, n, p) and doubly-linked segments dlseg(x, px, y, py)"
    cell_fields = 2
    signatures = (
        PredicateSignature(
            name="cell",
            kind="cell",
            arity=3,
            constructor=DllCell,
            doc="a single two-field cell at x with next = n and prev = p",
        ),
        PredicateSignature(
            name="dlseg",
            kind="segment",
            arity=4,
            constructor=DllSegment,
            doc="a possibly empty doubly-linked segment from x to y; the first "
            "cell's prev is px and the last cell is py",
        ),
    )

    # -- classification ----------------------------------------------------
    def is_segment(self, atom: SpatialAtom) -> bool:
        return isinstance(atom, DllSegment)

    # -- well-formedness ----------------------------------------------------
    def well_formedness_consequences(self, clause: Clause) -> List[WellFormednessConsequence]:
        """The W1-W5 analogues plus the back-anchor rules D1-D4.

        * **W1** ``cell(nil, n, p)``: derive ``Gamma -> Delta``.
        * **W2** ``dlseg(nil, px, y, py)`` (non-trivial, ``nil != y``): the
          segment must be empty; derive ``Gamma -> y = nil, Delta``.
        * **D1** ``dlseg(x, px, x, py)`` with ``px != py``: only the empty
          segment fits; derive ``Gamma -> px = py, Delta``.
        * **D2** ``dlseg(x, px, y, nil)`` (``x != y``): a non-empty segment's
          last cell cannot be ``nil``; derive ``Gamma -> x = y, Delta``.
        * **D3** ``dlseg(x, px, y, y)`` (``x != y``): the last cell is owned
          but the end is not; derive ``Gamma -> x = y, Delta``.
        * **W3/W4/W5/D4** two allocation anchors coincide: every atom that
          cannot be empty there contributes a contradiction, every segment
          contributes its emptiness equation to ``Delta``.  Anchors are the
          address of every atom plus the back cell of every two-cell segment
          (W3: cell/cell, W4: cell/segment, W5: segment/segment — all on
          addresses, mirroring the singly-linked names; D4: any collision
          involving a back anchor).
        """
        sigma = clause.spatial
        assert sigma is not None

        consequences: List[WellFormednessConsequence] = []
        emit = consequence_emitter(clause, consequences)

        atoms = list(sigma)

        # Per-atom rules: nil anchors and degenerate argument patterns.
        for atom in atoms:
            if isinstance(atom, DllCell):
                if atom.address.is_nil:
                    emit("W1", (), (atom,))
                continue
            assert isinstance(atom, DllSegment)
            if atom.is_trivial:
                continue
            if atom.source == atom.target:
                # Non-trivial with equal ends: prev != back, so only the empty
                # segment fits and it forces the prev/back equation.
                emit("D1", (EqAtom(atom.prev, atom.back),), (atom,))
                continue
            emptiness = EqAtom(atom.source, atom.target)
            if atom.address.is_nil:
                emit("W2", (emptiness,), (atom,))
            if atom.back.is_nil:
                emit("D2", (emptiness,), (atom,))
            if atom.back == atom.target:
                emit("D3", (emptiness,), (atom,))

        # Pairwise rules: two allocation anchors naming the same location.
        def anchors(atom: SpatialAtom) -> List[Tuple[Const, Optional[EqAtom], str]]:
            """(location, emptiness escape, anchor role) per allocated cell."""
            if isinstance(atom, DllCell):
                return [(atom.source, None, "head")]
            assert isinstance(atom, DllSegment)
            if atom.is_trivial or atom.source == atom.target:
                return []  # forced empty: allocates nothing
            emptiness = EqAtom(atom.source, atom.target)
            result = [(atom.source, emptiness, "head")]
            if atom.back != atom.source:
                result.append((atom.back, emptiness, "back"))
            return result

        anchor_lists = [anchors(atom) for atom in atoms]
        for i in range(len(atoms)):
            for j in range(i + 1, len(atoms)):
                for loc_i, escape_i, role_i in anchor_lists[i]:
                    for loc_j, escape_j, role_j in anchor_lists[j]:
                        if loc_i != loc_j or loc_i.is_nil:
                            continue
                        if role_i == "head" and role_j == "head":
                            if escape_i is None and escape_j is None:
                                rule = "W3"
                            elif escape_i is None or escape_j is None:
                                rule = "W4"
                            else:
                                rule = "W5"
                        else:
                            rule = "D4"
                        extra = tuple(
                            dict.fromkeys(
                                escape for escape in (escape_i, escape_j) if escape is not None
                            )
                        )
                        emit(rule, extra, (atoms[i], atoms[j]))

        return consequences

    # -- unfolding ----------------------------------------------------------
    def unfold(self, positive: Clause, negative: Clause) -> UnfoldingOutcome:
        sigma = positive.spatial
        sigma_neg = negative.spatial
        assert sigma is not None and sigma_neg is not None

        addresses = address_map(sigma)
        backs = _back_map(sigma)
        claimed: Dict[Const, bool] = {address: False for address in addresses}

        # ------------------------------------------------------------------
        # Phase 1: matching.  For every atom of Sigma', the forced sequence of
        # Sigma atoms whose realisation it must cover — walking next pointers,
        # checking prev backlinks and the demanded segment's last cell.
        # ------------------------------------------------------------------
        matches: List[Tuple[SpatialAtom, List[SpatialAtom]]] = []
        for demanded in sigma_neg:
            if demanded.is_trivial:
                continue
            if isinstance(demanded, DllCell):
                piece = addresses.get(demanded.source)
                if piece is None:
                    if demanded.source in backs:
                        return _stretch_failure(backs[demanded.source], demanded)
                    return mismatch(
                        "no cell at {} storing ({}, {})".format(
                            demanded.source, demanded.target, demanded.prev
                        )
                    )
                if claimed[piece.address]:
                    return mismatch("cell at {} needed twice".format(piece.address))
                if isinstance(piece, DllCell):
                    if piece.target != demanded.target or piece.prev != demanded.prev:
                        return mismatch(
                            "no cell at {} storing ({}, {})".format(
                                demanded.source, demanded.target, demanded.prev
                            )
                        )
                    claimed[piece.address] = True
                    matches.append((demanded, [piece]))
                    continue
                assert isinstance(piece, DllSegment)
                if piece.back != piece.source:
                    # A two-cell segment can always grow an interior cell, so a
                    # single-cell demand on its head never holds in all models.
                    return _stretch_failure(piece, demanded)
                # One-cell segment dlseg(x, px, y, x): exactly cell(x, y, px).
                if piece.target != demanded.target or piece.prev != demanded.prev:
                    return mismatch(
                        "no cell at {} storing ({}, {})".format(
                            demanded.source, demanded.target, demanded.prev
                        )
                    )
                claimed[piece.address] = True
                matches.append((demanded, [piece]))
                continue

            assert isinstance(demanded, DllSegment)
            if demanded.source == demanded.target:
                # Non-trivial with equal ends: the demanded segment must be
                # empty, which requires prev = back — false in the candidate
                # model, whose distinct constants denote distinct locations.
                return mismatch(
                    "the empty segment demanded by {} requires {} = {}".format(
                        demanded, demanded.prev, demanded.back
                    )
                )
            chain: List[SpatialAtom] = []
            current = demanded.source
            expected_prev = demanded.prev
            last_cell: Optional[Const] = None
            visited = {current}
            while current != demanded.target:
                piece = addresses.get(current)
                if piece is None:
                    if current in backs:
                        return _stretch_failure(backs[current], demanded)
                    return mismatch(
                        "the path demanded by {} dangles at {}".format(demanded, current)
                    )
                if claimed[piece.address]:
                    return mismatch(
                        "the path demanded by {} reuses the cell at {}".format(demanded, current)
                    )
                if isinstance(piece, DllCell):
                    if piece.prev != expected_prev:
                        return mismatch(
                            "the cell {} backlinks to {} but the path demanded by {} "
                            "expects prev {}".format(piece, piece.prev, demanded, expected_prev)
                        )
                    last_cell = piece.source
                    next_stop = piece.target
                else:
                    assert isinstance(piece, DllSegment)
                    if piece.prev != expected_prev:
                        return mismatch(
                            "the segment {} backlinks to {} but the path demanded by {} "
                            "expects prev {}".format(piece, piece.prev, demanded, expected_prev)
                        )
                    if piece.target != demanded.target and piece.back == demanded.target:
                        # The demanded segment would end on the piece's interior
                        # back cell — impossible in a stretched model.
                        return _stretch_failure(piece, demanded)
                    last_cell = piece.back
                    next_stop = piece.target
                claimed[piece.address] = True
                chain.append(piece)
                expected_prev = last_cell
                current = next_stop
                if current in visited and current != demanded.target:
                    return mismatch(
                        "the path demanded by {} runs into a cycle at {}".format(
                            demanded, current
                        )
                    )
                visited.add(current)
            if last_cell != demanded.back:
                return mismatch(
                    "the path demanded by {} ends with the cell {} but the segment's "
                    "last cell should be {}".format(demanded, last_cell, demanded.back)
                )
            matches.append((demanded, chain))

        uncovered = unclaimed_cells_mismatch(claimed)
        if uncovered is not None:
            return uncovered

        # ------------------------------------------------------------------
        # Phase 2: rewriting.  Replay the matching as U-rule applications on
        # the negative clause, accumulating side conditions in Delta'.
        # ------------------------------------------------------------------
        steps: List[UnfoldingStep] = []
        current_clause = negative

        for demanded, chain in matches:
            if isinstance(demanded, DllCell):
                (piece,) = chain
                if isinstance(piece, DllCell):
                    # Exact match with a cell atom: nothing to rewrite.
                    continue
                # U1 (cell form): fold the demanded cell into the one-cell
                # segment; sound unless the segment's ends coincide.
                current_clause, step = apply_rule(
                    current_clause,
                    positive,
                    "U1",
                    demanded,
                    [piece],
                    side_condition=EqAtom(piece.source, piece.target),
                    description="fold the cell {} into the one-cell segment {}".format(
                        demanded, piece
                    ),
                )
                steps.append(step)
                continue

            assert isinstance(demanded, DllSegment)
            remaining = demanded
            for index, piece in enumerate(chain):
                is_last = index == len(chain) - 1
                if is_last:
                    if isinstance(piece, DllSegment):
                        # The final piece is literally the remaining segment.
                        break
                    # U1: the final piece is the cell cell(x, y, px).
                    current_clause, step = apply_rule(
                        current_clause,
                        positive,
                        "U1",
                        remaining,
                        [piece],
                        side_condition=EqAtom(piece.source, demanded.target),
                        description="fold the final cell {} into {}".format(piece, remaining),
                    )
                    steps.append(step)
                    break

                if isinstance(piece, DllCell):
                    front, front_last = piece, piece.source
                    rule: str = "U2"
                    side: Optional[EqAtom] = EqAtom(piece.source, demanded.target)
                    description = "peel {} off {}".format(piece, remaining)
                elif piece.back == piece.source:
                    # U2 (segment form): a one-cell segment peels like a cell;
                    # its interior is exactly its head, escaped by x = y.
                    front, front_last = piece, piece.back
                    rule, side = "U2", EqAtom(piece.source, demanded.target)
                    description = "peel the one-cell segment {} off {}".format(piece, remaining)
                else:
                    # U3/U4/U5: split at a two-cell segment; the demanded end
                    # must be provably outside the piece.
                    front, front_last = piece, piece.back
                    target = demanded.target
                    if target.is_nil:
                        rule, side = "U3", None
                    else:
                        anchor = addresses.get(target)
                        if anchor is None and target in backs:
                            anchor = backs[target]
                        if anchor is None:
                            return UnfoldingOutcome(
                                success=False,
                                steps=steps,
                                failure_kind="dangling_segment",
                                failure_edge=(piece.source, piece.target),
                                failure_atom=piece,
                                failure_target=target,
                                failure_detail=(
                                    "{} must stop at {} but the left-hand side does not "
                                    "allocate {}".format(demanded, target, target)
                                ),
                            )
                        if isinstance(anchor, DllCell):
                            rule, side = "U4", None
                        else:
                            rule, side = "U5", EqAtom(anchor.source, anchor.target)
                    description = "split {} at {}".format(remaining, piece.target)

                peeled = DllSegment(
                    piece.target, front_last, demanded.target, demanded.back
                )
                current_clause, step = apply_rule(
                    current_clause,
                    positive,
                    rule,
                    remaining,
                    [front, peeled],
                    side_condition=side,
                    description=description,
                )
                steps.append(step)
                remaining = peeled

        # Phase 3: spatial resolution (shared across theories).
        return resolve_spatial(positive, current_clause, steps)

    # -- candidate model -----------------------------------------------------
    def model_heap_cells(
        self, locate: Callable[[Const], Loc], positive: Clause
    ) -> Dict[Loc, object]:
        sigma = positive.spatial
        assert sigma is not None
        cells: Dict[Loc, Tuple[Loc, Loc]] = {}

        def store(address: Loc, value: Tuple[Loc, Loc], atom: SpatialAtom) -> None:
            if address == NIL_LOC:
                raise ValueError("atom {} allocates the nil location".format(atom))
            if address in cells:
                raise ValueError(
                    "two atoms allocate the location {} — the formula is not "
                    "well-formed".format(address)
                )
            cells[address] = value

        for atom in sigma:
            if atom.is_trivial:
                continue
            if isinstance(atom, DllCell):
                store(locate(atom.source), (locate(atom.target), locate(atom.prev)), atom)
                continue
            assert isinstance(atom, DllSegment)
            head, prev = locate(atom.source), locate(atom.prev)
            end, back = locate(atom.target), locate(atom.back)
            if back == head:
                store(head, (end, prev), atom)
            else:
                store(head, (back, prev), atom)
                store(back, (end, head), atom)
        return cells

    # -- exact satisfaction ---------------------------------------------------
    def satisfies_spatial(self, stack: Stack, heap: Heap, sigma: SpatialFormula) -> bool:
        claimed: Set[Loc] = set()

        for atom in sigma:
            if isinstance(atom, DllCell):
                source = stack.evaluate(atom.source)
                if source == NIL_LOC:
                    return False
                if heap.lookup(source) != (
                    stack.evaluate(atom.target),
                    stack.evaluate(atom.prev),
                ):
                    return False
                if source in claimed:
                    return False
                claimed.add(source)
                continue

            assert isinstance(atom, DllSegment)
            source = stack.evaluate(atom.source)
            prev = stack.evaluate(atom.prev)
            target = stack.evaluate(atom.target)
            back = stack.evaluate(atom.back)
            if source == target:
                if prev != back:
                    return False
                continue  # the empty segment owns no cells
            current = source
            expected_prev = prev
            last: Optional[Loc] = None
            visited: Set[Loc] = set()
            while current != target:
                if current == NIL_LOC:
                    return False
                if current in visited:
                    return False  # a cycle that never reaches the target
                visited.add(current)
                value = heap.lookup(current)
                if not isinstance(value, tuple) or len(value) != 2:
                    return False
                next_loc, prev_loc = value
                if prev_loc != expected_prev:
                    return False
                if current in claimed:
                    return False
                claimed.add(current)
                last = current
                expected_prev = current
                current = next_loc
            if last != back:
                return False

        return claimed == heap.domain()

    # -- counterexample tweaks -------------------------------------------------
    def counterexample_candidates(
        self,
        locate: Callable[[Const], Loc],
        base_cells: Dict[Loc, object],
        outcome: Optional[UnfoldingOutcome],
    ) -> List[Tuple[Dict[Loc, object], str]]:
        candidates: List[Tuple[Dict[Loc, object], str]] = []
        if outcome is None or not isinstance(outcome.failure_atom, DllSegment):
            return candidates
        segment = outcome.failure_atom
        head, prev = locate(segment.source), locate(segment.prev)
        end, back = locate(segment.target), locate(segment.back)

        def used_locations() -> List[Loc]:
            used: List[Loc] = list(base_cells) + [NIL_LOC]
            for value in base_cells.values():
                used.extend(value if isinstance(value, tuple) else [value])
            return used

        if outcome.failure_kind == "next_expects_cell" and back != head:
            middle = fresh_location(used_locations())
            stretched = dict(base_cells)
            stretched[head] = (middle, prev)
            stretched[middle] = (back, head)
            stretched[back] = (end, middle)
            candidates.append(
                (
                    stretched,
                    "the segment {} stretched through a fresh cell".format(segment),
                )
            )

        if outcome.failure_kind == "dangling_segment" and back != head:
            assert outcome.failure_target is not None
            via = locate(outcome.failure_target)
            rerouted = dict(base_cells)
            rerouted[head] = (via, prev)
            rerouted[via] = (back, head)
            rerouted[back] = (end, via)
            candidates.append(
                (
                    rerouted,
                    "the segment {} re-routed through {}".format(
                        segment, outcome.failure_target
                    ),
                )
            )

        return candidates

    # -- generator hooks -------------------------------------------------------
    def frame_atom(self, source: Const, pool: List[Const], rng: random.Random) -> SpatialAtom:
        target = rng.choice(pool + [NIL]) if pool else NIL
        prev = rng.choice(pool + [NIL]) if pool else NIL
        return DllCell(source, target, prev)

    def empty_segment_atom(
        self, anchor: Const, pool: List[Const], rng: random.Random
    ) -> SpatialAtom:
        prev = rng.choice(pool + [NIL]) if pool else NIL
        return DllSegment(anchor, prev, anchor, prev)


#: The registered singleton.
THEORY = register_theory(DoublyLinkedTheory())
