"""SLP: a separation-logic entailment prover built on superposition.

This package is a from-scratch Python reproduction of

    Juan Antonio Navarro Pérez and Andrey Rybalchenko,
    "Separation Logic + Superposition Calculus = Heap Theorem Prover",
    PLDI 2011.

The public API is intentionally small.  The central entry points are:

``prove(entailment)``
    Run the SLP algorithm (Figure 3 of the paper) and return a
    :class:`~repro.core.result.ProofResult` that is either *valid*, carrying a
    proof object, or *invalid*, carrying a stack/heap counterexample.

``parse_entailment(text)``
    Parse an entailment written in the textual surface syntax, e.g.
    ``"x != y /\\ lseg(x, y) |- next(x, z) * lseg(z, y)"``.

``Entailment`` and the atom constructors ``eq``, ``neq``, ``pts`` (``next``),
``lseg``, ``dcell`` (``cell``) and ``dlseg``
    Build entailments programmatically.

Sub-packages
------------

``repro.logic``
    Syntax of the fragment: constants, pure and spatial atoms, formulas,
    clauses, the clausal embedding ``cnf`` and term orderings.
``repro.superposition``
    The ground superposition calculus *I*, saturation and model generation.
``repro.spatial``
    The spatial inference rules of the *SI* proof system, organised around
    the pluggable ``SpatialTheory`` layer (``repro.spatial.theory``): the
    builtin singly-linked ``next``/``lseg`` fragment plus the doubly-linked
    ``cell``/``dlseg`` family.  See ARCHITECTURE.md.
``repro.core``
    The ``prove`` algorithm, proofs and results.
``repro.semantics``
    Stack/heap models, the satisfaction relation and a bounded enumeration
    oracle used for testing.
``repro.baselines``
    Reimplementations of the two baseline provers used in the paper's
    evaluation (a Smallfoot-style complete prover with backtracking search and
    a jStar-style incomplete rewriting prover).
``repro.frontend``
    A small heap-manipulating programming language, a separation-logic
    symbolic executor that generates verification conditions, and the suite of
    example programs used for the Table 3 benchmark.
``repro.benchgen``
    Random entailment generators for the paper's synthetic benchmarks.
"""

from repro.core.prover import Prover, prove
from repro.core.config import ProverConfig
from repro.core.result import ProofResult, Verdict
from repro.logic.atoms import (
    DllCell,
    DllSegment,
    EqAtom,
    ListSegment,
    PointsTo,
    SpatialFormula,
    emp,
)
from repro.logic.formula import (
    Entailment,
    PureLiteral,
    const,
    consts,
    dcell,
    dlseg,
    eq,
    lseg,
    neq,
    nil,
    pts,
)
from repro.logic.parser import parse_entailment, parse_spatial_formula

__version__ = "1.0.0"

__all__ = [
    "Prover",
    "ProverConfig",
    "ProofResult",
    "Verdict",
    "prove",
    "parse_entailment",
    "parse_spatial_formula",
    "Entailment",
    "PureLiteral",
    "EqAtom",
    "PointsTo",
    "ListSegment",
    "DllCell",
    "DllSegment",
    "SpatialFormula",
    "emp",
    "const",
    "consts",
    "nil",
    "eq",
    "neq",
    "pts",
    "lseg",
    "dcell",
    "dlseg",
    "__version__",
]
