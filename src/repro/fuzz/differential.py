"""The differential fuzzing campaign driver.

One campaign iteration manufactures an entailment (the **original**), usually
derives a **mutant** from it with a random metamorphic transform, and pushes
both through the production proving stack — :class:`~repro.core.batch.BatchProver`
with the proof cache enabled, so every campaign also exercises the worker
pool, alpha-equivalence fingerprinting and in-batch deduplication of PR 2.
The primary verdicts are then cross-checked two ways:

* **differentially** — every instance is re-checked by each oracle in the
  battery (bounded enumeration, the reference configuration, optionally the
  baselines); any decided-and-different pair of verdicts is a finding;
* **metamorphically** — the (original, mutant) verdict pair is checked
  against the transform's :class:`~repro.fuzz.metamorphic.VerdictRelation`;
  a violated relation is a finding even when every verdict source agrees,
  because it needs no oracle at all.

Findings are delta-debugged to minimal reproducers
(:mod:`repro.fuzz.shrinker`) and optionally written to a regression corpus
(:mod:`repro.fuzz.corpus`).  Oracle crashes are findings too — a prover that
trips its own counterexample verification has been caught, not crashed the
campaign.

Everything is deterministic in ``(seed, iterations, profile)``: instance
``i`` and its mutation draws come from per-index seeded generators, so a
campaign can be replayed, extended, or bisected without re-running earlier
indices.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.batch import BatchProver
from repro.core.cache import PersistentProofCache
from repro.core.config import ProverConfig
from repro.core.faults import FaultPlan
from repro.core.result import ProofResult
from repro.core.store import RunJournal
from repro.fuzz.corpus import save_reproducer
from repro.fuzz.generator import EntailmentGenerator, FuzzCase, GeneratorProfile
from repro.fuzz.metamorphic import Transform, applicable_transforms
from repro.fuzz.oracles import (
    EnumerationOracle,
    Oracle,
    ProverOracle,
    default_oracles,
)
from repro.fuzz.shrinker import ShrinkResult, shrink
from repro.logic.canonical import TooSymmetricError, canonicalize
from repro.logic.formula import Entailment

__all__ = ["Disagreement", "FuzzReport", "run_campaign"]


#: Verdict rendering shared by the report and the CLI.
def _verdict_str(answer: Optional[bool]) -> str:
    if answer is None:
        return "undecided"
    return "valid" if answer else "invalid"


@dataclass
class Disagreement:
    """One finding: differential split, metamorphic violation, or crash."""

    kind: str  # "differential" | "metamorphic" | "crash"
    index: int
    strategy: str
    entailment: Entailment
    verdicts: Dict[str, str] = field(default_factory=dict)
    transform: Optional[str] = None
    detail: str = ""
    shrunk: Optional[Entailment] = None
    shrunk_conjuncts: Optional[int] = None
    expected_valid: Optional[bool] = None
    corpus_path: Optional[str] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "index": self.index,
            "strategy": self.strategy,
            "entailment": str(self.entailment),
            "verdicts": dict(sorted(self.verdicts.items())),
            "transform": self.transform,
            "detail": self.detail,
            "shrunk": None if self.shrunk is None else str(self.shrunk),
            "shrunk_conjuncts": self.shrunk_conjuncts,
            "expected": None
            if self.expected_valid is None
            else _verdict_str(self.expected_valid),
            "corpus_path": self.corpus_path,
        }


@dataclass
class FuzzReport:
    """Aggregated outcome of one campaign."""

    seed: int
    iterations: int
    instances_checked: int = 0
    valid: int = 0
    invalid: int = 0
    undecided: int = 0
    mutants: int = 0
    per_strategy: Dict[str, int] = field(default_factory=dict)
    per_transform: Dict[str, int] = field(default_factory=dict)
    oracle_checks: Dict[str, int] = field(default_factory=dict)
    oracle_decided: Dict[str, int] = field(default_factory=dict)
    metamorphic_pairs_checked: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    jobs: int = 1
    retried: int = 0
    respawned_workers: int = 0
    injected_faults: int = 0
    quarantined: int = 0
    disagreements: List[Disagreement] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def clean(self) -> bool:
        """True when the campaign produced no findings."""
        return not self.disagreements

    def to_json(self, include_timing: bool = True) -> Dict[str, object]:
        """A JSON-ready summary.  ``include_timing=False`` gives the
        deterministic projection (used by the determinism tests)."""
        payload: Dict[str, object] = {
            "seed": self.seed,
            "iterations": self.iterations,
            "instances_checked": self.instances_checked,
            "verdicts": {
                "valid": self.valid,
                "invalid": self.invalid,
                "undecided": self.undecided,
            },
            "mutants": self.mutants,
            "per_strategy": dict(sorted(self.per_strategy.items())),
            "per_transform": dict(sorted(self.per_transform.items())),
            "oracle_checks": dict(sorted(self.oracle_checks.items())),
            "oracle_decided": dict(sorted(self.oracle_decided.items())),
            "metamorphic_pairs_checked": self.metamorphic_pairs_checked,
            "cache_hits": self.cache_hits,
            "deduplicated": self.deduplicated,
            "disagreements": [finding.to_json() for finding in self.disagreements],
        }
        if include_timing:
            payload["jobs"] = self.jobs
            payload["elapsed_seconds"] = round(self.elapsed_seconds, 3)
            payload["supervision"] = {
                "retried": self.retried,
                "respawned_workers": self.respawned_workers,
                "injected_faults": self.injected_faults,
                "quarantined": self.quarantined,
            }
        return payload

    def summary_lines(self) -> List[str]:
        """The human-readable campaign summary the CLI prints."""
        lines = [
            "fuzz campaign: seed={} iterations={} jobs={}".format(
                self.seed, self.iterations, self.jobs
            ),
            "checked {} entailments ({} mutants): {} valid, {} invalid, {} undecided".format(
                self.instances_checked, self.mutants, self.valid, self.invalid, self.undecided
            ),
            "strategies: "
            + ", ".join(
                "{}={}".format(name, count)
                for name, count in sorted(self.per_strategy.items())
            ),
            "oracles: "
            + ", ".join(
                "{}={}/{}".format(name, self.oracle_decided.get(name, 0), count)
                for name, count in sorted(self.oracle_checks.items())
            ),
            "metamorphic pairs checked: {}".format(self.metamorphic_pairs_checked),
            "batch engine: {} cache hits, {} deduplicated".format(
                self.cache_hits, self.deduplicated
            ),
            "elapsed: {:.2f}s".format(self.elapsed_seconds),
        ]
        if self.injected_faults or self.retried or self.respawned_workers:
            lines.insert(
                -1,
                "supervision: {} faults injected, {} retries, {} workers respawned,"
                " {} quarantined".format(
                    self.injected_faults,
                    self.retried,
                    self.respawned_workers,
                    self.quarantined,
                ),
            )
        if self.clean:
            lines.append("no disagreements found")
        else:
            lines.append("{} DISAGREEMENT(S):".format(len(self.disagreements)))
            for finding in self.disagreements:
                lines.append(
                    "  [{}] #{} {}: {}".format(
                        finding.kind, finding.index, finding.strategy, finding.entailment
                    )
                )
                if finding.verdicts:
                    lines.append(
                        "      verdicts: "
                        + ", ".join(
                            "{}={}".format(k, v) for k, v in sorted(finding.verdicts.items())
                        )
                    )
                if finding.detail:
                    lines.append("      {}".format(finding.detail))
                if finding.shrunk is not None:
                    lines.append(
                        "      shrunk ({} conjuncts): {}".format(
                            finding.shrunk_conjuncts, finding.shrunk
                        )
                    )
                if finding.corpus_path:
                    lines.append("      reproducer: {}".format(finding.corpus_path))
        return lines


@dataclass(frozen=True)
class _WorkItem:
    """One entailment headed for the batch: an original or a mutant."""

    case: FuzzCase
    entailment: Entailment
    is_mutant: bool
    transform: Optional[Transform] = None
    original_slot: Optional[int] = None  # batch slot of the original (mutants only)


def _mutation_rng(seed: int, index: int) -> random.Random:
    return random.Random("slp-fuzz-mut:{}:{}".format(seed, index))


def _plan(
    seed: int,
    iterations: int,
    profile: Optional[GeneratorProfile],
    p_transform: float,
) -> List[_WorkItem]:
    """Generate the campaign's work list: originals plus derived mutants."""
    generator = EntailmentGenerator(seed=seed, profile=profile)
    items: List[_WorkItem] = []
    for case in generator.cases(iterations):
        slot = len(items)
        items.append(_WorkItem(case=case, entailment=case.entailment, is_mutant=False))
        rng = _mutation_rng(seed, case.index)
        if rng.random() >= p_transform:
            continue
        candidates = applicable_transforms(case.entailment)
        if not candidates:
            continue
        transform = rng.choice(list(candidates))
        mutant = transform.apply(case.entailment, rng)
        if mutant is None:
            continue
        items.append(
            _WorkItem(
                case=case,
                entailment=mutant,
                is_mutant=True,
                transform=transform,
                original_slot=slot,
            )
        )
    return items


def _prove_batch(
    items: Sequence[_WorkItem],
    config: ProverConfig,
    jobs: int,
    report: FuzzReport,
    primary_oracle: Optional[Oracle] = None,
    fault_plan: Optional[FaultPlan] = None,
    retries: int = 2,
) -> List[Optional[bool]]:
    """Primary verdicts through the batch engine, one structured outcome per task.

    The supervised pool turns worker failures into per-task
    :class:`~repro.core.supervisor.FailureInfo` outcomes — a crashing
    instance is retried, then quarantined, and reported as a ``crash``
    finding without taking the campaign (or the other instances of its
    chunk, as the old whole-batch rerun did) down with it.  Budget
    exhaustion (``timeout``/``oom``) counts as undecided, not a finding;
    failures the campaign injected itself (chaos mode) are bookkept but
    never reported as prover bugs.  Tests may inject a ``primary_oracle``
    (e.g. a deliberately broken prover for mutation-testing the detectors),
    which takes a guarded sequential path instead.
    """
    if primary_oracle is not None:
        verdicts: List[Optional[bool]] = []
        for item in items:
            try:
                verdicts.append(primary_oracle.check(item.entailment))
            except Exception as error:  # noqa: BLE001
                verdicts.append(None)
                report.disagreements.append(
                    Disagreement(
                        kind="crash",
                        index=item.case.index,
                        strategy=item.case.strategy,
                        entailment=item.entailment,
                        transform=item.transform.name if item.transform else None,
                        detail="prover raised {}: {}".format(type(error).__name__, error),
                    )
                )
        return verdicts

    entailments = [item.entailment for item in items]
    # Injection disturbs per-index execution; the cache would short-circuit
    # targeted indices (hiding the fault) and echo leaders into followers,
    # so chaos campaigns run uncached.
    with BatchProver(
        config,
        jobs=jobs,
        cache=fault_plan is None,
        fault_plan=fault_plan,
        retries=retries,
    ) as batch:
        results = batch.prove_all(entailments)
        statistics = batch.statistics
    report.cache_hits = statistics.cache_hits
    report.deduplicated = statistics.deduplicated
    report.retried = statistics.retried
    report.respawned_workers = statistics.respawned_workers
    report.injected_faults = statistics.injected_faults
    report.quarantined = statistics.quarantined
    verdicts = []
    for item, outcome in zip(items, results):
        if isinstance(outcome, ProofResult):
            verdicts.append(outcome.is_valid)
            continue
        verdicts.append(None)
        if outcome.injected:
            continue  # the campaign disturbed this index itself
        if outcome.kind in ("timeout", "oom"):
            continue  # undecided within budget — honest, not a bug
        report.disagreements.append(
            Disagreement(
                kind="crash",
                index=item.case.index,
                strategy=item.case.strategy,
                entailment=item.entailment,
                transform=item.transform.name if item.transform else None,
                detail="prover task failed: {}".format(outcome.summary()),
            )
        )
    return verdicts


def _profile_digest(profile: Optional[GeneratorProfile]) -> Optional[str]:
    """A stable fingerprint of the generator profile for journal metadata."""
    if profile is None:
        return None
    knobs = (
        profile.min_variables,
        profile.max_variables,
        profile.max_spatial,
        profile.max_pure,
        profile.p_next,
        tuple(sorted(profile.weights.items())),
    )
    return hashlib.sha256(repr(knobs).encode("utf-8")).hexdigest()[:16]


def _config_digest(config: ProverConfig) -> str:
    """A stable fingerprint of the prover configuration (frozen dataclass)."""
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:16]


def _reconstruct_batch_counters(
    items: Sequence[_WorkItem],
    verdicts: Sequence[Optional[bool]],
    report: FuzzReport,
) -> None:
    """Deterministic ``cache_hits``/``deduplicated`` for checkpointed runs.

    A resumed campaign proves only the pending tail, so the live batch
    engine's counters describe the *remainder*, not the campaign — and the
    resumed run's persistent store serves disk hits a fresh run would not
    see.  The deterministic report projection must be bit-identical either
    way, so both are reconstructed structurally:

    * every campaign starts with an empty cache and looks all slots up
      before executing any, so an uninterrupted run's ``cache_hits`` is 0;
    * ``deduplicated`` counts alpha-equivalent followers of a leader that
      reached a verdict (followers of a timed-out leader are echoed
      failures, not deduplications; followers of a crashed leader are
      re-dispatched on their own merits).
    """
    report.cache_hits = 0
    leader_verdict: Dict[tuple, Optional[bool]] = {}
    deduplicated = 0
    for slot, item in enumerate(items):
        try:
            key = canonicalize(item.entailment).key
        except TooSymmetricError:
            continue
        if key in leader_verdict:
            if leader_verdict[key] is not None:
                deduplicated += 1
        else:
            leader_verdict[key] = verdicts[slot]
    report.deduplicated = deduplicated


def _prove_batch_journaled(
    items: Sequence[_WorkItem],
    config: ProverConfig,
    jobs: int,
    report: FuzzReport,
    retries: int,
    run_dir: str,
    journal: RunJournal,
    restored: Dict[int, Dict[str, object]],
) -> List[Optional[bool]]:
    """The checkpointed twin of :func:`_prove_batch`.

    Restored slots keep their journaled verdicts; pending slots stream
    through the batch engine (backed by the run directory's persistent proof
    store) and are journaled *as they complete* — a SIGKILL loses only
    in-flight instances.  Crash findings are re-created from the journal for
    restored slots and emitted in slot order either way, matching the
    uninterrupted driver.
    """
    verdicts: List[Optional[bool]] = [None] * len(items)
    crash_details: Dict[int, str] = {}
    for slot, record in restored.items():
        if not 0 <= slot < len(items):
            continue
        value = record.get("v")
        verdicts[slot] = value if isinstance(value, bool) else None
        detail = record.get("crash")
        if isinstance(detail, str):
            crash_details[slot] = detail
    pending = [slot for slot in range(len(items)) if slot not in restored]
    cache = PersistentProofCache(os.path.join(run_dir, "proofs.slp"))
    try:
        with BatchProver(config, jobs=jobs, cache=cache, retries=retries) as batch:
            for position, outcome in batch.iter_results(
                [items[slot].entailment for slot in pending]
            ):
                slot = pending[position]
                record: Dict[str, object] = {"t": "primary", "s": slot}
                if isinstance(outcome, ProofResult):
                    verdicts[slot] = outcome.is_valid
                    record["v"] = outcome.is_valid
                else:
                    record["v"] = None
                    if not outcome.injected and outcome.kind not in ("timeout", "oom"):
                        detail = "prover task failed: {}".format(outcome.summary())
                        crash_details[slot] = detail
                        record["crash"] = detail
                try:
                    journal.append(record)
                except OSError:
                    pass  # checkpointing is resilience, not a reason to fail
            statistics = batch.statistics
    finally:
        cache.close()
    report.retried = statistics.retried
    report.respawned_workers = statistics.respawned_workers
    report.injected_faults = statistics.injected_faults
    report.quarantined = statistics.quarantined
    for slot in sorted(crash_details):
        item = items[slot]
        report.disagreements.append(
            Disagreement(
                kind="crash",
                index=item.case.index,
                strategy=item.case.strategy,
                entailment=item.entailment,
                transform=item.transform.name if item.transform else None,
                detail=crash_details[slot],
            )
        )
    _reconstruct_batch_counters(items, verdicts, report)
    return verdicts


def _ground_truth(
    oracles: Sequence[Oracle], verdicts: Dict[str, Optional[bool]]
) -> Optional[bool]:
    """Best-available expected verdict among ``verdicts``, by oracle trust order."""
    for oracle in oracles:  # default_oracles orders by trust
        answer = verdicts.get(oracle.name)
        if answer is not None:
            return answer
    return None


def _disagreement_predicate(primary: Oracle, other: Oracle):
    """The shrinking predicate: both sources decide, and they still differ."""

    def predicate(entailment: Entailment) -> bool:
        try:
            ours = primary.check(entailment)
            theirs = other.check(entailment)
        except Exception:  # noqa: BLE001 - still-crashing candidates stay interesting
            return True
        return ours is not None and theirs is not None and ours != theirs

    return predicate


def run_campaign(
    seed: int = 0,
    iterations: int = 200,
    jobs: int = 1,
    profile: Optional[GeneratorProfile] = None,
    oracles: Optional[Sequence[Oracle]] = None,
    include_baselines: bool = False,
    max_enum_variables: int = 3,
    p_transform: float = 0.6,
    timeout: Optional[float] = None,
    shrink_findings: bool = True,
    corpus_dir: Optional[str] = None,
    config: Optional[ProverConfig] = None,
    primary_oracle: Optional[Oracle] = None,
    fault_plan: Optional[FaultPlan] = None,
    retries: int = 2,
    run_dir: Optional[str] = None,
    resume: bool = False,
) -> FuzzReport:
    """Run one differential fuzzing campaign and return its report.

    Parameters mirror the ``repro fuzz`` CLI.  ``oracles`` overrides the
    default battery (tests inject buggy oracles this way); ``primary_oracle``
    replaces the batch-engine primary entirely (mutation-testing the
    metamorphic detector needs a lying primary); when ``corpus_dir`` is
    given, every shrunk finding is written there as a ``.ent`` reproducer.

    Chaos mode: ``fault_plan`` injects deterministic worker faults into the
    primary batch (kills, hangs, allocation bombs — see
    :mod:`repro.core.faults`).  The campaign itself must survive: injected
    failures count as undecided, never as findings, and ``retries`` controls
    how often a crashed instance is re-dispatched before quarantine.

    Checkpointing: with ``run_dir``, the campaign journals every completed
    unit of work (primary verdicts as the batch streams them, oracle answers
    per slot) and backs the proof cache with a persistent store in that
    directory.  After a crash or SIGKILL, the same invocation with
    ``resume=True`` skips the journaled work and produces a report whose
    deterministic projection (:meth:`FuzzReport.to_json` without timing) is
    bit-identical to an uninterrupted run.  Checkpointing composes with
    neither chaos mode nor an injected ``primary_oracle`` (both exist to
    disturb execution, which is exactly what a replayed journal must not
    preserve).
    """
    start = time.perf_counter()
    prover_config = (
        config if config is not None else ProverConfig(record_proof=False)
    ).with_timeout(timeout)
    battery: Sequence[Oracle] = (
        oracles
        if oracles is not None
        else default_oracles(
            max_enum_variables=max_enum_variables,
            include_baselines=include_baselines,
            max_seconds=timeout,
        )
    )

    journal: Optional[RunJournal] = None
    restored_primary: Dict[int, Dict[str, object]] = {}
    restored_oracles: Dict[int, Dict[str, object]] = {}
    if run_dir is not None:
        if fault_plan is not None or primary_oracle is not None:
            raise ValueError(
                "checkpointing (run_dir) does not compose with fault injection"
                " or an injected primary oracle"
            )
        os.makedirs(run_dir, exist_ok=True)
        meta = {
            "kind": "slp-fuzz",
            "seed": seed,
            "iterations": iterations,
            "profile": _profile_digest(profile),
            "p_transform": p_transform,
            "timeout": timeout,
            "include_baselines": include_baselines,
            "max_enum_variables": max_enum_variables,
            "oracles": sorted(oracle.name for oracle in battery),
            "config": _config_digest(prover_config),
        }
        journal, completed = RunJournal.open_run(
            os.path.join(run_dir, "journal.slp"), meta, resume=resume
        )
        for record in completed:
            slot = record.get("s")
            if not isinstance(slot, int):
                continue
            if record.get("t") == "primary":
                restored_primary[slot] = record
            elif record.get("t") == "oracles":
                restored_oracles[slot] = record
    elif resume:
        raise ValueError("resume needs a run_dir to resume from")

    try:
        report = FuzzReport(seed=seed, iterations=iterations, jobs=jobs)
        items = _plan(seed, iterations, profile, p_transform)
        if journal is not None:
            primary = _prove_batch_journaled(
                items,
                prover_config,
                jobs,
                report,
                retries,
                run_dir,
                journal,
                restored_primary,
            )
        else:
            primary = _prove_batch(
                items,
                prover_config,
                jobs,
                report,
                primary_oracle,
                fault_plan=fault_plan,
                retries=retries,
            )

        # --------------------------------------------------------------
        # Differential pass: every instance against every oracle.  Oracle
        # answers (and crashes) are collected first — from the journal for
        # restored slots, by running the battery otherwise — and then
        # accounted uniformly in battery order, so a resumed campaign
        # produces findings in exactly the order an uninterrupted one does.
        # --------------------------------------------------------------
        oracle_verdicts: List[Dict[str, Optional[bool]]] = []
        for slot, item in enumerate(items):
            report.instances_checked += 1
            report.per_strategy[item.case.strategy] = (
                report.per_strategy.get(item.case.strategy, 0) + 1
            )
            if item.is_mutant:
                report.mutants += 1
                assert item.transform is not None
                report.per_transform[item.transform.name] = (
                    report.per_transform.get(item.transform.name, 0) + 1
                )
            verdict = primary[slot]
            if verdict is None:
                report.undecided += 1
            elif verdict:
                report.valid += 1
            else:
                report.invalid += 1

            answers: Dict[str, Optional[bool]] = {"slp": verdict}
            crashes: Dict[str, str] = {}
            restored = restored_oracles.get(slot)
            if restored is not None:
                stored = restored.get("a")
                stored = stored if isinstance(stored, dict) else {}
                for oracle in battery:
                    raw = stored.get(oracle.name)
                    answers[oracle.name] = raw if isinstance(raw, bool) else None
                for crash in restored.get("crashes") or ():
                    if (
                        isinstance(crash, dict)
                        and isinstance(crash.get("o"), str)
                        and isinstance(crash.get("detail"), str)
                    ):
                        crashes[crash["o"]] = crash["detail"]
            else:
                for oracle in battery:
                    try:
                        answers[oracle.name] = oracle.check(item.entailment)
                    except Exception as error:  # noqa: BLE001 - crash is a finding
                        answers[oracle.name] = None
                        crashes[oracle.name] = "oracle {} raised {}: {}".format(
                            oracle.name, type(error).__name__, error
                        )
                if journal is not None:
                    record: Dict[str, object] = {
                        "t": "oracles",
                        "s": slot,
                        "a": {oracle.name: answers[oracle.name] for oracle in battery},
                    }
                    if crashes:
                        record["crashes"] = [
                            {"o": name, "detail": detail}
                            for name, detail in crashes.items()
                        ]
                    try:
                        journal.append(record)
                    except OSError:
                        pass

            for oracle in battery:
                report.oracle_checks[oracle.name] = (
                    report.oracle_checks.get(oracle.name, 0) + 1
                )
                if oracle.name in crashes:
                    report.disagreements.append(
                        Disagreement(
                            kind="crash",
                            index=item.case.index,
                            strategy=item.case.strategy,
                            entailment=item.entailment,
                            transform=item.transform.name if item.transform else None,
                            detail=crashes[oracle.name],
                        )
                    )
                    continue
                answer = answers[oracle.name]
                if answer is not None:
                    report.oracle_decided[oracle.name] = (
                        report.oracle_decided.get(oracle.name, 0) + 1
                    )
                if answer is not None and verdict is not None and answer != verdict:
                    report.disagreements.append(
                        Disagreement(
                            kind="differential",
                            index=item.case.index,
                            strategy=item.case.strategy,
                            entailment=item.entailment,
                            transform=item.transform.name if item.transform else None,
                            verdicts={
                                "slp": _verdict_str(verdict),
                                oracle.name: _verdict_str(answer),
                            },
                            detail="slp and {} split on the same instance".format(
                                oracle.name
                            ),
                        )
                    )
            oracle_verdicts.append(answers)

        # ------------------------------------------------------------------
        # Metamorphic pass: verdict pairs against the transform relations.
        # ------------------------------------------------------------------
        for slot, item in enumerate(items):
            if not item.is_mutant:
                continue
            assert item.transform is not None and item.original_slot is not None
            original_verdict = primary[item.original_slot]
            mutant_verdict = primary[slot]
            if original_verdict is None or mutant_verdict is None:
                continue
            report.metamorphic_pairs_checked += 1
            expected = item.transform.relation.expected(original_verdict)
            if expected is None or mutant_verdict == expected:
                continue
            report.disagreements.append(
                Disagreement(
                    kind="metamorphic",
                    index=item.case.index,
                    strategy=item.case.strategy,
                    entailment=item.entailment,
                    transform=item.transform.name,
                    verdicts={
                        "original": _verdict_str(original_verdict),
                        "mutant": _verdict_str(mutant_verdict),
                    },
                    detail=(
                        "transform {} [{}] expected the mutant to be {}; original: {}".format(
                            item.transform.name,
                            item.transform.relation,
                            _verdict_str(expected),
                            items[item.original_slot].entailment,
                        )
                    ),
                )
            )

        # ------------------------------------------------------------------
        # Shrink the findings and (optionally) bank reproducers.
        # ------------------------------------------------------------------
        if shrink_findings and report.disagreements:
            shrink_prover: Oracle = (
                primary_oracle if primary_oracle is not None else ProverOracle(prover_config)
            )
            by_name = {oracle.name: oracle for oracle in battery}
            # A systematic bug yields the same instance disagreeing with several
            # oracles (and many instances disagreeing the same way): shrink each
            # distinct entailment once, share the result, and bound the total
            # predicate evaluations so a finding avalanche cannot stall the
            # campaign before the report is written.
            shrunk_cache: Dict[Entailment, Optional[ShrinkResult]] = {}
            banked: Dict[Entailment, str] = {}  # shrunk entailment -> corpus path
            shrink_budget = 20_000
            for finding in report.disagreements:
                other: Optional[Oracle] = None
                if finding.kind == "differential":
                    disagreeing = [name for name in finding.verdicts if name != "slp"]
                    if disagreeing:
                        other = by_name.get(disagreeing[0])
                elif finding.kind == "metamorphic":
                    # Reduce to a differential shrink when any oracle also splits
                    # from the primary verdict on this mutant; otherwise the pair
                    # stays unshrunk (the relation needs both endpoints).
                    slot_answers = next(
                        (
                            answers
                            for it, answers in zip(items, oracle_verdicts)
                            if it.entailment == finding.entailment
                        ),
                        {},
                    )
                    ours = slot_answers.get("slp")
                    for oracle in battery:
                        answer = slot_answers.get(oracle.name)
                        if answer is not None and ours is not None and answer != ours:
                            other = oracle
                            break
                if other is None:
                    continue
                if finding.entailment in shrunk_cache:
                    result = shrunk_cache[finding.entailment]
                    if result is None:
                        continue
                elif shrink_budget <= 0:
                    continue
                else:
                    predicate = _disagreement_predicate(shrink_prover, other)
                    try:
                        result = shrink(
                            finding.entailment, predicate, max_candidates=min(shrink_budget, 2000)
                        )
                    except ValueError:
                        shrunk_cache[finding.entailment] = None
                        continue  # the disagreement did not reproduce standalone
                    shrink_budget -= result.candidates_tried
                    shrunk_cache[finding.entailment] = result
                finding.shrunk = result.entailment
                finding.shrunk_conjuncts = result.conjuncts
                truth_answers = {other.name: None}
                try:
                    truth_answers[other.name] = other.check(result.entailment)
                except Exception:  # noqa: BLE001
                    pass
                enum_oracle = next(
                    (o for o in battery if isinstance(o, EnumerationOracle)), None
                )
                if enum_oracle is not None and other is not enum_oracle:
                    try:
                        truth_answers[enum_oracle.name] = enum_oracle.check(result.entailment)
                    except Exception:  # noqa: BLE001
                        pass
                finding.expected_valid = _ground_truth(battery, truth_answers)
                if corpus_dir is not None and finding.expected_valid is not None:
                    if result.entailment in banked:
                        finding.corpus_path = banked[result.entailment]
                    else:
                        finding.corpus_path = save_reproducer(
                            corpus_dir,
                            result.entailment,
                            finding.expected_valid,
                            note=(
                                "shrunk from seed {} index {} ({}, {} finding vs {})".format(
                                    seed, finding.index, finding.strategy, finding.kind, other.name
                                )
                            ),
                        )
                        banked[result.entailment] = finding.corpus_path

        report.elapsed_seconds = time.perf_counter() - start
        return report
    finally:
        if journal is not None:
            journal.close()
