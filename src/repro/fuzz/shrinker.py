"""Delta-debugging of disagreeing entailments down to minimal reproducers.

Given an entailment on which some *interesting* property holds (in practice:
"these two verdict sources still disagree"), the shrinker greedily searches
for a structurally smaller entailment with the same property, alternating two
families of reduction steps until a fixpoint:

* **conjunct deletion** — drop one pure literal or one spatial atom from
  either side (the classic ddmin granule, applied one conjunct at a time
  because the instances here are tens of conjuncts at most);
* **constant merging** — substitute one program variable by another (or by
  ``nil``) throughout, which both shrinks the vocabulary and tends to unlock
  further deletions.

Every candidate is re-validated with the caller's predicate before it is
accepted, so the result provably retains the property.  The predicate runs
real provers; callers should give their oracles small budgets.

The measure that must strictly decrease for a step to be accepted is
``(conjuncts, variables)`` lexicographically — termination is immediate, and
the reproducers that come out are the small, human-readable entailments the
regression corpus (``tests/corpus/*.ent``) wants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Tuple

from repro.logic.formula import Entailment
from repro.logic.terms import NIL, Const

__all__ = ["shrink", "ShrinkResult"]

Predicate = Callable[[Entailment], bool]


@dataclass(frozen=True)
class ShrinkResult:
    """The outcome of a shrink run."""

    entailment: Entailment
    original: Entailment
    steps_accepted: int
    candidates_tried: int

    @property
    def conjuncts(self) -> int:
        """Total conjunct count of the shrunk entailment (the headline metric)."""
        return self.entailment.size()


def _measure(entailment: Entailment) -> Tuple[int, int]:
    return (entailment.size(), len(entailment.variables()))


def _deletion_candidates(entailment: Entailment) -> Iterator[Entailment]:
    """Every entailment obtainable by deleting exactly one conjunct."""
    for index in range(len(entailment.lhs_pure)):
        yield Entailment(
            entailment.lhs_pure[:index] + entailment.lhs_pure[index + 1 :],
            entailment.lhs_spatial,
            entailment.rhs_pure,
            entailment.rhs_spatial,
        )
    for index in range(len(entailment.rhs_pure)):
        yield Entailment(
            entailment.lhs_pure,
            entailment.lhs_spatial,
            entailment.rhs_pure[:index] + entailment.rhs_pure[index + 1 :],
            entailment.rhs_spatial,
        )
    for atom in entailment.lhs_spatial:
        yield Entailment(
            entailment.lhs_pure,
            entailment.lhs_spatial.remove(atom),
            entailment.rhs_pure,
            entailment.rhs_spatial,
        )
    for atom in entailment.rhs_spatial:
        yield Entailment(
            entailment.lhs_pure,
            entailment.lhs_spatial,
            entailment.rhs_pure,
            entailment.rhs_spatial.remove(atom),
        )


def _merge_candidates(entailment: Entailment) -> Iterator[Entailment]:
    """Every entailment obtainable by merging one variable into another/nil."""
    variables: List[Const] = sorted(entailment.variables(), key=lambda c: c.name)
    for victim in variables:
        yield entailment.rename({victim: NIL})
        for survivor in variables:
            if survivor != victim:
                yield entailment.rename({victim: survivor})


def shrink(
    entailment: Entailment,
    predicate: Predicate,
    max_candidates: int = 5000,
) -> ShrinkResult:
    """Greedily minimise ``entailment`` while ``predicate`` stays true.

    ``predicate(entailment)`` must already hold; the function raises
    ``ValueError`` otherwise, because a shrink of a non-reproducing input
    would silently "minimise" to garbage.

    ``max_candidates`` bounds the total number of predicate evaluations (each
    may run several provers); the greedy loop converges far earlier on the
    instance sizes the generator produces.
    """
    if not predicate(entailment):
        raise ValueError("the predicate does not hold on the input; nothing to shrink")

    current = entailment
    accepted = 0
    tried = 0
    improved = True
    while improved and tried < max_candidates:
        improved = False
        for candidate in _deletion_candidates(current):
            if tried >= max_candidates:
                break
            tried += 1
            if _measure(candidate) < _measure(current) and predicate(candidate):
                current = candidate
                accepted += 1
                improved = True
                break  # restart: deletion indices shifted
        if improved:
            continue
        for candidate in _merge_candidates(current):
            if tried >= max_candidates:
                break
            tried += 1
            if _measure(candidate) < _measure(current) and predicate(candidate):
                current = candidate
                accepted += 1
                improved = True
                break
    return ShrinkResult(
        entailment=current, original=entailment, steps_accepted=accepted, candidates_tried=tried
    )
