"""Metamorphic transforms on entailments with tracked verdict relations.

A metamorphic transform rewrites an entailment into a *mutant* whose validity
is related to the original's in a known way, without knowing either verdict.
Running both through the prover then yields an oracle-free consistency check:
if the observed pair of verdicts violates the transform's relation, (at least)
one of them is wrong.

The relations are deliberately coarse — each is a function from the original
verdict to the *expected* mutant verdict, with ``None`` meaning "the relation
promises nothing in this direction":

=====================  ======================================================
relation               guarantee
=====================  ======================================================
``EQUIVALENT``         validity is preserved in both directions
``PRESERVES_VALID``    original valid implies mutant valid
``PRESERVES_INVALID``  original invalid implies mutant invalid
``FORCES_VALID``       the mutant is valid whatever the original was
=====================  ======================================================

Every transform here is justified by a small semantic argument recorded in its
docstring; the test suite additionally validates each relation empirically
against the bounded enumeration oracle on small instances, so a transform
whose argument is wrong cannot survive unnoticed.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.logic.formula import Entailment, eq, neq
from repro.logic.terms import NIL, Const, make_const
from repro.spatial.theory import theory_of
from repro.utils.naming import FreshNames

__all__ = [
    "VerdictRelation",
    "Transform",
    "TRANSFORMS",
    "transform_by_name",
    "applicable_transforms",
]


class VerdictRelation(enum.Enum):
    """How a transform relates the mutant's validity to the original's."""

    EQUIVALENT = "equivalent"
    PRESERVES_VALID = "preserves-valid"
    PRESERVES_INVALID = "preserves-invalid"
    FORCES_VALID = "forces-valid"

    def expected(self, original_valid: bool) -> Optional[bool]:
        """The mutant verdict the relation promises (``None``: unconstrained)."""
        if self is VerdictRelation.EQUIVALENT:
            return original_valid
        if self is VerdictRelation.PRESERVES_VALID:
            return True if original_valid else None
        if self is VerdictRelation.PRESERVES_INVALID:
            return None if original_valid else False
        return True  # FORCES_VALID

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Transform:
    """A named mutation with its verdict relation.

    ``apply`` returns the mutant, or ``None`` when the transform does not
    apply to this entailment (for example, dropping a right-hand pure literal
    from an entailment that has none).
    """

    name: str
    relation: VerdictRelation
    apply: Callable[[Entailment, random.Random], Optional[Entailment]]

    def __str__(self) -> str:
        return "{} [{}]".format(self.name, self.relation)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _fresh_names(entailment: Entailment, count: int) -> List[Const]:
    fresh = FreshNames(constant.name for constant in entailment.constants())
    return [make_const(fresh.fresh("f")) for _ in range(count)]


def _some_variable(entailment: Entailment, rng: random.Random) -> Optional[Const]:
    variables = sorted(entailment.variables(), key=lambda c: c.name)
    return rng.choice(variables) if variables else None


def _random_literal(entailment: Entailment, rng: random.Random):
    variables = sorted(entailment.variables(), key=lambda c: c.name)
    if not variables:
        return None
    left = rng.choice(variables)
    right = rng.choice(variables + [NIL])
    return neq(left, right) if rng.random() < 0.6 else eq(left, right)


# ---------------------------------------------------------------------------
# Transforms
# ---------------------------------------------------------------------------


def _alpha_rename(entailment: Entailment, rng: random.Random) -> Optional[Entailment]:
    """Bijectively rename the program variables (``nil`` fixed): EQUIVALENT.

    Validity, proofs and counterexamples all transport along a renaming; this
    is the invariance the PR 2 proof cache is built on, so the transform also
    functions as an end-to-end test of canonicalisation and rename-back.
    """
    variables = sorted(entailment.variables(), key=lambda c: c.name)
    if not variables:
        return None
    fresh = _fresh_names(entailment, len(variables))
    rng.shuffle(fresh)
    return entailment.rename(dict(zip(variables, fresh)))


def _shuffle_conjuncts(entailment: Entailment, rng: random.Random) -> Optional[Entailment]:
    """Permute the pure conjuncts of both sides: EQUIVALENT.

    Conjunction is commutative; spatial formulas are already canonically
    sorted multisets, so only the pure tuples carry order.  The prover's
    verdict must not depend on it.
    """
    if not entailment.lhs_pure and not entailment.rhs_pure:
        return None
    lhs_pure = list(entailment.lhs_pure)
    rhs_pure = list(entailment.rhs_pure)
    rng.shuffle(lhs_pure)
    rng.shuffle(rhs_pure)
    return Entailment(
        tuple(lhs_pure), entailment.lhs_spatial, tuple(rhs_pure), entailment.rhs_spatial
    )


def _frame_extension(entailment: Entailment, rng: random.Random) -> Optional[Entailment]:
    """Star one fresh-addressed atom onto *both* sides: EQUIVALENT.

    Forward is the frame rule (``A |- B`` implies ``A * F |- B * F``).
    Backward holds because the frame's address is a fresh variable ``f``: any
    model of ``A`` extends with one fresh location for ``f`` (plus the frame
    cell/segment), the frame atom's sub-heap in the extended model is forced
    to be exactly that extension, and neither ``A`` nor ``B`` mentions ``f``.
    """
    (source,) = _fresh_names(entailment, 1)
    variables = sorted(entailment.variables(), key=lambda c: c.name)
    frame = theory_of(entailment).frame_atom(source, variables, rng)
    return Entailment(
        entailment.lhs_pure,
        entailment.lhs_spatial.add(frame),
        entailment.rhs_pure,
        entailment.rhs_spatial.add(frame),
    )


def _add_empty_segment(entailment: Entailment, rng: random.Random) -> Optional[Entailment]:
    """Star a trivial segment (``lseg(v, v)`` / ``dlseg(v, w, v, w)``) onto one
    side: EQUIVALENT.

    A trivial segment is satisfied exactly by the empty heap, so it is the
    unit of ``*``; the N2/N4 normalisation rules must discard it on the left
    and the unfolding rules must tolerate it on the right.
    """
    variable = _some_variable(entailment, rng)
    target = variable if variable is not None else NIL
    variables = sorted(entailment.variables(), key=lambda c: c.name)
    atom = theory_of(entailment).empty_segment_atom(target, variables, rng)
    if rng.random() < 0.5:
        return Entailment(
            entailment.lhs_pure,
            entailment.lhs_spatial.add(atom),
            entailment.rhs_pure,
            entailment.rhs_spatial,
        )
    return Entailment(
        entailment.lhs_pure,
        entailment.lhs_spatial,
        entailment.rhs_pure,
        entailment.rhs_spatial.add(atom),
    )


def _strengthen_antecedent(entailment: Entailment, rng: random.Random) -> Optional[Entailment]:
    """Add a pure literal to the left-hand side: PRESERVES_VALID.

    The strengthened antecedent has fewer models, so every consequence of the
    original antecedent still follows.  (An *invalid* original can flip to
    valid — e.g. when the new literal contradicts the left-hand side — so the
    invalid direction promises nothing.)
    """
    literal = _random_literal(entailment, rng)
    if literal is None:
        return None
    return Entailment(
        entailment.lhs_pure + (literal,),
        entailment.lhs_spatial,
        entailment.rhs_pure,
        entailment.rhs_spatial,
    )


def _weaken_consequent(entailment: Entailment, rng: random.Random) -> Optional[Entailment]:
    """Drop one right-hand pure literal: PRESERVES_VALID.

    A conjunction implies each of its sub-conjunctions.
    """
    if not entailment.rhs_pure:
        return None
    index = rng.randrange(len(entailment.rhs_pure))
    remaining = entailment.rhs_pure[:index] + entailment.rhs_pure[index + 1 :]
    return Entailment(
        entailment.lhs_pure, entailment.lhs_spatial, remaining, entailment.rhs_spatial
    )


def _weaken_antecedent(entailment: Entailment, rng: random.Random) -> Optional[Entailment]:
    """Drop one left-hand pure literal: PRESERVES_INVALID.

    A counterexample of the original satisfies the full antecedent, hence
    also the weakened one, and still falsifies the consequent.
    """
    if not entailment.lhs_pure:
        return None
    index = rng.randrange(len(entailment.lhs_pure))
    remaining = entailment.lhs_pure[:index] + entailment.lhs_pure[index + 1 :]
    return Entailment(
        remaining, entailment.lhs_spatial, entailment.rhs_pure, entailment.rhs_spatial
    )


def _strengthen_consequent(entailment: Entailment, rng: random.Random) -> Optional[Entailment]:
    """Add a pure literal to the right-hand side: PRESERVES_INVALID.

    A counterexample falsifies the original consequent, hence also the
    strengthened one.
    """
    literal = _random_literal(entailment, rng)
    if literal is None:
        return None
    return Entailment(
        entailment.lhs_pure,
        entailment.lhs_spatial,
        entailment.rhs_pure + (literal,),
        entailment.rhs_spatial,
    )


def _contradict_antecedent(entailment: Entailment, rng: random.Random) -> Optional[Entailment]:
    """Make the left-hand pure part unsatisfiable: FORCES_VALID.

    ``x = nil /\\ x != nil`` has no model, so the mutant holds vacuously —
    whatever the original verdict was.  This is the validity-*flipping* probe
    for invalid instances: a prover that fails to refute the contradictory
    antecedent is unsound on it.
    """
    variable = _some_variable(entailment, rng)
    if variable is None:
        (variable,) = _fresh_names(entailment, 1)
    extra = (eq(variable, NIL), neq(variable, NIL))
    return Entailment(
        entailment.lhs_pure + extra,
        entailment.lhs_spatial,
        entailment.rhs_pure,
        entailment.rhs_spatial,
    )


def _duplicate_cell(entailment: Entailment, rng: random.Random) -> Optional[Entailment]:
    """Duplicate one left-hand cell atom: FORCES_VALID.

    Two cells at the same address cannot be separated, so the left-hand side
    becomes unsatisfiable; the well-formedness rules (two atoms sharing an
    address) are what must detect it.
    """
    theory = theory_of(entailment)
    cells = [atom for atom in entailment.lhs_spatial if theory.is_cell(atom)]
    if not cells:
        return None
    cell = rng.choice(sorted(cells, key=lambda a: a.sort_key))
    return Entailment(
        entailment.lhs_pure,
        entailment.lhs_spatial.add(cell),
        entailment.rhs_pure,
        entailment.rhs_spatial,
    )


TRANSFORMS: Tuple[Transform, ...] = (
    Transform("alpha_rename", VerdictRelation.EQUIVALENT, _alpha_rename),
    Transform("shuffle_conjuncts", VerdictRelation.EQUIVALENT, _shuffle_conjuncts),
    Transform("frame_extension", VerdictRelation.EQUIVALENT, _frame_extension),
    Transform("add_empty_segment", VerdictRelation.EQUIVALENT, _add_empty_segment),
    Transform("strengthen_antecedent", VerdictRelation.PRESERVES_VALID, _strengthen_antecedent),
    Transform("weaken_consequent", VerdictRelation.PRESERVES_VALID, _weaken_consequent),
    Transform("weaken_antecedent", VerdictRelation.PRESERVES_INVALID, _weaken_antecedent),
    Transform("strengthen_consequent", VerdictRelation.PRESERVES_INVALID, _strengthen_consequent),
    Transform("contradict_antecedent", VerdictRelation.FORCES_VALID, _contradict_antecedent),
    Transform("duplicate_cell", VerdictRelation.FORCES_VALID, _duplicate_cell),
)


def transform_by_name(name: str) -> Transform:
    """Look a transform up by name (raises ``KeyError`` for unknown names)."""
    for transform in TRANSFORMS:
        if transform.name == name:
            return transform
    raise KeyError(name)


def applicable_transforms(entailment: Entailment) -> Sequence[Transform]:
    """The transforms guaranteed applicable to this entailment.

    Cheap static check only — callers may still get ``None`` from ``apply``
    for transforms whose applicability depends on random draws.
    """
    theory = theory_of(entailment)
    results = []
    for transform in TRANSFORMS:
        if transform.name in ("shuffle_conjuncts",) and not (
            entailment.lhs_pure or entailment.rhs_pure
        ):
            continue
        if transform.name == "weaken_consequent" and not entailment.rhs_pure:
            continue
        if transform.name == "weaken_antecedent" and not entailment.lhs_pure:
            continue
        if transform.name in ("strengthen_antecedent", "strengthen_consequent") and not (
            entailment.variables()
        ):
            continue
        if transform.name == "duplicate_cell" and not any(
            theory.is_cell(atom) for atom in entailment.lhs_spatial
        ):
            continue
        if transform.name == "alpha_rename" and not entailment.variables():
            continue
        results.append(transform)
    return results
