"""Differential fuzzing of the prover: generation, mutation, cross-checking.

The subsystem has five layers, usable separately or through
:func:`repro.fuzz.run_campaign` / the ``repro fuzz`` CLI:

* :mod:`repro.fuzz.generator` — seeded, weight-configurable entailment
  generation (unifies and extends the ``benchgen`` distributions);
* :mod:`repro.fuzz.metamorphic` — validity-preserving and validity-flipping
  transforms with tracked verdict relations;
* :mod:`repro.fuzz.oracles` — the verdict-source registry (bounded
  enumeration, reference prover, baselines);
* :mod:`repro.fuzz.differential` — the campaign driver (batch proving,
  cross-checking, finding collection);
* :mod:`repro.fuzz.shrinker` / :mod:`repro.fuzz.corpus` — delta-debugging of
  findings into minimal reproducers and the checked-in regression corpus.
"""

from repro.fuzz.corpus import CorpusEntry, load_corpus, save_reproducer
from repro.fuzz.differential import Disagreement, FuzzReport, run_campaign
from repro.fuzz.generator import (
    DEFAULT_WEIGHTS,
    EntailmentGenerator,
    FuzzCase,
    GeneratorProfile,
    STRATEGIES,
)
from repro.fuzz.metamorphic import TRANSFORMS, Transform, VerdictRelation, transform_by_name
from repro.fuzz.oracles import (
    EnumerationOracle,
    FunctionOracle,
    JStarOracle,
    Oracle,
    ProverOracle,
    ReferenceProverOracle,
    SmallfootOracle,
    default_oracles,
)
from repro.fuzz.shrinker import ShrinkResult, shrink

__all__ = [
    "CorpusEntry",
    "load_corpus",
    "save_reproducer",
    "Disagreement",
    "FuzzReport",
    "run_campaign",
    "DEFAULT_WEIGHTS",
    "EntailmentGenerator",
    "FuzzCase",
    "GeneratorProfile",
    "STRATEGIES",
    "TRANSFORMS",
    "Transform",
    "VerdictRelation",
    "transform_by_name",
    "EnumerationOracle",
    "FunctionOracle",
    "JStarOracle",
    "Oracle",
    "ProverOracle",
    "ReferenceProverOracle",
    "SmallfootOracle",
    "default_oracles",
    "ShrinkResult",
    "shrink",
]
