"""A seeded, weight-configurable entailment generator for the fuzzing subsystem.

The two benchmark distributions in :mod:`repro.benchgen` (the paper's Table 1
and Table 2 families) are deliberately narrow: they exist to reproduce the
evaluation, not to explore the input space.  This module unifies them under a
single :class:`EntailmentGenerator` and adds the shapes the benchmark
distributions never produce:

* ``mixed`` — small arbitrary entailments (spatial atoms plus pure literals on
  both sides), the workhorse distribution of the cross-validation tests;
* ``fold`` — the Table 2 folding family (valid-leaning, exercises unfolding);
* ``unsat`` — a Table 1 style family rescaled to small variable counts
  (``Pi /\\ Sigma |- false``, exercises saturation and well-formedness);
* ``alias_heavy`` — long equality chains collapsing a large variable pool onto
  a small heap, so normalisation (rules N1/N3) has real rewriting to do;
* ``diseq_chain`` — disequality chains over a ``next``/``lseg`` path with a
  folded right-hand side, the shape where U3-U5 side conditions matter;
* ``near_symmetric`` — disjoint copies of one identical gadget, the inputs
  that drive :mod:`repro.logic.canonical`'s individualisation search towards
  its budget (and, past it, into the :class:`~repro.logic.canonical.TooSymmetricError`
  cache opt-out).

Determinism is the load-bearing property: instance ``i`` of a campaign with
seed ``s`` is drawn from ``random.Random("slp-fuzz:s:i")`` and therefore never
depends on how many instances were drawn before it, on the platform, or on
``PYTHONHASHSEED``.  Shrinking and replay rely on this.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.benchgen.random_fold import FoldParameters, random_fold_entailment
from repro.logic.atoms import SpatialAtom
from repro.logic.formula import Entailment, dcell, dlseg, eq, lseg, neq, pts
from repro.logic.terms import NIL, Const, variable_pool

__all__ = [
    "GeneratorProfile",
    "EntailmentGenerator",
    "FuzzCase",
    "STRATEGIES",
    "DEFAULT_WEIGHTS",
]


#: Default mixture over the named strategies.  ``mixed`` dominates because it
#: covers the broadest slice of the input space; the specialised families keep
#: smaller but non-negligible shares so every subsystem is stressed in any
#: few-hundred-instance campaign.
DEFAULT_WEIGHTS: Mapping[str, float] = {
    "mixed": 0.34,
    "fold": 0.13,
    "unsat": 0.13,
    "alias_heavy": 0.11,
    "diseq_chain": 0.11,
    "near_symmetric": 0.06,
    "dll": 0.12,
}


@dataclass(frozen=True)
class GeneratorProfile:
    """Tunable knobs of the generator.

    Attributes
    ----------
    min_variables, max_variables:
        Inclusive range for the number of program variables per instance.
        Small by default: the differential driver cross-checks against the
        exponential enumeration oracle whenever an instance fits its bound.
    max_spatial, max_pure:
        Per-side caps on spatial atoms and pure literals for the ``mixed``
        family.
    p_next:
        Probability that a ``fold`` family atom is ``next`` rather than
        ``lseg`` (the Table 2 ``pnext`` parameter).
    weights:
        Mixture over the strategy names in :data:`STRATEGIES`.  Strategies
        with weight 0 are never drawn; unknown names are rejected eagerly.
    """

    min_variables: int = 3
    max_variables: int = 6
    max_spatial: int = 4
    max_pure: int = 3
    p_next: float = 0.55
    weights: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_WEIGHTS))

    def __post_init__(self) -> None:
        if self.min_variables < 2:
            raise ValueError("the generator needs at least two program variables")
        if self.max_variables < self.min_variables:
            raise ValueError("max_variables must be at least min_variables")
        unknown = set(self.weights) - set(STRATEGIES)
        if unknown:
            raise ValueError("unknown strategies: {}".format(", ".join(sorted(unknown))))
        if not any(weight > 0 for weight in self.weights.values()):
            raise ValueError("at least one strategy needs positive weight")

    def with_weights(self, **weights: float) -> "GeneratorProfile":
        """A copy with some strategy weights replaced (others kept)."""
        merged = dict(self.weights)
        merged.update(weights)
        return replace(self, weights=merged)

    @classmethod
    def only(cls, strategy: str, **kwargs) -> "GeneratorProfile":
        """A profile that draws exclusively from one named strategy."""
        return cls(weights={strategy: 1.0}, **kwargs)


@dataclass(frozen=True)
class FuzzCase:
    """One generated instance: the entailment plus its provenance."""

    index: int
    strategy: str
    entailment: Entailment


# ---------------------------------------------------------------------------
# Strategy implementations.  Each takes (rng, profile) and returns an
# entailment; they must draw all randomness from the supplied rng.
# ---------------------------------------------------------------------------


def _pool(rng: random.Random, profile: GeneratorProfile) -> List[Const]:
    return list(variable_pool(rng.randint(profile.min_variables, profile.max_variables)))


def _random_pure(rng: random.Random, pool: List[Const]):
    left = rng.choice(pool)
    right = rng.choice(pool + [NIL])
    return neq(left, right) if rng.random() < 0.6 else eq(left, right)


def _mixed(rng: random.Random, profile: GeneratorProfile) -> Entailment:
    """Arbitrary small entailments: spatial atoms and pure literals everywhere."""
    pool = _pool(rng, profile)

    def spatial_atom() -> SpatialAtom:
        source = rng.choice(pool)
        target = rng.choice(pool + [NIL])
        return pts(source, target) if rng.random() < 0.5 else lseg(source, target)

    lhs: list = [spatial_atom() for _ in range(rng.randint(0, profile.max_spatial))]
    rhs: list = [spatial_atom() for _ in range(rng.randint(0, profile.max_spatial - 1))]
    for _ in range(rng.randint(0, profile.max_pure)):
        (lhs if rng.random() < 0.7 else rhs).append(_random_pure(rng, pool))
    return Entailment.build(lhs=lhs, rhs=rhs)


def _fold(rng: random.Random, profile: GeneratorProfile) -> Entailment:
    """The Table 2 folding family (lhs permutation heap, rhs folded segments)."""
    variables = rng.randint(max(2, profile.min_variables), profile.max_variables)
    return random_fold_entailment(
        FoldParameters(variables=variables, p_next=profile.p_next), rng
    )


def _unsat(rng: random.Random, profile: GeneratorProfile) -> Entailment:
    """Table 1 rescaled to small n: dense lseg graph plus disequalities |- false."""
    pool = _pool(rng, profile)
    count = len(pool)
    p_lseg = min(0.9, 1.4 / count)
    p_neq = min(0.9, 1.8 / count)
    conjuncts: list = []
    for i, source in enumerate(pool):
        for j, target in enumerate(pool):
            if i != j and rng.random() < p_lseg:
                conjuncts.append(lseg(source, target))
    for i in range(count):
        for j in range(i + 1, count):
            if rng.random() < p_neq:
                conjuncts.append(neq(pool[i], pool[j]))
    return Entailment.with_false_rhs(conjuncts)


def _alias_heavy(rng: random.Random, profile: GeneratorProfile) -> Entailment:
    """A small heap described through a thick haze of aliases.

    A handful of *heap* variables carry the spatial atoms; the rest of the
    pool is chained onto them with equalities, and the right-hand side is
    written in terms of the aliases, so the prover can only succeed by
    rewriting both sides to normal form first.
    """
    pool = _pool(rng, profile)
    rng.shuffle(pool)
    core_size = max(2, len(pool) // 2)
    core, aliases = pool[:core_size], pool[core_size:]

    # alias -> the core (or earlier alias) variable it collapses onto.
    canonical: Dict[Const, Const] = {v: v for v in core}
    lhs: list = []
    bound: List[Const] = list(core)
    for alias in aliases:
        partner = rng.choice(bound)
        lhs.append(eq(alias, partner))
        canonical[alias] = canonical[partner]
        bound.append(alias)

    def blur(variable: Const) -> Const:
        """Some name from ``variable``'s alias class (often not the representative)."""
        if variable not in canonical:  # nil has no aliases
            return variable
        options = [v for v, rep in canonical.items() if rep == canonical[variable]]
        return rng.choice(options)

    # A simple chain over the core, ending at nil or at a core variable.
    chain = list(core)
    rng.shuffle(chain)
    tail = NIL if rng.random() < 0.6 else rng.choice(chain)
    targets = chain[1:] + [tail]
    rhs: list = []
    for source, target in zip(chain, targets):
        atom = pts if rng.random() < 0.6 else lseg
        lhs.append(atom(blur(source), blur(target)))
        rhs.append(lseg(blur(source), blur(target)))
    if rng.random() < 0.5 and tail is NIL:
        # The folded form of the whole chain; valid when every link is a cell.
        rhs = [lseg(blur(chain[0]), NIL)]
    return Entailment.build(lhs=lhs, rhs=rhs)


def _diseq_chain(rng: random.Random, profile: GeneratorProfile) -> Entailment:
    """A path with pairwise/chained disequalities, folded on the right.

    ``lseg`` links make the fold's validity hinge on the disequalities (an
    ``lseg`` that cannot be empty behaves like a nonempty run), which is
    exactly the territory of the U3-U5 side conditions and of the
    well-formedness rules.
    """
    pool = _pool(rng, profile)
    rng.shuffle(pool)
    tail = NIL if rng.random() < 0.5 else pool[-1]
    path = pool if tail is NIL else pool[:-1]
    if not path:
        path, tail = [pool[0]], NIL

    lhs: list = []
    targets = path[1:] + [tail]
    for source, target in zip(path, targets):
        atom = pts if rng.random() < profile.p_next else lseg
        lhs.append(atom(source, target))
    # Disequalities: a chain along the path, plus a few random extra pairs.
    everyone = path + [tail] if tail is not NIL else path
    for source, target in zip(path, targets):
        if rng.random() < 0.7:
            lhs.append(neq(source, target))
    for _ in range(rng.randint(0, 2)):
        first, second = rng.sample(everyone, 2) if len(everyone) >= 2 else (path[0], path[0])
        if first != second:
            lhs.append(neq(first, second))

    # Fold a random prefix of the path into one segment.
    cut = rng.randint(1, len(path))
    stop = targets[cut - 1]
    rhs: list = [lseg(path[0], stop)]
    for source, target in zip(path[cut:], targets[cut:]):
        rhs.append(lseg(source, target))
    return Entailment.build(lhs=lhs, rhs=rhs)


def _near_symmetric(rng: random.Random, profile: GeneratorProfile) -> Entailment:
    """Disjoint copies of one identical gadget: maximal structural symmetry.

    Colour refinement cannot separate the copies (every variable looks the
    same), so canonicalisation must individualise; from about six copies of
    the two-variable gadgets the search exceeds its refinement budget and
    takes the documented :class:`~repro.logic.canonical.TooSymmetricError`
    cache opt-out.  The entailment itself stays easy for the prover — the
    stress is aimed at the batch layer's fingerprinting.
    """
    copies = rng.randint(2, 7)
    gadget = rng.choice(("two_cycle", "self_loop", "pair_to_nil"))
    lhs: list = []
    rhs: list = []
    for i in range(copies):
        a = "s{}a".format(i)
        b = "s{}b".format(i)
        if gadget == "two_cycle":
            lhs += [lseg(a, b), lseg(b, a)]
            rhs += [lseg(a, a)]
        elif gadget == "self_loop":
            lhs += [pts(a, a)]
            rhs += [lseg(a, b), lseg(b, a)]
        else:  # pair_to_nil
            lhs += [pts(a, b), pts(b, NIL)]
            rhs += [lseg(a, NIL)]
    return Entailment.build(lhs=lhs, rhs=rhs)


def _dll(rng: random.Random, profile: GeneratorProfile) -> Entailment:
    """Doubly-linked entailments over ``cell``/``dlseg`` atoms.

    Variable counts honour the profile bounds but lean hard on the smallest
    allowed sizes: two-field heaps multiply the enumeration oracle's search
    space, so only two-variable dll instances fit its default budget — for
    maximal oracle coverage campaign the family with ``--min-vars 2``.
    Three sub-shapes:

    * ``fold`` — a backlinked chain of cells on the left, a random contiguous
      run folded into one ``dlseg`` on the right (valid unless a perturbation
      corrupts a ``prev``/back argument);
    * ``mixed`` — arbitrary small ``cell``/``dlseg`` conjunctions plus pure
      literals on both sides;
    * ``clash`` — shapes aimed at the well-formedness rules: shared
      addresses and the degenerate ``dlseg`` argument patterns (``py = nil``,
      ``py = y``, ``x = y`` with ``px != py``), often with a ``false``
      right-hand side.
    """
    lowest = max(2, profile.min_variables)
    highest = max(lowest, profile.max_variables)
    # Lean hard on the smallest allowed sizes: two-variable instances are the
    # ones the enumeration oracle can decide exhaustively.
    sizes = list(range(lowest, min(highest, lowest + 2) + 1))
    count = rng.choices(sizes, weights=(0.55, 0.35, 0.10)[: len(sizes)], k=1)[0]
    pool = list(variable_pool(count))
    shape = rng.choices(("fold", "mixed", "clash"), weights=(0.5, 0.35, 0.15), k=1)[0]

    def anywhere() -> Const:
        return rng.choice(pool + [NIL])

    if shape == "mixed":
        def atom() -> SpatialAtom:
            source = rng.choice(pool)
            if rng.random() < 0.55:
                return dcell(source, anywhere(), anywhere())
            return dlseg(source, anywhere(), anywhere(), anywhere())

        lhs: list = [atom() for _ in range(rng.randint(0, 3))]
        rhs: list = [atom() for _ in range(rng.randint(0, 2))]
        for _ in range(rng.randint(0, profile.max_pure)):
            (lhs if rng.random() < 0.7 else rhs).append(_random_pure(rng, pool))
        return Entailment.build(lhs=lhs, rhs=rhs)

    if shape == "clash":
        source = rng.choice(pool)
        gadget = rng.choice(("shared_address", "nil_back", "end_back", "empty_mismatch"))
        lhs = []
        if gadget == "shared_address":
            lhs = [dcell(source, anywhere(), anywhere())]
            lhs.append(
                dcell(source, anywhere(), anywhere())
                if rng.random() < 0.5
                else dlseg(source, anywhere(), anywhere(), anywhere())
            )
        elif gadget == "nil_back":
            lhs = [dlseg(source, anywhere(), anywhere(), NIL), neq(source, anywhere())]
        elif gadget == "end_back":
            end = anywhere()
            lhs = [dlseg(source, anywhere(), end, end), neq(source, end)]
        else:  # empty_mismatch: x = y but px != py
            px, py = rng.choice(pool), NIL
            lhs = [dlseg(source, px, source, py), neq(px, py)]
        if rng.random() < 0.6:
            return Entailment.with_false_rhs(lhs)
        return Entailment.build(lhs=lhs, rhs=[dlseg(source, anywhere(), anywhere(), anywhere())])

    # fold: a backlinked chain with a folded right-hand side.
    rng.shuffle(pool)
    length = rng.randint(1, len(pool))
    chain = pool[:length]
    tail = NIL if rng.random() < 0.7 else rng.choice(pool)
    first_prev = NIL if rng.random() < 0.7 else rng.choice(pool)
    nexts = chain[1:] + [tail]
    prevs = [first_prev] + chain[:-1]
    lhs = [dcell(chain[i], nexts[i], prevs[i]) for i in range(length)]
    # Occasionally present one link as the equivalent one-cell segment.
    if rng.random() < 0.3:
        i = rng.randrange(length)
        lhs[i] = dlseg(chain[i], prevs[i], nexts[i], chain[i])
    # Fold the run [start..stop] into a single segment on the right.
    start = rng.randrange(length)
    stop = rng.randrange(start, length)
    rhs = [dcell(chain[i], nexts[i], prevs[i]) for i in range(start)]
    rhs.append(dlseg(chain[start], prevs[start], nexts[stop], chain[stop]))
    rhs.extend(dcell(chain[i], nexts[i], prevs[i]) for i in range(stop + 1, length))
    # Perturb an argument sometimes, flipping the instance towards invalid.
    if rng.random() < 0.35:
        victim = rng.randrange(len(rhs))
        atom = rhs[victim]
        if atom.kind == "dlseg":
            rhs[victim] = dlseg(atom.source, anywhere(), atom.target, anywhere())
        else:
            rhs[victim] = dcell(atom.source, anywhere(), anywhere())
    if rng.random() < 0.3:
        lhs.append(_random_pure(rng, pool))
    return Entailment.build(lhs=lhs, rhs=rhs)


STRATEGIES: Mapping[str, Callable[[random.Random, GeneratorProfile], Entailment]] = {
    "mixed": _mixed,
    "fold": _fold,
    "unsat": _unsat,
    "alias_heavy": _alias_heavy,
    "diseq_chain": _diseq_chain,
    "near_symmetric": _near_symmetric,
    "dll": _dll,
}


class EntailmentGenerator:
    """Draw reproducible fuzzing instances from a weighted strategy mixture."""

    def __init__(self, seed: int = 0, profile: Optional[GeneratorProfile] = None):
        self.seed = seed
        self.profile = profile if profile is not None else GeneratorProfile()
        names = sorted(name for name, weight in self.profile.weights.items() if weight > 0)
        self._names: Tuple[str, ...] = tuple(names)
        self._weights = [self.profile.weights[name] for name in names]

    def _rng_for(self, index: int) -> random.Random:
        # String seeding hashes via SHA-512 in CPython: stable across runs,
        # platforms and PYTHONHASHSEED, unlike hash() based mixing.
        return random.Random("slp-fuzz:{}:{}".format(self.seed, index))

    def case(self, index: int) -> FuzzCase:
        """The ``index``-th instance of this seed (independent of history)."""
        rng = self._rng_for(index)
        strategy = rng.choices(self._names, weights=self._weights, k=1)[0]
        entailment = STRATEGIES[strategy](rng, self.profile)
        return FuzzCase(index=index, strategy=strategy, entailment=entailment)

    def cases(self, count: int, start: int = 0) -> List[FuzzCase]:
        """Instances ``start .. start+count-1``."""
        return [self.case(index) for index in range(start, start + count)]

    def entailments(self, count: int, start: int = 0) -> List[Entailment]:
        """Just the entailments of :meth:`cases` (for callers without provenance needs)."""
        return [case.entailment for case in self.cases(count, start)]
