"""The checked-in regression corpus (``tests/corpus/*.ent``).

Every fuzzing campaign that finds a disagreement shrinks it and appends the
minimal reproducer here; the tier-1 suite replays the whole corpus against
the full oracle battery on every run, so a once-found bug can never silently
return.

The ``.ent`` format is deliberately trivial — a text file the CLI could also
consume:

.. code-block:: text

    # shrunk from a 14-conjunct mixed instance (seed 7, index 132)
    # expected: valid
    x != y /\\ next(x, y) |- lseg(x, y)

Comment lines carry free-form provenance notes; the single mandatory
``# expected:`` line records the ground-truth verdict (established at
promotion time by the strongest available oracle); the first non-comment line
is the entailment in the surface syntax of :mod:`repro.logic.parser`.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import List, Optional

from repro.core.atomicio import atomic_write_text
from repro.logic.formula import Entailment
from repro.logic.parser import parse_entailment

__all__ = ["CorpusEntry", "load_corpus", "save_reproducer", "format_entry", "parse_entry"]

CORPUS_SUFFIX = ".ent"

_EXPECTED_LINE = re.compile(r"^#\s*expected\s*:\s*(valid|invalid)\s*$")


@dataclass(frozen=True)
class CorpusEntry:
    """One regression entailment with its recorded ground truth."""

    name: str
    entailment: Entailment
    expected_valid: bool
    note: str = ""


def parse_entry(text: str, name: str = "<memory>") -> CorpusEntry:
    """Parse the ``.ent`` format (raises ``ValueError`` on malformed files)."""
    expected: Optional[bool] = None
    notes: List[str] = []
    entailment: Optional[Entailment] = None
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            match = _EXPECTED_LINE.match(stripped)
            if match:
                expected = match.group(1) == "valid"
            else:
                notes.append(stripped.lstrip("#").strip())
            continue
        if entailment is not None:
            raise ValueError("{}: more than one entailment line".format(name))
        entailment = parse_entailment(stripped)
    if entailment is None:
        raise ValueError("{}: no entailment line".format(name))
    if expected is None:
        raise ValueError("{}: missing '# expected: valid|invalid' line".format(name))
    return CorpusEntry(
        name=name, entailment=entailment, expected_valid=expected, note=" ".join(notes)
    )


def format_entry(entailment: Entailment, expected_valid: bool, note: str = "") -> str:
    """Render an entry in the ``.ent`` format (the inverse of :func:`parse_entry`)."""
    lines = []
    if note:
        for note_line in note.splitlines():
            lines.append("# {}".format(note_line))
    lines.append("# expected: {}".format("valid" if expected_valid else "invalid"))
    lines.append(str(entailment))
    return "\n".join(lines) + "\n"


def load_corpus(directory: str) -> List[CorpusEntry]:
    """Load every ``*.ent`` file of ``directory``, sorted by file name.

    A missing directory is an empty corpus, so fresh checkouts and temporary
    campaign output directories need no special-casing.
    """
    if not os.path.isdir(directory):
        return []
    entries = []
    for file_name in sorted(os.listdir(directory)):
        if not file_name.endswith(CORPUS_SUFFIX):
            continue
        path = os.path.join(directory, file_name)
        with open(path, "r", encoding="utf-8") as handle:
            entries.append(parse_entry(handle.read(), name=file_name[: -len(CORPUS_SUFFIX)]))
    return entries


def save_reproducer(
    directory: str,
    entailment: Entailment,
    expected_valid: bool,
    note: str = "",
    prefix: str = "shrunk",
) -> str:
    """Write a reproducer into ``directory`` under a fresh ``prefix-NNN.ent`` name.

    Returns the path written.  The directory is created when missing; names
    count upwards so concurrent campaigns on different machines produce
    mergeable corpora (collisions are resolved at review time, not runtime).
    """
    os.makedirs(directory, exist_ok=True)
    taken = set(os.listdir(directory))
    number = 0
    while True:
        file_name = "{}-{:03d}{}".format(prefix, number, CORPUS_SUFFIX)
        if file_name not in taken:
            break
        number += 1
    path = os.path.join(directory, file_name)
    # Atomic: a campaign killed mid-write must not leave a truncated .ent
    # file for the tier-1 corpus replay to choke on.
    atomic_write_text(path, format_entry(entailment, expected_valid, note))
    return path
