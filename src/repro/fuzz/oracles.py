"""The verdict-source registry for differential fuzzing.

Every oracle answers ``True`` (valid), ``False`` (invalid) or ``None``
("cannot decide this instance": out of its bound, over budget, or outside its
completeness envelope).  ``None`` never counts as a disagreement.

The oracle hierarchy, from most to least trusted:

1. **bounded enumeration** (:class:`EnumerationOracle`) — exhaustive search of
   the exact semantics within a universe bound.  An ``invalid`` answer is
   ground truth; a ``valid`` answer is ground truth *relative to the bound*
   (the fragment has a small-model property that the bound comfortably covers
   for the instance sizes the generator produces, but the oracle does not rely
   on that: it simply refuses instances over its variable budget);
2. **reference prover** (:class:`ReferenceProverOracle`) — the seed-behaviour
   configuration (no clause index, from-scratch model generation), sharing no
   optimised code paths with the fast prover;
3. **indexed prover** (:class:`ProverOracle`) — the production configuration,
   served through the same :class:`~repro.core.prover.Prover` the CLI and the
   batch engine use;
4. **baselines** — :class:`SmallfootOracle` (sound and complete, exponential
   search, may answer ``None`` on budget) and :class:`JStarOracle`
   (deliberately incomplete; only its ``valid`` verdicts are trusted, so it is
   a *one-sided* oracle).

The provers' built-in counterexample verification stays on: an oracle that
crashes on a bad counterexample is itself a fuzzing finding, surfaced as an
:class:`OracleError` by the driver.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.baselines.jstar import JStarProver
from repro.baselines.smallfoot import SmallfootProver
from repro.core.config import ProverConfig
from repro.core.prover import Prover, ProverTimeout
from repro.logic.formula import Entailment
from repro.semantics.enumeration import enumerate_counterexample, interpretation_count

__all__ = [
    "Oracle",
    "ProverOracle",
    "ReferenceProverOracle",
    "EnumerationOracle",
    "SmallfootOracle",
    "JStarOracle",
    "FunctionOracle",
    "default_oracles",
]


class Oracle:
    """Base class: a named verdict source."""

    name: str = "oracle"

    def check(self, entailment: Entailment) -> Optional[bool]:
        """``True``/``False`` for a decided instance, ``None`` for "can't say"."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<{} {!r}>".format(type(self).__name__, self.name)


class ProverOracle(Oracle):
    """The fast (indexed, incremental) prover as a verdict source."""

    name = "slp"

    def __init__(
        self, config: Optional[ProverConfig] = None, max_seconds: Optional[float] = None
    ):
        base = config if config is not None else ProverConfig(record_proof=False)
        if max_seconds is not None:
            base = base.with_timeout(max_seconds)
        self.config = base
        self._prover = Prover(base)

    def check(self, entailment: Entailment) -> Optional[bool]:
        try:
            return self._prover.prove(entailment).is_valid
        except ProverTimeout:
            return None


class ReferenceProverOracle(ProverOracle):
    """The seed-behaviour configuration (``ProverConfig.reference()``)."""

    name = "reference"

    def __init__(
        self, config: Optional[ProverConfig] = None, max_seconds: Optional[float] = None
    ):
        base = config if config is not None else ProverConfig(record_proof=False)
        super().__init__(base.reference(), max_seconds=max_seconds)


class EnumerationOracle(Oracle):
    """Bounded brute-force search of the exact semantics.

    The search is exponential in the variable count, so the oracle answers
    ``None`` for instances over ``max_variables`` (and for very wide spatial
    formulas, which multiply the heap space).
    """

    name = "enumeration"

    def __init__(
        self,
        max_variables: int = 3,
        max_atoms: int = 8,
        extra_locations: int = 1,
        max_interpretations: int = 200_000,
    ):
        self.max_variables = max_variables
        self.max_atoms = max_atoms
        self.extra_locations = extra_locations
        self.max_interpretations = max_interpretations

    def within_bound(self, entailment: Entailment) -> bool:
        """True when the instance is small enough to enumerate exhaustively.

        Besides the variable and atom caps, the estimated interpretation
        count must fit the budget — multi-field theories square the heap
        value space per cell, so e.g. three-variable doubly-linked instances
        fall out while the singly-linked bounds are unchanged.
        """
        if len(entailment.variables()) > self.max_variables:
            return False
        if len(entailment.lhs_spatial) + len(entailment.rhs_spatial) > self.max_atoms:
            return False
        return (
            interpretation_count(entailment, self.extra_locations)
            <= self.max_interpretations
        )

    def check(self, entailment: Entailment) -> Optional[bool]:
        if not self.within_bound(entailment):
            return None
        return enumerate_counterexample(entailment, self.extra_locations) is None


class SmallfootOracle(Oracle):
    """The sound-and-complete baseline (may give up on its step/time budget)."""

    name = "smallfoot"

    def __init__(self, max_steps: Optional[int] = 200_000, max_seconds: Optional[float] = 5.0):
        self._prover = SmallfootProver(max_steps=max_steps, max_seconds=max_seconds)

    def check(self, entailment: Entailment) -> Optional[bool]:
        result = self._prover.prove(entailment)
        if result.verdict.value == "unknown":
            return None
        return result.is_valid


class JStarOracle(Oracle):
    """The deliberately incomplete baseline — trusted on ``valid`` only.

    jStar's rule set is sound but incomplete, and its "cannot prove" outcome
    carries no refutation, so everything except an explicit ``valid`` maps to
    ``None``.
    """

    name = "jstar"

    def __init__(self, max_steps: Optional[int] = 200_000, max_seconds: Optional[float] = 5.0):
        self._prover = JStarProver(max_steps=max_steps, max_seconds=max_seconds)

    def check(self, entailment: Entailment) -> Optional[bool]:
        result = self._prover.prove(entailment)
        return True if result.is_valid else None


class FunctionOracle(Oracle):
    """Wrap a plain callable as an oracle (used by tests to inject bugs)."""

    def __init__(self, name: str, check: Callable[[Entailment], Optional[bool]]):
        self.name = name
        self._check = check

    def check(self, entailment: Entailment) -> Optional[bool]:
        return self._check(entailment)


def default_oracles(
    max_enum_variables: int = 3,
    include_baselines: bool = False,
    max_seconds: Optional[float] = None,
) -> List[Oracle]:
    """The cross-check battery the differential driver uses by default.

    The *primary* verdict (the indexed prover through the batch engine) is
    produced by the driver itself; these are the independent sources it is
    checked against.  Order reflects trust: enumeration first.
    """
    oracles: List[Oracle] = [
        EnumerationOracle(max_variables=max_enum_variables),
        ReferenceProverOracle(max_seconds=max_seconds),
    ]
    if include_baselines:
        oracles.append(SmallfootOracle(max_seconds=max_seconds if max_seconds else 5.0))
        oracles.append(JStarOracle(max_seconds=max_seconds if max_seconds else 5.0))
    return oracles
