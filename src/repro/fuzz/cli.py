"""The ``repro fuzz`` / ``slp fuzz`` command-line front end.

Runs a differential fuzzing campaign and prints the summary::

    $ slp fuzz --seed 0 --iterations 200 --jobs 4
    fuzz campaign: seed=0 iterations=200 jobs=4
    checked 317 entailments (117 mutants): ...
    no disagreements found

Exit codes: ``0`` clean campaign, ``1`` disagreements found (so CI can gate
on it).  ``--corpus DIR`` banks shrunk reproducers as ``.ent`` files,
``--summary PATH`` writes the machine-readable report (the same JSON the
scheduled CI job uploads as an artifact).
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, Optional

from repro.core.atomicio import atomic_write_json
from repro.core.faults import FAULT_KINDS, FaultPlan
from repro.core.store import JournalMismatch
from repro.fuzz.differential import run_campaign
from repro.fuzz.generator import DEFAULT_WEIGHTS, GeneratorProfile

__all__ = ["fuzz_main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="slp fuzz",
        description="Differential fuzzing of the entailment prover.",
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    parser.add_argument(
        "--iterations", type=int, default=200, help="generated instances (default 200)"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the batch proving pass (default 1)",
    )
    parser.add_argument(
        "--baselines", action="store_true",
        help="also cross-check against the smallfoot/jstar baseline provers",
    )
    parser.add_argument(
        "--unit-rewrite", action="store_true",
        help="run the primary prover with unit-rewrite simplification enabled "
        "(ProverConfig.use_unit_rewrite): the campaign then pins the "
        "demodulating engine's verdicts against the reference and the "
        "enumeration oracle",
    )
    parser.add_argument(
        "--bitset", action="store_true",
        help="run the primary prover with bitset subsumption enabled "
        "(ProverConfig.use_bitset_subsumption): a differential campaign "
        "over the exact-bitset containment path; composes with "
        "--unit-rewrite",
    )
    parser.add_argument(
        "--max-enum-vars", type=int, default=3, metavar="K",
        help="enumeration-oracle variable bound (default 3; the oracle is exponential)",
    )
    parser.add_argument(
        "--p-transform", type=float, default=0.6, metavar="P",
        help="probability of deriving a metamorphic mutant per instance (default 0.6)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-instance prover budget (default: none)",
    )
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="re-dispatch a crashed batch instance up to N times before "
        "quarantining it (default 2)",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.0, metavar="P",
        help="chaos mode: inject a deterministic worker fault into fraction P "
        "of the primary batch instances (default 0: no injection); the "
        "campaign must still terminate with every uninjected verdict intact",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help="seed for the fault plan (default: the campaign --seed)",
    )
    parser.add_argument(
        "--fault-kind", action="append", default=[], metavar="KIND",
        help="restrict injected faults to KIND (repeatable; kinds: {}; "
        "default: all)".format(", ".join(FAULT_KINDS)),
    )
    parser.add_argument(
        "--min-vars", type=int, default=3, help="minimum variables per instance (default 3)"
    )
    parser.add_argument(
        "--max-vars", type=int, default=6, help="maximum variables per instance (default 6)"
    )
    parser.add_argument(
        "--weight", action="append", default=[], metavar="STRATEGY=W",
        help="override a strategy weight, e.g. --weight near_symmetric=0.3 "
        "(known strategies: {})".format(", ".join(sorted(DEFAULT_WEIGHTS))),
    )
    parser.add_argument(
        "--family", default=None, metavar="STRATEGY",
        help="campaign a single generator family in isolation (sets its weight "
        "to 1 and every other to 0); mutually exclusive with --weight",
    )
    parser.add_argument(
        "--no-shrink", action="store_true", help="report findings without delta-debugging them"
    )
    parser.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="write shrunk reproducers into DIR as .ent files",
    )
    parser.add_argument(
        "--summary", default=None, metavar="PATH",
        help="write the JSON campaign report to PATH",
    )
    parser.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="checkpoint the campaign in DIR (journal + persistent proof "
        "store); a killed campaign restarts with --resume and skips the "
        "journaled work, with a report bit-identical to an uninterrupted run",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume the checkpointed campaign in --run-dir",
    )
    return parser


def fuzz_main(argv: Optional[Iterable[str]] = None) -> int:
    """Entry point of the ``fuzz`` subcommand."""
    parser = _build_parser()
    arguments = parser.parse_args(list(argv) if argv is not None else None)
    if arguments.iterations < 1:
        parser.error("--iterations must be at least 1")
    if arguments.jobs < 1:
        parser.error("--jobs must be at least 1")
    if not 0.0 <= arguments.p_transform <= 1.0:
        parser.error("--p-transform must be in [0, 1]")
    if arguments.retries < 0:
        parser.error("--retries must be >= 0")
    if not 0.0 <= arguments.fault_rate <= 1.0:
        parser.error("--fault-rate must be in [0, 1]")
    for kind in arguments.fault_kind:
        if kind not in FAULT_KINDS:
            parser.error(
                "unknown fault kind {!r}; known: {}".format(kind, ", ".join(FAULT_KINDS))
            )
    if arguments.resume and arguments.run_dir is None:
        parser.error("--resume requires --run-dir")
    if arguments.run_dir is not None and arguments.fault_rate > 0.0:
        parser.error(
            "--run-dir does not compose with chaos mode (--fault-rate):"
            " a replayed journal must not preserve injected faults"
        )
    fault_plan = None
    if arguments.fault_rate > 0.0:
        fault_plan = FaultPlan.seeded(
            seed=arguments.fault_seed if arguments.fault_seed is not None else arguments.seed,
            rate=arguments.fault_rate,
            kinds=tuple(arguments.fault_kind) or ("exit",),
            times=1,  # transient by default: retries must be able to recover
        )

    if arguments.family is not None:
        if arguments.weight:
            parser.error("--family and --weight are mutually exclusive")
        if arguments.family not in DEFAULT_WEIGHTS:
            parser.error(
                "unknown family {!r}; known: {}".format(
                    arguments.family, ", ".join(sorted(DEFAULT_WEIGHTS))
                )
            )

    weights = {}
    for override in arguments.weight:
        name, _, value = override.partition("=")
        if not value:
            parser.error("--weight expects STRATEGY=W, got {!r}".format(override))
        if name not in DEFAULT_WEIGHTS:
            parser.error("unknown strategy {!r}".format(name))
        try:
            weights[name] = float(value)
        except ValueError:
            parser.error("weight for {!r} is not a number: {!r}".format(name, value))
    try:
        if arguments.family is not None:
            profile = GeneratorProfile.only(
                arguments.family,
                min_variables=arguments.min_vars,
                max_variables=arguments.max_vars,
            )
        else:
            profile = GeneratorProfile(
                min_variables=arguments.min_vars, max_variables=arguments.max_vars
            )
            if weights:
                profile = profile.with_weights(**weights)
    except ValueError as error:
        parser.error(str(error))

    config = None
    if arguments.unit_rewrite or arguments.bitset:
        from repro.core.config import ProverConfig

        config = ProverConfig(record_proof=False)
        if arguments.unit_rewrite:
            config = config.with_unit_rewrite()
        if arguments.bitset:
            config = config.with_bitset()

    try:
        report = run_campaign(
            seed=arguments.seed,
            iterations=arguments.iterations,
            jobs=arguments.jobs,
            profile=profile,
            include_baselines=arguments.baselines,
            max_enum_variables=arguments.max_enum_vars,
            p_transform=arguments.p_transform,
            timeout=arguments.timeout,
            shrink_findings=not arguments.no_shrink,
            corpus_dir=arguments.corpus,
            config=config,
            fault_plan=fault_plan,
            retries=arguments.retries,
            run_dir=arguments.run_dir,
            resume=arguments.resume,
        )
    except JournalMismatch as error:
        raise SystemExit("slp fuzz: {}".format(error))

    for line in report.summary_lines():
        print(line)
    if arguments.summary:
        atomic_write_json(arguments.summary, report.to_json(), sort_keys=True)
        print("summary written to {}".format(arguments.summary))
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(fuzz_main())
