"""``slp serve`` — boot the entailment service and run until signalled.

The subcommand wires a :class:`~repro.server.service.ProofService` (warm
pool + optionally persistent, sharded proof store) into a
:class:`~repro.server.http.ProofServer` and blocks until ``SIGINT`` or
``SIGTERM``.  Shutdown is graceful in two stages: the listener stops
accepting and in-flight connections finish, then the service drains its
queue and closes the pool and every store shard — accepted work is always
answered, and the advisory store locks are always released.

The listening address is announced on standard error as::

    slp serve: listening on http://127.0.0.1:43210

which is also how harnesses discover the real port when ``--port 0`` asks
for an ephemeral one.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import Iterable, List, Optional

from repro.core.config import ProverConfig
from repro.server.http import ProofServer
from repro.server.service import (
    DEFAULT_MAX_QUEUE_ENTAILMENTS,
    DEFAULT_MAX_QUEUE_REQUESTS,
    DEFAULT_SHARDS,
    ProofService,
)

__all__ = ["serve_main"]

DEFAULT_TIMEOUT = 30.0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="slp serve",
        description="Serve separation-logic entailment checking over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port; 0 picks an ephemeral one, announced on stderr (default 8080)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="warm worker processes (1 proves on the dispatcher thread; default 1)",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="back the proof cache with a persistent sharded store at PATH",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=DEFAULT_SHARDS,
        metavar="N",
        help="store files to shard the persistent cache over (default {})".format(DEFAULT_SHARDS),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=DEFAULT_TIMEOUT,
        metavar="SECONDS",
        help="per-entailment budget ceiling; per-request timeouts clamp to it"
        " (default {:.0f}s)".format(DEFAULT_TIMEOUT),
    )
    parser.add_argument(
        "--cache-entries",
        type=int,
        default=4096,
        metavar="N",
        help="in-memory LRU capacity of the proof cache (default 4096)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="crash retries before a task is quarantined (default 2)",
    )
    parser.add_argument(
        "--grace",
        type=float,
        default=2.0,
        metavar="FACTOR",
        help="hard-watchdog budget as a multiple of --timeout (default 2.0)",
    )
    parser.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip per-record fsync in the store (faster, loses crash-durability)",
    )
    parser.add_argument(
        "--lanes",
        type=int,
        default=None,
        metavar="N",
        help="dispatcher lanes consuming the queue concurrently"
        " (default min(jobs, 4); >1 interleaves batches per-task in the pool)",
    )
    parser.add_argument(
        "--max-queue-requests",
        type=int,
        default=DEFAULT_MAX_QUEUE_REQUESTS,
        metavar="N",
        help="admission cap on queued requests; past it /prove answers 429"
        " (default {})".format(DEFAULT_MAX_QUEUE_REQUESTS),
    )
    parser.add_argument(
        "--max-queue-entailments",
        type=int,
        default=DEFAULT_MAX_QUEUE_ENTAILMENTS,
        metavar="N",
        help="admission cap on queued entailments across all requests"
        " (default {})".format(DEFAULT_MAX_QUEUE_ENTAILMENTS),
    )
    return parser


async def _run(server: ProofServer, announce) -> None:
    await server.start()
    announce(server)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-Unix loops
            signal.signal(signum, lambda *_: stop.set())
    await stop.wait()
    print("slp serve: shutting down (draining in-flight work)", file=sys.stderr, flush=True)
    await server.drain()


def serve_main(argv: Optional[Iterable[str]] = None) -> int:
    """Entry point of ``slp serve``."""
    arguments = _build_parser().parse_args(list(argv) if argv is not None else None)
    if arguments.jobs < 1:
        print("slp serve: --jobs must be at least 1", file=sys.stderr)
        return 2
    if arguments.shards < 1:
        print("slp serve: --shards must be at least 1", file=sys.stderr)
        return 2
    if arguments.timeout <= 0:
        print("slp serve: --timeout must be positive", file=sys.stderr)
        return 2
    if arguments.lanes is not None and arguments.lanes < 1:
        print("slp serve: --lanes must be at least 1", file=sys.stderr)
        return 2
    if arguments.max_queue_requests < 1 or arguments.max_queue_entailments < 1:
        print("slp serve: queue caps must be at least 1", file=sys.stderr)
        return 2
    config = ProverConfig(record_proof=False).with_timeout(arguments.timeout)
    service = ProofService(
        config,
        jobs=arguments.jobs,
        store_path=arguments.store,
        shards=arguments.shards,
        cache_entries=arguments.cache_entries,
        retries=arguments.retries,
        grace_factor=arguments.grace,
        fsync=not arguments.no_fsync,
        lanes=arguments.lanes,
        max_queue_requests=arguments.max_queue_requests,
        max_queue_entailments=arguments.max_queue_entailments,
    )
    server = ProofServer(service, host=arguments.host, port=arguments.port)

    def announce(bound: ProofServer) -> None:
        details: List[str] = ["jobs={}".format(arguments.jobs), "lanes={}".format(service.lanes)]
        if arguments.store is not None:
            details.append("store={} ({} shards)".format(arguments.store, arguments.shards))
        print(
            "slp serve: listening on http://{}:{} [{}]".format(
                bound.host, bound.port, ", ".join(details)
            ),
            file=sys.stderr,
            flush=True,
        )

    try:
        asyncio.run(_run(server, announce))
    finally:
        service.close()  # drains the queue, releases pool + store shards
    print("slp serve: stopped", file=sys.stderr, flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via ``slp serve``
    sys.exit(serve_main())
