"""A minimal asyncio HTTP/1.1 front for the proof service (stdlib only).

No web framework: requests are small, responses are JSON, and the hot path
is one ``readline`` loop per connection over ``asyncio.start_server``.
Connections are keep-alive by default (``Connection: close`` and HTTP/1.0
are honoured), so a load generator can pipeline many ``/prove`` calls over
one socket.

The read path is hardened against slow and vanished clients:

* **Slowloris** — headers and body reads run under ``read_timeout`` once a
  request has started (a client that sends ``Content-Length`` and never the
  body gets ``408`` and the socket closed, instead of holding a handler slot
  forever); idle keep-alive connections are reaped after ``idle_timeout``.
  Header count and total header bytes are capped.
* **Disconnect-cancel** — while a ``/prove`` awaits its dispatcher future,
  the handler watches the socket; a client that hangs up mid-wait cancels
  the future if it is still queued (running work completes into the cache).
* **Overload mapping** — :class:`~repro.server.service.ServiceOverloaded`
  becomes ``429`` with a ``Retry-After`` header;
  :class:`~repro.server.service.ServiceClosed` becomes ``503``.

Endpoints
---------
``POST /prove``
    Body: ``{"entailments": ["x |-> nil |- lseg(x, nil)", ...]}`` (or a
    single ``"entailment"`` string).  Optional fields: ``timeout`` (seconds,
    clamped to the server's configured ceiling), ``priority`` (int, higher
    first), ``proof`` / ``counterexample`` (booleans — include the artifact
    in the response; ``proof`` also turns on proof recording for the
    request).  The response's ``results`` array is aligned with the input:
    ``{"status": "ok", "verdict": ..., "from_cache": ...}`` for decided
    instances, ``{"status": "timeout" | "oom" | "crashed"}`` for structured
    failures, ``{"status": "parse_error", "error": ...}`` for lines that do
    not parse (the rest of the batch still runs).
``GET /healthz``
    The service's admission state machine: ``200`` with
    ``status: healthy | degraded`` while accepting, ``503`` with
    ``status: overloaded | draining`` when not — cheap enough to poll.
``GET /stats``
    The :meth:`ProofService.stats` snapshot (cache/pool/store counters,
    queue-wait and execution histograms with p50/p90/p99, shed/expired/
    cancelled counters).

The handler blocks only on ``await``: proving happens on the service's
dispatcher lanes and comes back through ``asyncio.wrap_future``, so one
slow request never wedges the accept loop or the health endpoint.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
from typing import Dict, Optional, Set, Tuple

from repro.core.batch import FailureInfo
from repro.core.result import ProofResult
from repro.logic.parser import ParseError, parse_entailment
from repro.server.service import ProofService, ServiceClosed, ServiceOverloaded

__all__ = ["ProofServer"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

# One request body cap, far above any sane batch, far below a memory hazard.
_MAX_BODY_BYTES = 8 * 1024 * 1024

# Header caps: no legitimate client of a JSON proving API sends hundreds of
# headers or tens of kilobytes of them; a slowloris drip-feeding them does.
_MAX_HEADER_COUNT = 100
_MAX_HEADER_BYTES = 32 * 1024

#: A 4-tuple every route resolves to: status, JSON payload, extra response
#: headers, and bytes read past the current request (pushed back into the
#: connection loop — the disconnect monitor may swallow the first byte of a
#: pipelined follow-up request).
_RouteResult = Tuple[int, Dict[str, object], Dict[str, str], bytes]


def _outcome_json(outcome, want_proof: bool, want_counterexample: bool) -> Dict[str, object]:
    """One ``results`` entry for a batch outcome."""
    if isinstance(outcome, ProofResult):
        entry: Dict[str, object] = {
            "status": "ok",
            "verdict": "valid" if outcome.is_valid else "invalid",
            "from_cache": outcome.from_cache,
            "elapsed_seconds": outcome.statistics.elapsed_seconds,
        }
        if want_proof:
            entry["proof"] = outcome.proof.format() if outcome.proof is not None else None
        if want_counterexample:
            entry["counterexample"] = (
                str(outcome.counterexample) if outcome.counterexample is not None else None
            )
        return entry
    assert isinstance(outcome, FailureInfo)
    kind = outcome.kind if outcome.kind in ("timeout", "oom") else "crashed"
    return {
        "status": kind,
        "attempts": outcome.attempts,
        "detail": outcome.detail,
    }


class ProofServer:
    """The asyncio HTTP server wrapping one :class:`ProofService`.

    ``port=0`` binds an ephemeral port; the bound port is on :attr:`port`
    after :meth:`start`.  Use :meth:`serve_in_thread` from synchronous code
    (tests, benchmarks): it runs the event loop on a daemon thread and
    returns once the socket is listening; :meth:`shutdown` then drains and
    stops everything, including the service.
    """

    #: Budget for reading the rest of a request once its first line arrived
    #: (headers + body).  A drip-feeding client hits this and gets ``408``.
    read_timeout = 30.0
    #: How long an idle keep-alive connection may sit between requests
    #: before the server closes it (no response — nothing was asked).
    idle_timeout = 300.0

    def __init__(self, service: ProofService, host: str = "127.0.0.1", port: int = 8080):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: Set["asyncio.Task"] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting; resolves ``port=0`` to the real port."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def drain(self, handler_grace: float = 30.0) -> None:
        """Stop accepting, then wait for in-flight connections to finish.

        In-flight requests keep their dispatcher futures, so draining here
        plus :meth:`ProofService.close` afterwards loses no accepted work.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [task for task in self._handlers if not task.done()]
        if pending:
            _, stragglers = await asyncio.wait(pending, timeout=handler_grace)
            # Whatever is still running is an idle keep-alive or a client
            # that stopped cooperating; cancel instead of abandoning the
            # tasks to loop teardown (which would warn and skip cleanup).
            for task in stragglers:
                task.cancel()
            if stragglers:
                await asyncio.wait(stragglers, timeout=1.0)

    def serve_in_thread(self) -> "ProofServer":
        """Run the server on a background event-loop thread; wait until bound."""
        started = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            loop.run_until_complete(self.start())
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(target=run, name="slp-serve-http", daemon=True)
        self._thread.start()
        started.wait()
        return self

    def shutdown(self, handler_grace: float = 30.0) -> None:
        """Thread-safe full stop: drain connections, stop the loop, close the service."""
        if self._loop is not None and self._thread is not None:
            future = asyncio.run_coroutine_threadsafe(self.drain(handler_grace), self._loop)
            future.result(timeout=handler_grace + 5.0)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.close()

    # -- the connection handler --------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        pushback = b""
        try:
            while True:
                # Between requests the connection may idle (keep-alive); once
                # a request line lands, the rest must arrive promptly.
                try:
                    request_line = pushback + await asyncio.wait_for(
                        reader.readline(), self.idle_timeout
                    )
                    pushback = b""
                except asyncio.TimeoutError:
                    break  # idle keep-alive reaped; nothing owed to anyone
                if not request_line:
                    break
                if request_line in (b"\r\n", b"\n"):
                    continue  # leading CRLF tolerance (RFC 7230 §3.5)
                try:
                    method, target, version = request_line.decode("latin-1").split()
                except ValueError:
                    await self._respond(writer, 400, {"error": "malformed request line"}, close=True)
                    break
                try:
                    headers, header_error = await asyncio.wait_for(
                        self._read_headers(reader), self.read_timeout
                    )
                except asyncio.TimeoutError:
                    await self._respond(writer, 408, {"error": "timed out reading headers"}, close=True)
                    break
                if header_error is not None:
                    await self._respond(writer, 400, {"error": header_error}, close=True)
                    break
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    await self._respond(writer, 400, {"error": "bad Content-Length"}, close=True)
                    break
                if length > _MAX_BODY_BYTES:
                    await self._respond(writer, 400, {"error": "request body too large"}, close=True)
                    break
                try:
                    body = (
                        await asyncio.wait_for(reader.readexactly(length), self.read_timeout)
                        if length
                        else b""
                    )
                except asyncio.TimeoutError:
                    await self._respond(writer, 408, {"error": "timed out reading body"}, close=True)
                    break
                close = (
                    headers.get("connection", "").lower() == "close"
                    or version.upper() == "HTTP/1.0"
                )
                try:
                    status, payload, extra, pushback = await self._route(
                        method.upper(), target, body, reader
                    )
                except Exception as error:  # a handler bug must not kill the connection loop
                    status, payload, extra, pushback = (
                        500,
                        {"error": "internal error: {}".format(error)},
                        {},
                        b"",
                    )
                await self._respond(writer, status, payload, close=close, extra_headers=extra)
                if close:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _read_headers(
        reader: asyncio.StreamReader,
    ) -> Tuple[Dict[str, str], Optional[str]]:
        """Read the header block; ``(headers, None)`` or ``({}, error)``."""
        headers: Dict[str, str] = {}
        total_bytes = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                return headers, None
            total_bytes += len(line)
            if len(headers) >= _MAX_HEADER_COUNT:
                return {}, "too many headers"
            if total_bytes > _MAX_HEADER_BYTES:
                return {}, "header block too large"
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
        close: bool,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        lines = [
            "HTTP/1.1 {} {}".format(status, _REASONS.get(status, "OK")),
            "Content-Type: application/json",
            "Content-Length: {}".format(len(body)),
            "Connection: {}".format("close" if close else "keep-alive"),
        ]
        for name, value in (extra_headers or {}).items():
            lines.append("{}: {}".format(name, value))
        head = "\r\n".join(lines) + "\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routing -----------------------------------------------------------
    async def _route(
        self, method: str, target: str, body: bytes, reader: asyncio.StreamReader
    ) -> _RouteResult:
        path = target.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}, {}, b""
            health = self.service.health()
            health["jobs"] = self.service.batch.jobs
            health["queue_depth"] = health["queue"]["requests"]  # type: ignore[index]
            status = 200 if health.get("accepting") else 503
            extra: Dict[str, str] = {}
            if "retry_after" in health:
                extra["Retry-After"] = str(int(math.ceil(float(health["retry_after"]))))
            return status, health, extra, b""
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "stats is GET-only"}, {}, b""
            return 200, self.service.stats(), {}, b""
        if path == "/prove":
            if method != "POST":
                return 405, {"error": "prove is POST-only"}, {}, b""
            return await self._prove(body, reader)
        return 404, {"error": "no such endpoint: {}".format(path)}, {}, b""

    async def _prove(self, body: bytes, reader: asyncio.StreamReader) -> _RouteResult:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": "invalid JSON body: {}".format(error)}, {}, b""
        if not isinstance(payload, dict):
            return 400, {"error": "body must be a JSON object"}, {}, b""
        if "entailments" in payload:
            lines = payload["entailments"]
        elif "entailment" in payload:
            lines = [payload["entailment"]]
        else:
            return (
                400,
                {"error": "missing 'entailments' (list of strings) or 'entailment'"},
                {},
                b"",
            )
        if not isinstance(lines, list) or not all(isinstance(line, str) for line in lines):
            return 400, {"error": "'entailments' must be a list of strings"}, {}, b""
        if not lines:
            return 400, {"error": "empty batch"}, {}, b""
        try:
            timeout = self.service.clamp_timeout(payload.get("timeout"))
        except (TypeError, ValueError):
            return 400, {"error": "'timeout' must be a positive number"}, {}, b""
        try:
            priority = int(payload.get("priority", 0))
        except (TypeError, ValueError):
            return 400, {"error": "'priority' must be an integer"}, {}, b""
        want_proof = bool(payload.get("proof", False))
        want_counterexample = bool(payload.get("counterexample", False))

        results: list = [None] * len(lines)
        batch = []
        positions = []
        for position, line in enumerate(lines):
            try:
                batch.append(parse_entailment(line))
                positions.append(position)
            except ParseError as error:
                results[position] = {"status": "parse_error", "error": str(error)}
        pushback = b""
        if batch:
            try:
                future = self.service.submit(
                    batch,
                    timeout=timeout,
                    priority=priority,
                    # Proofs are only recorded when asked for; None keeps the
                    # service default (record_proof=False) for the common path.
                    record_proof=True if want_proof else None,
                )
            except ServiceOverloaded as refused:
                return (
                    429,
                    {"error": str(refused), "retry_after": refused.retry_after},
                    {"Retry-After": str(int(math.ceil(refused.retry_after)))},
                    b"",
                )
            except ServiceClosed as refused:
                return 503, {"error": str(refused)}, {}, b""
            outcomes, pushback = await self._await_watching_client(future, reader)
            if outcomes is None:
                # The client hung up while the request was still queued; the
                # future was cancelled and nobody is listening for a reply.
                raise ConnectionResetError("client disconnected while queued")
            for position, outcome in zip(positions, outcomes):
                results[position] = _outcome_json(outcome, want_proof, want_counterexample)
        return 200, {"results": results}, {}, pushback

    @staticmethod
    async def _await_watching_client(future, reader: asyncio.StreamReader):
        """Await the dispatcher future while watching the socket for a hangup.

        Returns ``(outcomes, pushback)``; ``outcomes`` is ``None`` when the
        client disconnected and the still-queued future was cancelled.  A
        byte the monitor read that was *not* EOF belongs to the client's next
        pipelined request and is returned as pushback.  If the future is
        already running when the client vanishes, the work is let finish —
        it completes into the cache, so the cost is not wasted.
        """
        wrapped = asyncio.ensure_future(asyncio.wrap_future(future))
        monitor = asyncio.ensure_future(reader.read(1))
        try:
            await asyncio.wait({wrapped, monitor}, return_when=asyncio.FIRST_COMPLETED)
            if not wrapped.done():
                hangup = False
                if monitor.done():
                    exception = monitor.exception()
                    if exception is not None:
                        hangup = True
                    elif monitor.result() == b"":
                        hangup = True
                if hangup and future.cancel():
                    wrapped.cancel()
                    await asyncio.gather(wrapped, return_exceptions=True)
                    return None, b""
            outcomes = await wrapped
            pushback = b""
            if monitor.done() and monitor.exception() is None:
                pushback = monitor.result() or b""
            return outcomes, pushback
        finally:
            if not monitor.done():
                monitor.cancel()
                await asyncio.gather(monitor, return_exceptions=True)
