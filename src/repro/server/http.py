"""A minimal asyncio HTTP/1.1 front for the proof service (stdlib only).

No web framework: requests are small, responses are JSON, and the hot path
is one ``readline`` loop per connection over ``asyncio.start_server``.
Connections are keep-alive by default (``Connection: close`` and HTTP/1.0
are honoured), so a load generator can pipeline many ``/prove`` calls over
one socket.

Endpoints
---------
``POST /prove``
    Body: ``{"entailments": ["x |-> nil |- lseg(x, nil)", ...]}`` (or a
    single ``"entailment"`` string).  Optional fields: ``timeout`` (seconds,
    clamped to the server's configured ceiling), ``priority`` (int, higher
    first), ``proof`` / ``counterexample`` (booleans — include the artifact
    in the response; ``proof`` also turns on proof recording for the
    request).  The response's ``results`` array is aligned with the input:
    ``{"status": "ok", "verdict": ..., "from_cache": ...}`` for decided
    instances, ``{"status": "timeout" | "oom" | "crashed"}`` for structured
    failures, ``{"status": "parse_error", "error": ...}`` for lines that do
    not parse (the rest of the batch still runs).
``GET /healthz``
    Liveness: ``{"status": "ok"}`` plus pool shape — cheap enough to poll.
``GET /stats``
    The :meth:`ProofService.stats` snapshot (cache/pool/store counters,
    latency histogram with p50/p90/p99).

The handler blocks only on ``await``: proving happens on the service's
dispatcher thread and comes back through ``asyncio.wrap_future``, so one
slow request never wedges the accept loop or the health endpoint.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Dict, Optional, Set, Tuple

from repro.core.batch import FailureInfo
from repro.core.result import ProofResult
from repro.logic.parser import ParseError, parse_entailment
from repro.server.service import ProofService

__all__ = ["ProofServer"]

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed", 500: "Internal Server Error"}

# One request body cap, far above any sane batch, far below a memory hazard.
_MAX_BODY_BYTES = 8 * 1024 * 1024


def _outcome_json(outcome, want_proof: bool, want_counterexample: bool) -> Dict[str, object]:
    """One ``results`` entry for a batch outcome."""
    if isinstance(outcome, ProofResult):
        entry: Dict[str, object] = {
            "status": "ok",
            "verdict": "valid" if outcome.is_valid else "invalid",
            "from_cache": outcome.from_cache,
            "elapsed_seconds": outcome.statistics.elapsed_seconds,
        }
        if want_proof:
            entry["proof"] = outcome.proof.format() if outcome.proof is not None else None
        if want_counterexample:
            entry["counterexample"] = (
                str(outcome.counterexample) if outcome.counterexample is not None else None
            )
        return entry
    assert isinstance(outcome, FailureInfo)
    kind = outcome.kind if outcome.kind in ("timeout", "oom") else "crashed"
    return {
        "status": kind,
        "attempts": outcome.attempts,
        "detail": outcome.detail,
    }


class ProofServer:
    """The asyncio HTTP server wrapping one :class:`ProofService`.

    ``port=0`` binds an ephemeral port; the bound port is on :attr:`port`
    after :meth:`start`.  Use :meth:`serve_in_thread` from synchronous code
    (tests, benchmarks): it runs the event loop on a daemon thread and
    returns once the socket is listening; :meth:`shutdown` then drains and
    stops everything, including the service.
    """

    def __init__(self, service: ProofService, host: str = "127.0.0.1", port: int = 8080):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: Set["asyncio.Task"] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting; resolves ``port=0`` to the real port."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def drain(self, handler_grace: float = 30.0) -> None:
        """Stop accepting, then wait for in-flight connections to finish.

        In-flight requests keep their dispatcher futures, so draining here
        plus :meth:`ProofService.close` afterwards loses no accepted work.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [task for task in self._handlers if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=handler_grace)

    def serve_in_thread(self) -> "ProofServer":
        """Run the server on a background event-loop thread; wait until bound."""
        started = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            loop.run_until_complete(self.start())
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(target=run, name="slp-serve-http", daemon=True)
        self._thread.start()
        started.wait()
        return self

    def shutdown(self, handler_grace: float = 30.0) -> None:
        """Thread-safe full stop: drain connections, stop the loop, close the service."""
        if self._loop is not None and self._thread is not None:
            future = asyncio.run_coroutine_threadsafe(self.drain(handler_grace), self._loop)
            future.result(timeout=handler_grace + 5.0)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.close()

    # -- the connection handler --------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, version = request_line.decode("latin-1").split()
                except ValueError:
                    await self._respond(writer, 400, {"error": "malformed request line"}, close=True)
                    break
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    await self._respond(writer, 400, {"error": "bad Content-Length"}, close=True)
                    break
                if length > _MAX_BODY_BYTES:
                    await self._respond(writer, 400, {"error": "request body too large"}, close=True)
                    break
                body = await reader.readexactly(length) if length else b""
                close = (
                    headers.get("connection", "").lower() == "close"
                    or version.upper() == "HTTP/1.0"
                )
                try:
                    status, payload = await self._route(method.upper(), target, body)
                except Exception as error:  # a handler bug must not kill the connection loop
                    status, payload = 500, {"error": "internal error: {}".format(error)}
                await self._respond(writer, status, payload, close=close)
                if close:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
        close: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            "HTTP/1.1 {} {}\r\n"
            "Content-Type: application/json\r\n"
            "Content-Length: {}\r\n"
            "Connection: {}\r\n"
            "\r\n"
        ).format(status, _REASONS.get(status, "OK"), len(body), "close" if close else "keep-alive")
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routing -----------------------------------------------------------
    async def _route(self, method: str, target: str, body: bytes) -> Tuple[int, Dict[str, object]]:
        path = target.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}
            return 200, {
                "status": "ok",
                "jobs": self.service.batch.jobs,
                "queue_depth": self.service.queue_depth,
            }
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "stats is GET-only"}
            return 200, self.service.stats()
        if path == "/prove":
            if method != "POST":
                return 405, {"error": "prove is POST-only"}
            return await self._prove(body)
        return 404, {"error": "no such endpoint: {}".format(path)}

    async def _prove(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": "invalid JSON body: {}".format(error)}
        if not isinstance(payload, dict):
            return 400, {"error": "body must be a JSON object"}
        if "entailments" in payload:
            lines = payload["entailments"]
        elif "entailment" in payload:
            lines = [payload["entailment"]]
        else:
            return 400, {"error": "missing 'entailments' (list of strings) or 'entailment'"}
        if not isinstance(lines, list) or not all(isinstance(line, str) for line in lines):
            return 400, {"error": "'entailments' must be a list of strings"}
        if not lines:
            return 400, {"error": "empty batch"}
        try:
            timeout = self.service.clamp_timeout(payload.get("timeout"))
        except (TypeError, ValueError):
            return 400, {"error": "'timeout' must be a positive number"}
        try:
            priority = int(payload.get("priority", 0))
        except (TypeError, ValueError):
            return 400, {"error": "'priority' must be an integer"}
        want_proof = bool(payload.get("proof", False))
        want_counterexample = bool(payload.get("counterexample", False))

        results: list = [None] * len(lines)
        batch = []
        positions = []
        for position, line in enumerate(lines):
            try:
                batch.append(parse_entailment(line))
                positions.append(position)
            except ParseError as error:
                results[position] = {"status": "parse_error", "error": str(error)}
        if batch:
            try:
                future = self.service.submit(
                    batch,
                    timeout=timeout,
                    priority=priority,
                    # Proofs are only recorded when asked for; None keeps the
                    # service default (record_proof=False) for the common path.
                    record_proof=True if want_proof else None,
                )
            except RuntimeError as error:  # submit raced a shutdown
                return 500, {"error": str(error)}
            outcomes = await asyncio.wrap_future(future)
            for position, outcome in zip(positions, outcomes):
                results[position] = _outcome_json(outcome, want_proof, want_counterexample)
        return 200, {"results": results}
