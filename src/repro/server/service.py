"""The proof service: bounded admission, dispatcher lanes, a warm batch prover.

:class:`ProofService` owns the state that makes the server worth running —
one :class:`~repro.core.batch.BatchProver` whose worker pool stays warm and
whose cache (optionally a sharded :class:`~repro.core.cache.
PersistentProofCache`) accumulates across requests — and exposes exactly one
entry point, :meth:`ProofService.submit`, which enqueues a request and
returns a :class:`concurrent.futures.Future`.

The service is built to *degrade gracefully* under any offered load:

* **Bounded admission** — the queue is capped in both requests
  (``max_queue_requests``) and entailments (``max_queue_entailments``).
  Past either high-water mark :meth:`submit` raises a typed
  :class:`ServiceOverloaded` carrying a ``retry_after`` hint derived from
  the recent p50 *execution* time and current queue depth, which the HTTP
  layer maps to ``429`` + ``Retry-After``.  Memory stays bounded no matter
  what clients do.
* **Deadline-aware shedding** — queue-wait counts against each request's
  clamped timeout.  A request whose budget already expired while queued is
  answered as a structured ``timeout`` without ever touching the pool
  (``expired_in_queue``); one that waited part of its budget runs with only
  the remainder.  Cancelled futures (client gone) are dropped before
  dispatch and counted (``cancelled``).
* **Dispatcher lanes** — ``lanes`` threads (default ``min(jobs, 4)``)
  consume the one priority queue concurrently and drive the shared pool
  through the batch layer's thread-safe dispatch facade
  (``shared_dispatch``), so a 200-entailment batch no longer head-of-line
  blocks a 1-entailment priority request: tasks from all lanes interleave
  per-task in the pool, ranked by request priority.
* **A health state machine** — :meth:`health` reports
  ``healthy | degraded | overloaded | draining`` so pollers and routers can
  steer before the cliff, not after.

Priority entries sort as ``(0, -priority, seq)``: higher ``priority``
first, FIFO within a priority class.  The shutdown sentinels rank as
``(1, ...)`` — after *every* real entry — which is what makes
:meth:`close` a drain: work accepted before shutdown is finished and
answered, then the pool and every store shard are released.

Per-request ``timeout`` rides the batch layer's per-task overrides.  The
pool watchdog stays derived from the *configured* ``max_seconds`` (it is a
pool property, not a task property), so requested timeouts are clamped to
the configured ceiling — a request can ask for less patience than the
server has, never more.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import queue
import threading
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.batch import BatchOutcome, BatchProver, FailureInfo
from repro.core.cache import PersistentProofCache, ProofCache
from repro.core.config import ProverConfig
from repro.core.store import ShardedProofStore
from repro.logic.formula import Entailment

__all__ = [
    "ProofService",
    "ServiceClosed",
    "ServiceOverloaded",
    "DEFAULT_SHARDS",
    "DEFAULT_MAX_QUEUE_REQUESTS",
    "DEFAULT_MAX_QUEUE_ENTAILMENTS",
]

DEFAULT_SHARDS = 4

#: Default admission caps.  Sized so a full queue of typical requests fits
#: comfortably in memory and drains within tens of seconds on a warm pool;
#: operators with different traffic override them (``--max-queue-*``).
DEFAULT_MAX_QUEUE_REQUESTS = 256
DEFAULT_MAX_QUEUE_ENTAILMENTS = 4096

# Latency histogram buckets: powers of two in milliseconds.  The last bucket
# is open-ended; interactive traffic lives in the first few.
_BUCKET_CAP_MS = 65536


class ServiceClosed(RuntimeError):
    """Submission refused (or an accepted entry abandoned) because the
    service is closed or closing.  The HTTP layer maps this to ``503``."""


class ServiceOverloaded(RuntimeError):
    """Submission refused by admission control: the queue is at a high-water
    mark.  ``retry_after`` (seconds) estimates when capacity frees up —
    recent p50 execution time scaled by queue depth per lane — and feeds the
    HTTP ``Retry-After`` header on the ``429`` response."""

    def __init__(self, retry_after: float, detail: str = "service overloaded"):
        super().__init__(detail)
        self.retry_after = float(retry_after)


def _bucket_ms(elapsed_seconds: float) -> int:
    """The histogram bucket (upper bound, in ms) a latency falls into."""
    ms = elapsed_seconds * 1000.0
    upper = 1
    while upper < ms and upper < _BUCKET_CAP_MS:
        upper *= 2
    return upper


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """The q-quantile (0 < q <= 1) of an already-sorted non-empty sequence."""
    index = max(0, min(len(sorted_values) - 1, int(round(q * len(sorted_values))) - 1))
    return sorted_values[index]


def _latency_summary(samples: Sequence[float], histogram: "Counter[int]") -> Dict[str, object]:
    """A JSON-ready ``{count, histogram, p50/p90/p99}`` block for one timer."""
    ordered = sorted(samples)
    block: Dict[str, object] = {
        "count": len(ordered),
        "histogram": {
            "<={}ms".format(upper): count for upper, count in sorted(histogram.items())
        },
    }
    if ordered:
        block["p50_ms"] = _percentile(ordered, 0.50) * 1000.0
        block["p90_ms"] = _percentile(ordered, 0.90) * 1000.0
        block["p99_ms"] = _percentile(ordered, 0.99) * 1000.0
    return block


@dataclass
class _Request:
    """One enqueued ``/prove`` call waiting for a dispatcher lane."""

    entailments: List[Entailment]
    max_seconds: Optional[float]
    record_proof: Optional[bool]
    priority: int
    future: "concurrent.futures.Future[List[BatchOutcome]]"
    enqueued_at: float = field(default_factory=time.monotonic)

    @property
    def deadline(self) -> Optional[float]:
        """Monotonic instant the request's whole budget expires, queue
        included — ``None`` for requests without a timeout."""
        if self.max_seconds is None:
            return None
        return self.enqueued_at + self.max_seconds


class ProofService:
    """Long-lived prover state plus the bounded queue and lanes that feed it.

    Parameters
    ----------
    config:
        Prover configuration for the warm pool.  Its ``max_seconds`` is the
        *ceiling* for per-request timeouts (requests are clamped to it) and
        what the hard watchdog budget derives from.  The service defaults
        ``record_proof`` off and turns it on per request — recording every
        proof just to discard it would tax the common no-proof path.
    jobs:
        Worker processes for the underlying :class:`BatchProver` (``1`` runs
        in-process; the dispatcher lanes then do the proving themselves).
    store_path:
        Back the cache with a persistent store at this path; ``None`` keeps
        the cache memory-only (still warm across requests, lost on exit).
    shards:
        Store files to split the persistent tier over (ignored without
        ``store_path``).  Values > 1 use a :class:`ShardedProofStore` so
        concurrent processes sharing the path lock per shard, not globally.
    lanes:
        Dispatcher threads consuming the queue (default ``min(jobs, 4)``).
        More than one switches the batch prover into its thread-safe shared
        dispatch mode; a single lane keeps the original solo dispatch.
    max_queue_requests / max_queue_entailments:
        Admission high-water marks.  A submission that would push either
        counter past its cap is refused with :class:`ServiceOverloaded`.
    """

    #: How long one shed keeps :meth:`health` reporting ``overloaded``.
    #: Without the hold a poller almost always lands between sheds and sees
    #: a momentarily-below-cap queue; class attribute so tests can shrink it.
    overload_hold_seconds = 1.0

    def __init__(
        self,
        config: Optional[ProverConfig] = None,
        jobs: int = 1,
        store_path: Optional[str] = None,
        shards: int = DEFAULT_SHARDS,
        cache_entries: int = 4096,
        retries: int = 2,
        grace_factor: float = 2.0,
        fsync: bool = True,
        lanes: Optional[int] = None,
        max_queue_requests: int = DEFAULT_MAX_QUEUE_REQUESTS,
        max_queue_entailments: int = DEFAULT_MAX_QUEUE_ENTAILMENTS,
    ):
        if lanes is None:
            lanes = min(max(1, jobs), 4)
        if lanes < 1:
            raise ValueError("lanes must be at least 1")
        if max_queue_requests < 1 or max_queue_entailments < 1:
            raise ValueError("queue caps must be positive")
        self.config = config if config is not None else ProverConfig(record_proof=False)
        self.lanes = lanes
        self.max_queue_requests = max_queue_requests
        self.max_queue_entailments = max_queue_entailments
        if store_path is not None:
            cache: ProofCache = PersistentProofCache(
                store_path, max_entries=cache_entries, fsync=fsync, shards=shards
            )
        else:
            cache = ProofCache(max_entries=cache_entries)
        self.batch = BatchProver(
            self.config,
            jobs=jobs,
            cache=cache,
            retries=retries,
            grace_factor=grace_factor,
            shared_dispatch=lanes > 1,
        )
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._sequence = itertools.count()
        self._lock = threading.Lock()
        self._queued_requests = 0
        self._queued_entailments = 0
        # Latency is recorded as a *split*: time spent waiting in the queue
        # versus time executing on the pool (total = wait + execution).  The
        # split is what makes shedding tunable — a high total with low
        # execution means the caps are too generous, not the prover too slow.
        self._latencies: "deque[float]" = deque(maxlen=4096)
        self._histogram: "Counter[int]" = Counter()
        self._queue_waits: "deque[float]" = deque(maxlen=4096)
        self._queue_wait_histogram: "Counter[int]" = Counter()
        self._executions: "deque[float]" = deque(maxlen=4096)
        self._execution_histogram: "Counter[int]" = Counter()
        self._requests = 0
        self._entailments_served = 0
        self._internal_errors = 0
        self._shed = 0
        self._expired_in_queue = 0
        self._cancelled = 0
        self._last_shed_at: Optional[float] = None
        self._started_at = time.monotonic()
        self._closed = False
        self._lane_threads: List[threading.Thread] = []
        for lane in range(lanes):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name="slp-serve-lane-{}".format(lane),
                daemon=True,
            )
            thread.start()
            self._lane_threads.append(thread)

    # -- submission --------------------------------------------------------
    def clamp_timeout(self, timeout: Optional[float]) -> Optional[float]:
        """A request's timeout, clamped to the configured ceiling.

        The watchdog that backs the budget with force is a *pool* property
        sized from ``config.max_seconds``; granting a request more patience
        than that would leave the excess unenforced against a wedged worker.
        """
        if timeout is None:
            return None
        timeout = float(timeout)
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        ceiling = self.config.max_seconds
        return timeout if ceiling is None else min(timeout, ceiling)

    def submit(
        self,
        entailments: Iterable[Entailment],
        timeout: Optional[float] = None,
        priority: int = 0,
        record_proof: Optional[bool] = None,
    ) -> "concurrent.futures.Future[List[BatchOutcome]]":
        """Enqueue a batch of entailments; the future resolves to outcomes.

        Outcomes are in input order, one per entailment —
        :class:`~repro.core.result.ProofResult` or
        :class:`~repro.core.batch.FailureInfo`, exactly as
        :meth:`BatchProver.prove_all` returns them.  Higher ``priority``
        jumps the queue (FIFO among equals).  The future carries an
        exception only on an internal error, never on a per-instance
        failure.

        Raises :class:`ServiceClosed` after :meth:`close`, and
        :class:`ServiceOverloaded` when admission control refuses the work
        (queue at a high-water mark).  Both the closed check and the
        admission accounting happen under the service lock, atomically with
        the enqueue — a submit racing ``close()`` either lands before the
        sentinels (and is drained) or is refused; it can never enqueue
        behind them and hang its future.
        """
        batch = list(entailments)
        request = _Request(
            entailments=batch,
            max_seconds=self.clamp_timeout(timeout),
            record_proof=record_proof,
            priority=int(priority),
            future=concurrent.futures.Future(),
        )
        with self._lock:
            if self._closed:
                raise ServiceClosed("the proof service is closed")
            if (
                self._queued_requests + 1 > self.max_queue_requests
                or self._queued_entailments + len(batch) > self.max_queue_entailments
            ):
                self._shed += 1
                self._last_shed_at = time.monotonic()
                raise ServiceOverloaded(
                    self._retry_after_locked(),
                    "queue full: {} requests / {} entailments queued".format(
                        self._queued_requests, self._queued_entailments
                    ),
                )
            self._queued_requests += 1
            self._queued_entailments += len(batch)
            self._queue.put((0, -request.priority, next(self._sequence), request))
        return request.future

    def _retry_after_locked(self) -> float:
        """Seconds until capacity plausibly frees up (call with lock held).

        Estimate: the recent p50 execution time, times the requests queued
        per lane — roughly one queue generation.  Clamped to [1, 120] so a
        cold service still backs clients off and a deep queue cannot tell
        them to go away for an hour.
        """
        if self._executions:
            p50 = _percentile(sorted(self._executions), 0.50)
            estimate = p50 * (self._queued_requests / max(1, self.lanes))
        else:
            estimate = 1.0
        return min(120.0, max(1.0, estimate))

    # -- the dispatcher lanes ----------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            rank, _, _, request = self._queue.get()
            if rank != 0:  # a shutdown sentinel: sorts after all real work
                break
            now = time.monotonic()
            with self._lock:
                self._queued_requests -= 1
                self._queued_entailments -= len(request.entailments)
            if not request.future.set_running_or_notify_cancel():
                # The client gave up (disconnect) while the request was
                # still queued; drop it before it costs any pool time.
                with self._lock:
                    self._cancelled += 1
                continue
            queue_wait = now - request.enqueued_at
            deadline = request.deadline
            if deadline is not None and now >= deadline:
                # The whole budget burned in the queue: answer structurally,
                # never dispatch.  Cheaper than proving something the client
                # has already been told timed out.
                expired = FailureInfo(
                    kind="timeout",
                    elapsed=queue_wait,
                    detail="deadline expired in queue after {:.2f}s".format(queue_wait),
                )
                outcomes: List[BatchOutcome] = [expired] * len(request.entailments)
                with self._lock:
                    self._expired_in_queue += 1
                    self._requests += 1
                    self._entailments_served += len(outcomes)
                    self._record_latency_locked(queue_wait, 0.0)
                request.future.set_result(outcomes)
                continue
            # Queue-wait counts against the budget: the pool gets only what
            # is left of the clamped timeout.
            remaining = request.max_seconds
            if deadline is not None:
                remaining = max(0.01, deadline - now)
            execute_start = time.monotonic()
            try:
                outcomes = self.batch.prove_all(
                    request.entailments,
                    max_seconds=remaining,
                    record_proof=request.record_proof,
                    priority=request.priority,
                )
            except BaseException as error:  # keep the lane alive
                with self._lock:
                    self._internal_errors += 1
                request.future.set_exception(error)
                continue
            execution = time.monotonic() - execute_start
            with self._lock:
                self._requests += 1
                self._entailments_served += len(outcomes)
                self._record_latency_locked(queue_wait, execution)
            request.future.set_result(outcomes)

    def _record_latency_locked(self, queue_wait: float, execution: float) -> None:
        total = queue_wait + execution
        self._latencies.append(total)
        self._histogram[_bucket_ms(total)] += 1
        self._queue_waits.append(queue_wait)
        self._queue_wait_histogram[_bucket_ms(queue_wait)] += 1
        self._executions.append(execution)
        self._execution_histogram[_bucket_ms(execution)] += 1

    # -- introspection -----------------------------------------------------
    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._queued_requests

    def health(self) -> Dict[str, object]:
        """The admission state machine, JSON-ready.

        ``status`` is one of:

        ``healthy``
            Queue below half of both caps; accepting.
        ``degraded``
            Queue at or past half of either cap; accepting, but clients
            that can defer should.
        ``overloaded``
            Admission control shed a request within the last
            :attr:`overload_hold_seconds`, or a cap is currently reached;
            new submissions are likely to be refused.  HTTP maps this (and
            ``draining``) to ``503``.
        ``draining``
            :meth:`close` has begun: accepted work is being finished, new
            work is refused.
        """
        now = time.monotonic()
        with self._lock:
            queued_requests = self._queued_requests
            queued_entailments = self._queued_entailments
            if self._closed:
                status = "draining"
            elif (
                (self._last_shed_at is not None
                 and now - self._last_shed_at < self.overload_hold_seconds)
                or queued_requests >= self.max_queue_requests
                or queued_entailments >= self.max_queue_entailments
            ):
                status = "overloaded"
            elif (
                queued_requests * 2 >= self.max_queue_requests
                or queued_entailments * 2 >= self.max_queue_entailments
            ):
                status = "degraded"
            else:
                status = "healthy"
            retry_after = self._retry_after_locked() if status == "overloaded" else None
        health: Dict[str, object] = {
            "status": status,
            "accepting": status in ("healthy", "degraded"),
            "queue": {
                "requests": queued_requests,
                "entailments": queued_entailments,
                "max_requests": self.max_queue_requests,
                "max_entailments": self.max_queue_entailments,
            },
            "lanes": self.lanes,
        }
        if retry_after is not None:
            health["retry_after"] = retry_after
        return health

    def stats(self) -> Dict[str, object]:
        """A JSON-ready snapshot of service, cache, pool and store counters."""
        batch_stats = self.batch.statistics
        cache = self.batch.cache
        live_pool = self.batch.pool_counters()
        with self._lock:
            latency = _latency_summary(self._latencies, self._histogram)
            queue_wait = _latency_summary(self._queue_waits, self._queue_wait_histogram)
            execution = _latency_summary(self._executions, self._execution_histogram)
            requests = self._requests
            entailments = self._entailments_served
            internal_errors = self._internal_errors
            shed = self._shed
            expired = self._expired_in_queue
            cancelled = self._cancelled
            queued_requests = self._queued_requests
            queued_entailments = self._queued_entailments
        snapshot: Dict[str, object] = {
            "uptime_seconds": time.monotonic() - self._started_at,
            "state": self.health()["status"],
            "requests": requests,
            "entailments": entailments,
            "internal_errors": internal_errors,
            "shed": shed,
            "expired_in_queue": expired,
            "cancelled": cancelled,
            "queue_depth": queued_requests,
            "queue": {
                "requests": queued_requests,
                "entailments": queued_entailments,
                "max_requests": self.max_queue_requests,
                "max_entailments": self.max_queue_entailments,
            },
            "lanes": self.lanes,
            "pool": {
                "jobs": self.batch.jobs,
                "proved": batch_stats.proved,
                "valid": batch_stats.valid,
                "invalid": batch_stats.invalid,
                "timed_out": batch_stats.timed_out,
                "oom": batch_stats.oom,
                "quarantined": batch_stats.quarantined,
                "retried": batch_stats.retried + live_pool["retried"],
                "respawned_workers": (
                    batch_stats.respawned_workers + live_pool["respawned_workers"]
                ),
                "injected_faults": batch_stats.injected_faults,
            },
            "latency": latency,
            "queue_wait": queue_wait,
            "execution": execution,
        }
        if cache is not None:
            snapshot["cache"] = {
                "entries": len(cache),
                "hits": cache.hits,
                "misses": cache.misses,
                "uncacheable": cache.uncacheable,
                "disk_hits": cache.disk_hits,
                "hit_rate": cache.hit_rate,
                "deduplicated": batch_stats.deduplicated,
            }
        if isinstance(cache, PersistentProofCache):
            disk = cache.disk
            store: Dict[str, object] = {
                "persist_errors": cache.persist_errors,
                "records_live": len(disk),
            }
            store.update(disk.statistics.to_json())
            if isinstance(disk, ShardedProofStore):
                store["shards"] = len(disk.shards)
            else:
                store["shards"] = 1
            snapshot["store"] = store
        return snapshot

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Drain the queue, then release the pool and every store shard.

        Everything accepted by :meth:`submit` before the call is answered
        (the sentinels sort after all real entries, one per lane); new
        submissions are refused with :class:`ServiceClosed`.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._lane_threads:
            self._queue.put((1, 0, next(self._sequence), None))
        for thread in self._lane_threads:
            thread.join()
        # Defensive sweep: the locked submit/close handshake means no real
        # entry can land behind the sentinels, but if one ever did, resolve
        # it structurally instead of hanging its future forever.
        while True:
            try:
                rank, _, _, request = self._queue.get_nowait()
            except queue.Empty:
                break
            if rank == 0 and request is not None and not request.future.done():
                if request.future.set_running_or_notify_cancel():
                    request.future.set_exception(
                        ServiceClosed("the proof service closed before dispatch")
                    )
        cache = self.batch.cache
        self.batch.close()
        if isinstance(cache, PersistentProofCache):
            cache.close()

    def __enter__(self) -> "ProofService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
