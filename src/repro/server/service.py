"""The proof service: a priority queue in front of a warm batch prover.

:class:`ProofService` owns the state that makes the server worth running —
one :class:`~repro.core.batch.BatchProver` whose worker pool stays warm and
whose cache (optionally a sharded :class:`~repro.core.cache.
PersistentProofCache`) accumulates across requests — and exposes exactly one
entry point, :meth:`ProofService.submit`, which enqueues a request and
returns a :class:`concurrent.futures.Future`.

The batch machinery is synchronous and must be driven from one thread (the
pool's dispatch bookkeeping is not re-entrant), so requests funnel through a
``queue.PriorityQueue`` consumed by a single dispatcher thread.  Priority
entries sort as ``(0, -priority, seq)``: higher ``priority`` first, FIFO
within a priority class.  The shutdown sentinel ranks as ``(1, 0, 0)`` —
after *every* real entry — which is what makes :meth:`close` a drain: work
accepted before shutdown is finished and answered, then the pool and every
store shard are released.

Per-request ``timeout`` rides the batch layer's per-task overrides.  The
pool watchdog stays derived from the *configured* ``max_seconds`` (it is a
pool property, not a task property), so requested timeouts are clamped to
the configured ceiling — a request can ask for less patience than the
server has, never more.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import queue
import threading
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.batch import BatchOutcome, BatchProver
from repro.core.cache import PersistentProofCache, ProofCache
from repro.core.config import ProverConfig
from repro.core.store import ShardedProofStore
from repro.logic.formula import Entailment

__all__ = ["ProofService", "DEFAULT_SHARDS"]

DEFAULT_SHARDS = 4

# Latency histogram buckets: powers of two in milliseconds.  The last bucket
# is open-ended; interactive traffic lives in the first few.
_BUCKET_CAP_MS = 65536


def _bucket_ms(elapsed_seconds: float) -> int:
    """The histogram bucket (upper bound, in ms) a latency falls into."""
    ms = elapsed_seconds * 1000.0
    upper = 1
    while upper < ms and upper < _BUCKET_CAP_MS:
        upper *= 2
    return upper


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """The q-quantile (0 < q <= 1) of an already-sorted non-empty sequence."""
    index = max(0, min(len(sorted_values) - 1, int(round(q * len(sorted_values))) - 1))
    return sorted_values[index]


@dataclass
class _Request:
    """One enqueued ``/prove`` call waiting for the dispatcher."""

    entailments: List[Entailment]
    max_seconds: Optional[float]
    record_proof: Optional[bool]
    future: "concurrent.futures.Future[List[BatchOutcome]]"
    enqueued_at: float = field(default_factory=time.perf_counter)


class ProofService:
    """Long-lived prover state plus the queue that feeds it.

    Parameters
    ----------
    config:
        Prover configuration for the warm pool.  Its ``max_seconds`` is the
        *ceiling* for per-request timeouts (requests are clamped to it) and
        what the hard watchdog budget derives from.  The service defaults
        ``record_proof`` off and turns it on per request — recording every
        proof just to discard it would tax the common no-proof path.
    jobs:
        Worker processes for the underlying :class:`BatchProver` (``1`` runs
        in-process; the dispatcher thread then does the proving itself).
    store_path:
        Back the cache with a persistent store at this path; ``None`` keeps
        the cache memory-only (still warm across requests, lost on exit).
    shards:
        Store files to split the persistent tier over (ignored without
        ``store_path``).  Values > 1 use a :class:`ShardedProofStore` so
        concurrent processes sharing the path lock per shard, not globally.
    """

    def __init__(
        self,
        config: Optional[ProverConfig] = None,
        jobs: int = 1,
        store_path: Optional[str] = None,
        shards: int = DEFAULT_SHARDS,
        cache_entries: int = 4096,
        retries: int = 2,
        grace_factor: float = 2.0,
        fsync: bool = True,
    ):
        self.config = config if config is not None else ProverConfig(record_proof=False)
        if store_path is not None:
            cache: ProofCache = PersistentProofCache(
                store_path, max_entries=cache_entries, fsync=fsync, shards=shards
            )
        else:
            cache = ProofCache(max_entries=cache_entries)
        self.batch = BatchProver(
            self.config,
            jobs=jobs,
            cache=cache,
            retries=retries,
            grace_factor=grace_factor,
        )
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._sequence = itertools.count()
        self._lock = threading.Lock()
        self._latencies: "deque[float]" = deque(maxlen=4096)
        self._histogram: "Counter[int]" = Counter()
        self._requests = 0
        self._entailments_served = 0
        self._internal_errors = 0
        self._started_at = time.monotonic()
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="slp-serve-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # -- submission --------------------------------------------------------
    def clamp_timeout(self, timeout: Optional[float]) -> Optional[float]:
        """A request's timeout, clamped to the configured ceiling.

        The watchdog that backs the budget with force is a *pool* property
        sized from ``config.max_seconds``; granting a request more patience
        than that would leave the excess unenforced against a wedged worker.
        """
        if timeout is None:
            return None
        timeout = float(timeout)
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        ceiling = self.config.max_seconds
        return timeout if ceiling is None else min(timeout, ceiling)

    def submit(
        self,
        entailments: Iterable[Entailment],
        timeout: Optional[float] = None,
        priority: int = 0,
        record_proof: Optional[bool] = None,
    ) -> "concurrent.futures.Future[List[BatchOutcome]]":
        """Enqueue a batch of entailments; the future resolves to outcomes.

        Outcomes are in input order, one per entailment —
        :class:`~repro.core.result.ProofResult` or
        :class:`~repro.core.batch.FailureInfo`, exactly as
        :meth:`BatchProver.prove_all` returns them.  Higher ``priority``
        jumps the queue (FIFO among equals).  The future carries an
        exception only on an internal error, never on a per-instance
        failure.
        """
        if self._closed:
            raise RuntimeError("the proof service is closed")
        request = _Request(
            entailments=list(entailments),
            max_seconds=self.clamp_timeout(timeout),
            record_proof=record_proof,
            future=concurrent.futures.Future(),
        )
        self._queue.put((0, -int(priority), next(self._sequence), request))
        return request.future

    # -- the dispatcher ----------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            rank, _, _, request = self._queue.get()
            if rank != 0:  # the shutdown sentinel sorts after all real work
                break
            if not request.future.set_running_or_notify_cancel():
                continue
            try:
                outcomes = self.batch.prove_all(
                    request.entailments,
                    max_seconds=request.max_seconds,
                    record_proof=request.record_proof,
                )
            except BaseException as error:  # keep the dispatcher alive
                with self._lock:
                    self._internal_errors += 1
                request.future.set_exception(error)
                continue
            elapsed = time.perf_counter() - request.enqueued_at
            with self._lock:
                self._requests += 1
                self._entailments_served += len(outcomes)
                self._latencies.append(elapsed)
                self._histogram[_bucket_ms(elapsed)] += 1
            request.future.set_result(outcomes)

    # -- introspection -----------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def stats(self) -> Dict[str, object]:
        """A JSON-ready snapshot of service, cache, pool and store counters."""
        batch_stats = self.batch.statistics
        cache = self.batch.cache
        with self._lock:
            latencies = sorted(self._latencies)
            histogram = {
                "<={}ms".format(upper): count
                for upper, count in sorted(self._histogram.items())
            }
            requests = self._requests
            entailments = self._entailments_served
            internal_errors = self._internal_errors
        latency: Dict[str, object] = {"count": len(latencies), "histogram": histogram}
        if latencies:
            latency["p50_ms"] = _percentile(latencies, 0.50) * 1000.0
            latency["p90_ms"] = _percentile(latencies, 0.90) * 1000.0
            latency["p99_ms"] = _percentile(latencies, 0.99) * 1000.0
        snapshot: Dict[str, object] = {
            "uptime_seconds": time.monotonic() - self._started_at,
            "requests": requests,
            "entailments": entailments,
            "internal_errors": internal_errors,
            "queue_depth": self.queue_depth,
            "pool": {
                "jobs": self.batch.jobs,
                "proved": batch_stats.proved,
                "valid": batch_stats.valid,
                "invalid": batch_stats.invalid,
                "timed_out": batch_stats.timed_out,
                "oom": batch_stats.oom,
                "quarantined": batch_stats.quarantined,
                "retried": batch_stats.retried,
                "respawned_workers": batch_stats.respawned_workers,
            },
            "latency": latency,
        }
        if cache is not None:
            snapshot["cache"] = {
                "entries": len(cache),
                "hits": cache.hits,
                "misses": cache.misses,
                "uncacheable": cache.uncacheable,
                "disk_hits": cache.disk_hits,
                "hit_rate": cache.hit_rate,
                "deduplicated": batch_stats.deduplicated,
            }
        if isinstance(cache, PersistentProofCache):
            disk = cache.disk
            store: Dict[str, object] = {
                "persist_errors": cache.persist_errors,
                "records_live": len(disk),
            }
            store.update(disk.statistics.to_json())
            if isinstance(disk, ShardedProofStore):
                store["shards"] = len(disk.shards)
            else:
                store["shards"] = 1
            snapshot["store"] = store
        return snapshot

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Drain the queue, then release the pool and every store shard.

        Everything accepted by :meth:`submit` before the call is answered
        (the sentinel sorts after all real entries); new submissions are
        refused.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put((1, 0, 0, None))
        self._dispatcher.join()
        cache = self.batch.cache
        self.batch.close()
        if isinstance(cache, PersistentProofCache):
            cache.close()

    def __enter__(self) -> "ProofService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
