"""The entailment service: a long-lived prover behind an HTTP/JSON API.

Every ``slp`` invocation pays process startup, pool spawn and a cold
in-memory cache; the ~38-80x leverage of a warm proof cache dies with the
process.  This package keeps the expensive state alive: one
:class:`~repro.core.batch.BatchProver` (warm supervised worker pool, alpha-
equivalence memoisation) and one persistent proof store shared across
requests, fronted by a small stdlib-only asyncio HTTP server.

Layers, front to back:

- :mod:`repro.server.http` — :class:`ProofServer`, a minimal HTTP/1.1
  server over ``asyncio.start_server`` (no web framework; the wire format
  is JSON).  Endpoints: ``POST /prove``, ``GET /healthz``, ``GET /stats``.
- :mod:`repro.server.service` — :class:`ProofService`, the bridge between
  the async frontend and the synchronous batch machinery: a priority queue
  drained by a dispatcher thread that drives ``BatchProver.prove_all``.
- :mod:`repro.server.cli` — ``slp serve`` argument parsing, signal-driven
  graceful shutdown.

Failure domains stay exactly the ones the batch layer already defines: a
crashing worker is respawned (request sees ``crashed`` only after retries
are exhausted), a timeout is an honest per-instance verdict, a broken disk
store degrades the cache to memory-only — none of them take the service
down.
"""

from repro.server.http import ProofServer
from repro.server.service import ProofService

__all__ = ["ProofServer", "ProofService"]
