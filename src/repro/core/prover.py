"""The SLP entailment-checking algorithm (Figure 3 of the paper).

The algorithm interleaves four kinds of inference:

1. **superposition** saturates the pure clauses collected so far and either
   derives the empty clause (the entailment is valid) or yields an equality
   model ``<R, g>``;
2. **normalisation** uses the model to rewrite the left-hand spatial formula
   to its normal form;
3. **well-formedness** rules turn inconsistencies of the normalised formula
   into new pure clauses, feeding them back to superposition (the inner loop);
4. once the left-hand formula is well-formed, **unfolding** tries to rewrite
   the right-hand formula into it; success yields a new pure clause via
   spatial resolution (the outer loop iterates), failure yields a
   counterexample.

The loop terminates because every iteration adds at least one genuinely new
pure clause over the finite vocabulary of the entailment.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.config import ProverConfig
from repro.core.proof import Proof, ProofTrace
from repro.core.result import ProofResult, ProverStatistics, Verdict
from repro.logic.clauses import Clause
from repro.logic.cnf import cnf
from repro.logic.formula import Entailment
from repro.logic.ordering import TermOrder, default_order
from repro.semantics.counterexample import Counterexample, build_counterexample
from repro.spatial.normalization import normalize_clause, normalize_clause_fast
from repro.spatial.unfolding import UnfoldingOutcome, unfold
from repro.spatial.wellformedness import well_formedness_consequences
from repro.superposition.model import (
    EqualityModel,
    IncrementalModelGenerator,
    ModelGenerationError,
    generate_model,
)
from repro.superposition.saturation import DeadlineExceeded, SaturationEngine


class ProverInternalError(RuntimeError):
    """Raised when an invariant of the algorithm is violated (indicates a bug)."""


class ProverTimeout(RuntimeError):
    """Raised when a ``prove()`` call exceeds ``ProverConfig.max_seconds``.

    The deadline is threaded into the saturation engine's given-clause loop
    (checked before every given clause), so the overrun is bounded by one
    inference step, not a whole saturation round.

    ``statistics`` carries the partial :class:`ProverStatistics` at the
    moment of interruption — iterations run, clauses generated, wall-clock
    consumed — so timed-out instances are visible in batch accounting
    instead of vanishing into an unqualified exception.
    """

    def __init__(
        self,
        entailment: Entailment,
        budget_seconds: float,
        statistics: Optional[ProverStatistics] = None,
    ):
        super().__init__(
            "proving {} exceeded the {:.3f}s budget".format(entailment, budget_seconds)
        )
        self.entailment = entailment
        self.budget_seconds = budget_seconds
        self.statistics = statistics


class Prover:
    """The SLP theorem prover for separation-logic entailments with list segments.

    A prover instance is stateless between calls; it can be reused for many
    entailments (as the benchmark harness does).
    """

    def __init__(self, config: Optional[ProverConfig] = None):
        self.config = config or ProverConfig()

    # ------------------------------------------------------------------
    def prove(self, entailment: Entailment) -> ProofResult:
        """Decide the validity of ``entailment``.

        Returns a :class:`~repro.core.result.ProofResult` carrying either a
        proof (for valid entailments, when proof recording is enabled) or a
        verified stack/heap counterexample (for invalid ones).
        """
        start = time.perf_counter()
        statistics = ProverStatistics()
        deadline = (
            start + self.config.max_seconds if self.config.max_seconds is not None else None
        )

        embedding = cnf(entailment)
        order = default_order(entailment.constants())
        engine = SaturationEngine(
            order,
            max_clauses=self.config.max_saturation_clauses,
            use_index=self.config.use_clause_index,
            use_kernel=self.config.use_int_kernel,
            use_unit_rewrite=self.config.use_unit_rewrite,
            index_threshold=self.config.index_threshold,
            use_bitset=self.config.use_bitset_subsumption,
        )
        model_generator = (
            IncrementalModelGenerator(
                order,
                verify=self.config.verify_model,
                dense=self.config.use_dense_models,
            )
            if self.config.incremental_models
            else None
        )
        trace = ProofTrace() if self.config.record_proof else None
        # Arm the cooperative in-loop deadline: the engine checks the clock
        # before every given clause, so a budget fires within a chunk rather
        # than after an unbounded round of work.
        engine.set_deadline(deadline)

        if trace is not None:
            for clause in embedding.all_clauses():
                trace.record_input(clause)

        engine.add_clauses(embedding.pure_clauses)

        verdict: Optional[Verdict] = None
        proof: Optional[Proof] = None
        counterexample: Optional[Counterexample] = None

        # Without a trace the normalisation steps are only *counted*, so the
        # one-pass fast path applies; the stepwise path exists to materialise
        # the per-step records a proof tree needs.  The well-formedness
        # consequences are a pure function of the normalised clause and the
        # inner loop can reproduce the same normal form — memoise them.
        consequence_cache: dict = {}

        def normalized(side: Clause, model: EqualityModel):
            if trace is None:
                return normalize_clause_fast(side, model)
            result, steps = normalize_clause(side, model)
            self._trace_normalization(trace, steps)
            return result, len(steps)

        def consequences_of(positive: Clause):
            hit = consequence_cache.get(positive)
            if hit is None:
                hit = tuple(well_formedness_consequences(positive))
                consequence_cache[positive] = hit
            return hit

        for _ in range(self.config.max_iterations):
            statistics.iterations += 1
            if deadline is not None and time.perf_counter() > deadline:
                self._timeout(entailment, statistics, engine, start)

            # ---------------- inner loop: saturate + normalise + well-formedness
            model: Optional[EqualityModel] = None
            positive: Optional[Clause] = None
            refuted = False
            while True:
                model = self._saturate_and_generate_model(
                    engine, order, statistics, model_generator, deadline, entailment, start
                )
                if model is None:
                    refuted = True
                    break
                positive, step_count = normalized(embedding.positive_spatial, model)
                statistics.normalization_steps += step_count
                consequences = consequences_of(positive)
                fresh = [
                    consequence
                    for consequence in consequences
                    if not engine.is_known(consequence.conclusion)
                ]
                statistics.wellformedness_consequences += len(fresh)
                if trace is not None:
                    for consequence in consequences:
                        trace.record(
                            consequence.conclusion,
                            consequence.rule,
                            (consequence.premise,),
                        )
                if not fresh:
                    break
                engine.add_clauses(consequence.conclusion for consequence in fresh)

            if refuted:
                verdict = Verdict.VALID
                if trace is not None:
                    self._trace_saturation(trace, engine)
                    proof = trace.build_refutation()
                break

            assert model is not None and positive is not None

            # ---------------- line 11: does the model satisfy the right-hand pure part?
            if not self._model_satisfies_rhs_pure(model, entailment):
                counterexample = build_counterexample(
                    entailment,
                    model,
                    positive,
                    outcome=None,
                    verify=self.config.verify_counterexamples,
                )
                verdict = Verdict.INVALID
                break

            # ---------------- lines 12-14: normalise the right-hand side and unfold
            negative, neg_step_count = normalized(embedding.negative_spatial, model)
            statistics.normalization_steps += neg_step_count

            outcome = unfold(positive, negative)
            statistics.unfolding_steps += len(outcome.steps)

            if not outcome.success:
                counterexample = build_counterexample(
                    entailment,
                    model,
                    positive,
                    outcome=outcome,
                    verify=self.config.verify_counterexamples,
                )
                verdict = Verdict.INVALID
                break

            derived = outcome.derived_pure
            assert derived is not None
            if engine.is_known(derived):
                # Line 14 of Figure 3: no new pure clause was discovered, so the
                # clause set has reached a fixpoint and a counterexample exists.
                # (For a correct saturation this branch is unreachable when the
                # unfolding succeeds — see Lemma 4.4 — but following the paper's
                # algorithm keeps the prover robust: the counterexample below is
                # verified against the exact semantics.)
                counterexample = build_counterexample(
                    entailment,
                    model,
                    positive,
                    outcome=None,
                    verify=self.config.verify_counterexamples,
                )
                verdict = Verdict.INVALID
                break
            if trace is not None:
                self._trace_unfolding(trace, outcome)
            engine.add_clauses([derived])
            # Keep the statistic in sync with the engine: the clause just
            # queued is generated work even if the next event is a timeout or
            # an immediate refutation inside ``add_clauses`` itself.
            statistics.generated_clauses = engine.generated_count
        else:
            raise ProverInternalError(
                "the prover did not terminate within {} iterations".format(
                    self.config.max_iterations
                )
            )

        statistics.elapsed_seconds = time.perf_counter() - start
        assert verdict is not None
        return ProofResult(
            verdict=verdict,
            entailment=entailment,
            proof=proof,
            counterexample=counterexample,
            statistics=statistics,
        )

    # ------------------------------------------------------------------
    def _timeout(
        self,
        entailment: Entailment,
        statistics: ProverStatistics,
        engine: SaturationEngine,
        start: float,
    ) -> None:
        """Raise :class:`ProverTimeout` carrying the partial statistics."""
        statistics.generated_clauses = engine.generated_count
        statistics.elapsed_seconds = time.perf_counter() - start
        raise ProverTimeout(entailment, self.config.max_seconds, statistics)

    def _saturate_and_generate_model(
        self,
        engine: SaturationEngine,
        order: TermOrder,
        statistics: ProverStatistics,
        model_generator: Optional[IncrementalModelGenerator] = None,
        deadline: Optional[float] = None,
        entailment: Optional[Entailment] = None,
        start: float = 0.0,
    ) -> Optional[EqualityModel]:
        """Saturate (lazily) until a verified equality model exists, or refute.

        Returns ``None`` when the empty clause is derived.  With model
        verification enabled (the default) the engine saturates in chunks and
        stops as soon as the candidate model satisfies every known pure clause
        and has well-behaved generating clauses; otherwise it saturates fully
        before generating the model, which is the textbook behaviour.
        """
        lazy = self.config.verify_model
        while True:
            if deadline is not None and time.perf_counter() > deadline:
                self._timeout(entailment, statistics, engine, start)
            chunk = self.config.saturation_chunk if lazy else None
            try:
                saturation = engine.saturate(max_given=chunk)
            except DeadlineExceeded:
                self._timeout(entailment, statistics, engine, start)
            statistics.saturation_rounds += 1
            statistics.generated_clauses = engine.generated_count
            if saturation.refuted:
                return None
            try:
                if model_generator is not None:
                    return model_generator.model_for_engine(engine)
                return generate_model(
                    engine.known_pure_clauses(), order, verify=self.config.verify_model
                )
            except ModelGenerationError:
                if saturation.complete:
                    # The set is fully saturated and the candidate still fails:
                    # this would contradict the completeness theorem, so it
                    # indicates a genuine bug rather than insufficient work.
                    raise
                # Not saturated yet: keep working and try again.
                continue

    @staticmethod
    def _model_satisfies_rhs_pure(model: EqualityModel, entailment: Entailment) -> bool:
        """The line-11 test ``R |~ Pi'``."""
        return all(
            model.satisfies_literal(literal.atom, literal.positive)
            for literal in entailment.rhs_pure
        )

    @staticmethod
    def _trace_normalization(trace: ProofTrace, steps) -> None:
        for step in steps:
            premises = [step.before]
            if step.pure_premise is not None:
                premises.append(step.pure_premise)
            trace.record(step.after, step.rule, premises)

    @staticmethod
    def _trace_unfolding(trace: ProofTrace, outcome: UnfoldingOutcome) -> None:
        for step in outcome.steps:
            premises = [step.before]
            if step.positive_premise is not None:
                premises.append(step.positive_premise)
            trace.record(step.after, step.rule, premises, step.description)

    @staticmethod
    def _trace_saturation(trace: ProofTrace, engine: SaturationEngine) -> None:
        for conclusion, inference in engine.derivations.items():
            trace.record(conclusion, inference.rule, inference.premises)


def prove(entailment: Entailment, config: Optional[ProverConfig] = None) -> ProofResult:
    """Convenience wrapper: check one entailment with a fresh :class:`Prover`."""
    return Prover(config).prove(entailment)
