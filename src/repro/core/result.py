"""Results returned by the prover."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.proof import Proof
from repro.logic.formula import Entailment
from repro.semantics.counterexample import Counterexample


class Verdict(enum.Enum):
    """The prover's answer for an entailment."""

    VALID = "valid"
    INVALID = "invalid"

    def __str__(self) -> str:
        return self.value


@dataclass
class ProverStatistics:
    """Work counters collected during one ``prove`` call."""

    iterations: int = 0
    saturation_rounds: int = 0
    generated_clauses: int = 0
    normalization_steps: int = 0
    wellformedness_consequences: int = 0
    unfolding_steps: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class ProofResult:
    """The outcome of checking one entailment.

    A valid entailment carries a :class:`~repro.core.proof.Proof` (when proof
    recording is enabled); an invalid one carries a verified
    :class:`~repro.semantics.counterexample.Counterexample`.  Results served
    by the proof cache are marked ``from_cache`` (their proof/counterexample
    was proved on an alpha-equivalent entailment and renamed back).
    """

    verdict: Verdict
    entailment: Entailment
    proof: Optional[Proof] = None
    counterexample: Optional[Counterexample] = None
    statistics: ProverStatistics = field(default_factory=ProverStatistics)
    from_cache: bool = False

    @property
    def is_valid(self) -> bool:
        """True when the entailment was proved valid."""
        return self.verdict is Verdict.VALID

    @property
    def is_invalid(self) -> bool:
        """True when a counterexample was found."""
        return self.verdict is Verdict.INVALID

    def __bool__(self) -> bool:
        return self.is_valid

    def __str__(self) -> str:
        return "{}: {}".format(self.verdict, self.entailment)
