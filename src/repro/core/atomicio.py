"""Atomic file writes: tempfile + fsync + rename, so readers never see a tear.

Every artifact this repository emits — ``BENCH_saturation.json``, fuzz
campaign summaries, corpus reproducers, checkpoint metadata — is consumed by
something downstream: CI gates parse the bench file, ``--resume`` replays
journals, the tier-1 suite replays the corpus.  A plain ``open(path, "w")``
crashed halfway through leaves a truncated file that the consumer then
misparses (or, worse, half-parses).  The classic fix is used throughout:

1. write the full content to a temporary file *in the same directory* (so the
   final rename cannot cross a filesystem boundary),
2. flush and ``fsync`` the temporary file (the data is durable before it can
   become visible),
3. ``os.replace`` it over the destination (atomic on POSIX: readers see the
   old complete file or the new complete file, never a mixture),
4. best-effort ``fsync`` the directory (the *rename itself* is durable).

Failures during step 1-2 leave the destination untouched; the temporary file
is removed on the way out.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

__all__ = ["atomic_write_text", "atomic_write_json", "fsync_directory"]


def fsync_directory(directory: str) -> None:
    """Flush a directory's metadata (new names, renames) to stable storage.

    Best-effort: platforms that cannot ``open`` a directory (Windows) or do
    not support fsyncing one simply skip it — the write itself is still
    atomic, only its durability across a whole-machine crash is weaker.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str, content: str, encoding: str = "utf-8") -> None:
    """Write ``content`` to ``path`` atomically (tempfile + fsync + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(content)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    fsync_directory(directory)


def atomic_write_json(path: str, payload: Any, indent: int = 2, sort_keys: bool = False) -> None:
    """Serialise ``payload`` as JSON and write it atomically (trailing newline)."""
    atomic_write_text(path, json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n")
