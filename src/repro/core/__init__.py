"""The core of the prover: the Figure 3 algorithm, proofs, results and batching."""

from repro.core.batch import BatchProver, BatchStatistics, default_jobs
from repro.core.cache import CachingProver, ProofCache
from repro.core.config import ProverConfig
from repro.core.proof import Proof, ProofStep, ProofTrace
from repro.core.prover import Prover, ProverInternalError, ProverTimeout, prove
from repro.core.result import ProofResult, ProverStatistics, Verdict

__all__ = [
    "BatchProver",
    "BatchStatistics",
    "CachingProver",
    "ProofCache",
    "ProverConfig",
    "Proof",
    "ProofStep",
    "ProofTrace",
    "Prover",
    "ProverInternalError",
    "ProverTimeout",
    "prove",
    "ProofResult",
    "ProverStatistics",
    "Verdict",
    "default_jobs",
]
