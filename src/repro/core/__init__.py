"""The core of the prover: the Figure 3 algorithm, proofs and results."""

from repro.core.config import ProverConfig
from repro.core.proof import Proof, ProofStep, ProofTrace
from repro.core.prover import Prover, ProverInternalError, prove
from repro.core.result import ProofResult, ProverStatistics, Verdict

__all__ = [
    "ProverConfig",
    "Proof",
    "ProofStep",
    "ProofTrace",
    "Prover",
    "ProverInternalError",
    "prove",
    "ProofResult",
    "ProverStatistics",
    "Verdict",
]
