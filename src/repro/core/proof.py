"""Proof recording and reconstruction (the Figure 4 proof trees).

The prover records every inference it performs — superposition steps on pure
clauses, normalisation, well-formedness and unfolding steps on spatial clauses
— in a :class:`ProofTrace`.  When the empty clause is derived, the trace is
turned into a :class:`Proof`: a numbered, topologically sorted derivation in
which every step names the rule applied and the indices of its premises, i.e.
a linearised form of the proof tree shown in Figure 4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.clauses import Clause, EMPTY_CLAUSE
from repro.logic.printer import format_clause

#: Rule name used for clauses that come straight from the clausal embedding.
INPUT_RULE = "cnf"


@dataclass(frozen=True)
class ProofStep:
    """One line of a linearised proof."""

    index: int
    clause: Clause
    rule: str
    premises: Tuple[int, ...] = ()
    note: str = ""

    def __str__(self) -> str:
        premise_text = ", ".join(str(p) for p in self.premises)
        rule_text = self.rule if not premise_text else "{}: {}".format(self.rule, premise_text)
        return "{:>3}. {:<60} [{}]".format(self.index, format_clause(self.clause), rule_text)


@dataclass(frozen=True)
class TraceRecord:
    """How one clause was derived: the rule and the premise clauses."""

    conclusion: Clause
    rule: str
    premises: Tuple[Clause, ...] = ()
    note: str = ""


class ProofTrace:
    """An append-only log of every inference performed during a proof attempt.

    The first record for a clause wins: if a clause is later re-derived by a
    different inference, the original derivation is kept, which keeps the
    reconstructed proof well-founded.
    """

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []
        self._by_clause: Dict[Clause, TraceRecord] = {}

    def record(
        self,
        conclusion: Clause,
        rule: str,
        premises: Sequence[Clause] = (),
        note: str = "",
    ) -> None:
        """Log the derivation of ``conclusion`` from ``premises`` by ``rule``."""
        record = TraceRecord(conclusion, rule, tuple(premises), note)
        self._records.append(record)
        if conclusion not in self._by_clause:
            self._by_clause[conclusion] = record

    def record_input(self, clause: Clause, note: str = "") -> None:
        """Log an input clause (a member of ``cnf(E)``)."""
        self.record(clause, INPUT_RULE, (), note)

    def derivation_of(self, clause: Clause) -> Optional[TraceRecord]:
        """The recorded derivation of ``clause``, if any."""
        return self._by_clause.get(clause)

    def __len__(self) -> int:
        return len(self._records)

    # -- reconstruction -------------------------------------------------------
    def build_refutation(self, root: Clause = EMPTY_CLAUSE) -> "Proof":
        """Reconstruct the sub-derivation ending in ``root`` (usually the empty clause)."""
        numbering: Dict[Clause, int] = {}
        steps: List[ProofStep] = []

        def visit(clause: Clause, path: Tuple[Clause, ...]) -> int:
            if clause in numbering:
                return numbering[clause]
            record = self._by_clause.get(clause)
            if record is None or clause in path:
                index = len(steps) + 1
                numbering[clause] = index
                steps.append(ProofStep(index, clause, INPUT_RULE))
                return index
            premise_indices = tuple(
                visit(premise, path + (clause,)) for premise in record.premises
            )
            index = len(steps) + 1
            numbering[clause] = index
            steps.append(ProofStep(index, clause, record.rule, premise_indices, record.note))
            return index

        visit(root, ())
        return Proof(tuple(steps))


@dataclass(frozen=True)
class Proof:
    """A linearised SI derivation (ending, for refutations, in the empty clause)."""

    steps: Tuple[ProofStep, ...]

    @property
    def conclusion(self) -> Clause:
        """The clause established by the last step."""
        return self.steps[-1].clause

    @property
    def is_refutation(self) -> bool:
        """True when the proof derives the empty clause."""
        return self.conclusion.is_empty

    def rules_used(self) -> Tuple[str, ...]:
        """The distinct rule names appearing in the proof, in order of first use."""
        seen: List[str] = []
        for step in self.steps:
            if step.rule not in seen:
                seen.append(step.rule)
        return tuple(seen)

    def step_for(self, clause: Clause) -> Optional[ProofStep]:
        """The step deriving ``clause``, if present in the proof."""
        for step in self.steps:
            if step.clause == clause:
                return step
        return None

    def format(self) -> str:
        """Render the proof as numbered lines (a linearised Figure 4)."""
        return "\n".join(str(step) for step in self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def __str__(self) -> str:
        return self.format()
