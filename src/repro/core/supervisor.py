"""A supervised worker pool with liveness tracking, budgets and quarantine.

``multiprocessing.Pool`` hands chunks of work to workers and trusts them to
come back.  A worker killed mid-chunk — OOM killer, segfault in a native
kernel, stray SIGTERM — takes its whole chunk down with it and, depending on
timing, hangs the consuming iterator.  That is fine for throwaway scripts and
fatal for a batch prover whose contract is *one structured outcome per task,
always*.

:class:`SupervisedPool` replaces the chunked pool with per-task dispatch over
raw ``multiprocessing.Process`` workers and explicit duplex pipes:

* **Liveness** — the coordinator waits on every worker pipe at once
  (:func:`multiprocessing.connection.wait`); a dead worker surfaces as EOF the
  moment the kernel closes its end, not after a join timeout expires.
* **Retry** — a task whose worker died is re-dispatched to a respawned worker
  with capped exponential backoff.  A task that keeps killing workers is
  *quarantined* after ``retries`` re-dispatches and surfaced as a structured
  :class:`FailureInfo` instead of poisoning the pool forever.
* **Hard budgets** — an optional coordinator-side watchdog kills any worker
  that holds a task longer than ``task_timeout`` (the cooperative deadline
  times a grace factor, in the batch prover's use).  The kill is surfaced as
  a ``timeout`` failure; the worker is respawned.
* **Liveness acks** — workers ack every task (``("started", task_id)``)
  before running it and report ``("ready", pid)`` after initialising.  A
  dispatched task that is never acked within ``ack_timeout`` is retried on a
  respawned worker instead of burning its whole watchdog budget; a worker
  that never reports ready within ``init_timeout`` is respawned instead of
  silently shrinking the pool.  Both close the gap left by a worker that is
  alive but wedged — e.g. a child forked from a multi-threaded coordinator
  at an unlucky moment — which produces neither a result nor an EOF.
* **Warm workers** — workers survive across :meth:`run` calls, so per-worker
  initialisation (warming a prover's caches) is paid once per worker
  lifetime, exactly like the pool it replaces.

The pool knows nothing about proving.  ``initializer(*init_args)`` runs once
per worker process and returns a ``task_fn(payload, index, attempt) ->
(status, body)`` closure; ``status`` is ``"ok"`` (``body`` is the result) or
a cooperative failure ``"timeout"``/``"oom"`` (``body`` is a partial-progress
payload / detail).  Exceptions escaping ``task_fn`` — and replies that cannot
be pickled back — become retryable errors.  Cooperative timeouts and OOMs
are *not* retried: under the same budget the same instance exhausts it again.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import os
import queue as _queue_module
import socket
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_on_connections
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["FailureInfo", "SupervisedPool"]

#: Statuses a worker's task function may return cooperatively.
_TASK_STATUSES = ("ok", "timeout", "oom")

#: Consecutive worker-initialisation failures after which the pool declares
#: itself broken instead of respawning forever (e.g. a memory limit so tight
#: the interpreter cannot even warm up).
_INIT_FAILURE_SLACK = 2


@dataclass(frozen=True)
class FailureInfo:
    """The structured outcome of a task that produced no result.

    Replaces the old ``None``-means-timeout contract of the batch layer:
    every undelivered verdict now says *why* it is missing, how many attempts
    were made, and how much wall-clock the attempts consumed.  Instances are
    falsy and never valid/invalid, so sloppy consumers fail safe.

    ``kind`` is one of:

    ``"crash"``
        The worker died (or the task raised) and the pool was configured
        with no retries — a single failure is final.
    ``"retries_exhausted"``
        The task failed ``retries + 1`` attempts in a row and was
        quarantined.
    ``"timeout"``
        The cooperative deadline fired inside the prover, or the hard
        watchdog killed a worker that sat on the task past its grace budget
        (``detail`` distinguishes the two).  ``statistics`` carries the
        partial :class:`~repro.core.result.ProverStatistics` when the
        cooperative path fired.
    ``"oom"``
        The task exceeded ``ProverConfig.max_memory_mb`` (``MemoryError``
        under ``RLIMIT_AS``).
    """

    kind: str
    attempts: int = 1
    elapsed: float = 0.0
    detail: str = ""
    injected: bool = False
    statistics: Any = None

    # Mirror just enough of ProofResult's surface that a consumer asking the
    # usual questions gets the safe answer instead of an AttributeError.
    @property
    def is_valid(self) -> bool:
        return False

    @property
    def is_invalid(self) -> bool:
        return False

    @property
    def from_cache(self) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def summary(self) -> str:
        text = self.kind
        if self.attempts > 1:
            text += " after {} attempts".format(self.attempts)
        if self.detail:
            text += " ({})".format(self.detail)
        if self.injected:
            text += " [injected]"
        return text


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_loop(conn, initializer, init_args) -> None:
    """Body of one worker process.

    Protocol (worker's view): send ``("ready", pid)`` once initialised, then
    loop — receive ``(task_id, index, attempt, payload)`` or the ``None``
    shutdown sentinel, ack ``("started", task_id)``, run the task, reply
    ``("result", task_id, status, body)``.  Initialisation failure sends
    ``("init_error", detail)`` and exits, so the coordinator can tell a
    broken environment from a crash.
    """
    try:
        task_fn = initializer(*init_args)
    except BaseException as exc:
        try:
            conn.send(("init_error", "{}: {}".format(type(exc).__name__, exc)))
        except Exception:
            pass
        return
    try:
        conn.send(("ready", os.getpid()))
    except Exception:
        return
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        task_id, index, attempt, payload = message
        # Ack before executing: the coordinator can now tell a worker that
        # is *running* a task (hard watchdog applies, no retry) from one that
        # never picked it up at all (dispatch lost to a sick worker — retry
        # on a respawn instead of burning the whole watchdog budget).
        try:
            conn.send(("started", task_id))
        except Exception:
            return
        try:
            status, body = task_fn(payload, index, attempt)
            if status not in _TASK_STATUSES:
                status, body = "error", "task returned unknown status {!r}".format(status)
        except MemoryError:
            body, status = "MemoryError while proving", "oom"
        except BaseException as exc:
            summary = traceback.format_exception_only(type(exc), exc)
            status, body = "error", "".join(summary).strip()
        try:
            conn.send(("result", task_id, status, body))
        except (EOFError, BrokenPipeError):
            return
        except Exception as exc:
            # The body would not pickle (or blew the pipe mid-serialise): the
            # result exists but cannot be delivered.  Report that instead of
            # silently dying, so the coordinator retries with full knowledge.
            try:
                conn.send(
                    (
                        "result",
                        task_id,
                        "error",
                        "undeliverable result: {}: {}".format(type(exc).__name__, exc),
                    )
                )
            except Exception:
                return


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


class _PriorityPending:
    """A deque-shaped view over a priority heap of ``(ticket, attempt)`` pairs.

    The solo :meth:`SupervisedPool.run` loop keeps its pending tasks in a
    plain FIFO deque; the shared serve-mode reactor needs the same structure
    ordered by *request priority* so that a one-task priority request does
    not queue behind a 200-task batch.  This adapter speaks just enough of
    the deque protocol (``append``/``appendleft``/``popleft``/``__len__``/
    ``__iter__``/``clear``) that the dispatch, retry, and broken-pool helpers
    work on either unchanged.  Priorities are remembered per ticket, so a
    crash-retried attempt keeps its original rank (FIFO among equals via a
    monotonic sequence).
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int, int]] = []  # (-prio, seq, ticket, attempt)
        self._seq = itertools.count()
        self._priorities: Dict[int, int] = {}

    def set_priority(self, ticket: int, priority: int) -> None:
        self._priorities[ticket] = int(priority)

    def forget(self, ticket: int) -> None:
        self._priorities.pop(ticket, None)

    def append(self, entry: Tuple[int, int]) -> None:
        ticket, attempt = entry
        priority = self._priorities.get(ticket, 0)
        heapq.heappush(self._heap, (-priority, next(self._seq), ticket, attempt))

    # A put-back after a failed dispatch re-ranks by priority, which is at
    # least as good as the deque's literal left-append.
    appendleft = append

    def popleft(self) -> Tuple[int, int]:
        _, _, ticket, attempt = heapq.heappop(self._heap)
        return ticket, attempt

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        for _, _, ticket, attempt in self._heap:
            yield ticket, attempt

    def clear(self) -> None:
        self._heap.clear()


class _Worker:
    """Coordinator-side record of one worker process."""

    __slots__ = ("process", "conn", "ready", "assignment", "acked", "spawned_at")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.ready = False
        #: ``(task_id, index, attempt, started_at)`` while busy, else None.
        self.assignment: Optional[Tuple[int, int, int, float]] = None
        #: Did the worker ack (``("started", task_id)``) the current assignment?
        self.acked = False
        #: When this worker process was forked (init-watchdog reference point).
        self.spawned_at = time.monotonic()


class SupervisedPool:
    """Per-task dispatch over supervised worker processes.

    Parameters
    ----------
    jobs:
        Number of worker processes.
    initializer / init_args:
        Run once in each worker; must return the task function (see module
        docstring).  Must be picklable (module-level callables).
    task_timeout:
        Hard per-attempt wall-clock budget.  A worker holding a task longer
        is killed and the task fails as ``timeout`` — no retry, since the
        budget is a property of the instance, not of the worker.
    retries:
        How many times a *crashed* attempt is re-dispatched before the task
        is quarantined.  ``0`` quarantines on the first crash.
    backoff_base / backoff_cap:
        Re-dispatch of attempt *n* waits ``min(cap, base * 2**(n-1))``
        seconds, so a task that kills workers does not burn respawns in a
        tight loop.
    mp_context:
        A multiprocessing context or start-method name; default prefers
        ``fork`` (cheap respawns, inherited env) and falls back to the
        platform default.
    ack_timeout:
        How long a dispatched task may sit un-acked before the worker is
        written off as never having picked it up (respawn + retry).
    init_timeout:
        How long a freshly spawned worker may take to report ready before
        it is killed and respawned; ``None`` disables the init watchdog.
    """

    def __init__(
        self,
        jobs: int,
        initializer: Callable[..., Callable[[Any, int, int], Tuple[str, Any]]],
        init_args: Sequence[Any] = (),
        task_timeout: Optional[float] = None,
        retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        mp_context: Any = None,
        drain_seconds: float = 5.0,
        ack_timeout: float = 5.0,
        init_timeout: Optional[float] = 60.0,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got {}".format(jobs))
        if retries < 0:
            raise ValueError("retries must be >= 0, got {}".format(retries))
        self.jobs = jobs
        self.initializer = initializer
        self.init_args = tuple(init_args)
        self.task_timeout = task_timeout
        #: A dispatched task must be acked (``("started", ...)``) within this
        #: budget; a worker that never picks the task up is respawned and the
        #: attempt retried, instead of the task burning its whole watchdog
        #: budget on a worker that was never going to run it.
        self.ack_timeout = ack_timeout
        #: A freshly forked worker must report ``("ready", ...)`` within this
        #: budget or it is killed and respawned (``None`` disables).  A child
        #: wedged during initialisation — e.g. poisoned by forking a
        #: multi-threaded parent at the wrong moment — otherwise sits there
        #: forever: never ready, never EOF, starving dispatch.
        self.init_timeout = init_timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.drain_seconds = drain_seconds
        self._context = self._resolve_context(mp_context)
        self._workers: List[_Worker] = []
        self._task_ids = itertools.count(1)
        self._closed = False
        self._broken: Optional[str] = None
        self._init_failures = 0
        #: Workers killed-or-died and replaced over the pool's lifetime.
        self.respawned_workers = 0
        #: Attempts re-dispatched after a crash.
        self.retried = 0
        # Serve-mode (shared dispatch) state: a reactor thread owns the
        # worker pipes and multiplexes tasks submitted from any thread.
        self._serve_thread: Optional[threading.Thread] = None
        self._intake: "_queue_module.SimpleQueue" = _queue_module.SimpleQueue()
        self._wakeup_recv: Optional[socket.socket] = None
        self._wakeup_send: Optional[socket.socket] = None
        self._serve_tickets = itertools.count(1)

    @staticmethod
    def _resolve_context(mp_context: Any):
        if mp_context is None:
            try:
                return multiprocessing.get_context("fork")
            except ValueError:
                return multiprocessing.get_context()
        if isinstance(mp_context, str):
            return multiprocessing.get_context(mp_context)
        return mp_context

    # -- worker lifecycle ---------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_loop,
            args=(child_conn, self.initializer, self.init_args),
            daemon=True,
        )
        process.start()
        # The parent must drop its handle on the child end, or a dead worker
        # never reads as EOF (the parent itself keeps the pipe open).
        child_conn.close()
        return _Worker(process, parent_conn)

    def start(self) -> None:
        """Spawn the workers (idempotent).  May raise ``OSError``."""
        if self._closed:
            raise RuntimeError("pool is closed")
        while len(self._workers) < self.jobs:
            self._workers.append(self._spawn_worker())

    @staticmethod
    def _kill_worker(worker: _Worker) -> None:
        process = worker.process
        if process.is_alive():
            process.terminate()
            process.join(0.5)
            if process.is_alive():
                process.kill()
                process.join(0.5)
        try:
            worker.conn.close()
        except Exception:
            pass

    def _respawn(self, worker: _Worker) -> None:
        self._kill_worker(worker)
        self.respawned_workers += 1
        if self._broken is not None:
            return
        try:
            replacement = self._spawn_worker()
        except OSError as exc:
            self._broken = "cannot respawn worker: {}".format(exc)
            return
        worker.process = replacement.process
        worker.conn = replacement.conn
        worker.ready = False
        worker.assignment = None
        worker.acked = False
        worker.spawned_at = replacement.spawned_at

    # -- shared serve mode --------------------------------------------------

    def serve(self) -> None:
        """Start the shared-dispatch reactor thread (idempotent, thread-safe).

        In serve mode the pool accepts tasks from *any* thread via
        :meth:`submit`; one reactor thread owns every worker pipe and
        multiplexes dispatch, liveness, retries, the hard watchdog and
        respawns across all submitters.  Pending tasks are ranked by the
        submitting request's priority (FIFO among equals), which is what
        lets a one-task priority request overtake a large batch that is
        still queued.  :meth:`run` must not be used while serving — the two
        modes share the worker pipes.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._serve_thread is not None and self._serve_thread.is_alive():
            return
        self.start()
        if self._wakeup_recv is None:
            recv_end, send_end = socket.socketpair()
            recv_end.setblocking(False)
            send_end.setblocking(False)
            self._wakeup_recv, self._wakeup_send = recv_end, send_end
        self._serve_thread = threading.Thread(
            target=self._serve_loop, name="slp-pool-reactor", daemon=True
        )
        self._serve_thread.start()

    @property
    def serving(self) -> bool:
        return self._serve_thread is not None and self._serve_thread.is_alive()

    def submit(
        self,
        payload: Any,
        deliver: Callable[[Any], None],
        priority: int = 0,
    ) -> int:
        """Enqueue one task for the serving reactor (thread-safe).

        ``deliver(outcome)`` is invoked exactly once, on the reactor thread,
        with the task function's body or a :class:`FailureInfo` — the same
        outcome contract as :meth:`run`.  Returns an opaque ticket.
        """
        if not self.serving:
            raise RuntimeError("pool is not serving (call serve() first)")
        ticket = next(self._serve_tickets)
        self._intake.put((ticket, payload, deliver, int(priority)))
        self._wake_reactor()
        return ticket

    def _wake_reactor(self) -> None:
        sender = self._wakeup_send
        if sender is None:
            return
        try:
            sender.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # the reactor has unread wake bytes already, or is gone

    def _serve_loop(self) -> None:
        tasks: Dict[int, Any] = {}
        deliver: Dict[int, Callable[[Any], None]] = {}
        pending = _PriorityPending()
        delayed: List[Tuple[float, int, int]] = []
        elapsed: Dict[int, float] = {}

        def finish(ticket: int, outcome: Any) -> None:
            tasks.pop(ticket, None)
            pending.forget(ticket)
            callback = deliver.pop(ticket, None)
            if callback is None:
                return
            try:
                callback(outcome)
            except Exception:  # a consumer bug must not kill the reactor
                pass

        while True:
            # Drain the intake: new submissions and the shutdown sentinel.
            while True:
                try:
                    item = self._intake.get_nowait()
                except _queue_module.Empty:
                    break
                if item is None:
                    detail = "pool closed with the task outstanding"
                    for ticket in list(deliver):
                        finish(ticket, FailureInfo(kind="crash", detail=detail))
                    return
                ticket, payload, callback, priority = item
                if self._broken is not None:
                    try:
                        callback(
                            FailureInfo(
                                kind="crash",
                                detail="worker pool broken: {}".format(self._broken),
                            )
                        )
                    except Exception:
                        pass
                    continue
                tasks[ticket] = payload
                deliver[ticket] = callback
                pending.set_priority(ticket, priority)
                pending.append((ticket, 1))
            if self._broken is not None:
                for ticket, attempt, info in self._drain_broken(pending, delayed):
                    finish(ticket, info)
                # Keep looping: future submissions fail fast at intake until
                # close() delivers the sentinel.
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, ticket, attempt = heapq.heappop(delayed)
                pending.append((ticket, attempt))
            wait_on: List[Any] = []
            if self._broken is None:
                self._dispatch_pending(pending, tasks)
                wait_on.extend(worker.conn for worker in self._workers)
            if self._wakeup_recv is not None:
                wait_on.append(self._wakeup_recv)
            ready = _wait_on_connections(wait_on, self._wait_timeout(delayed))
            if self._wakeup_recv in ready:
                try:
                    while self._wakeup_recv.recv(4096):
                        pass
                except (BlockingIOError, OSError):
                    pass
            for worker in list(self._workers):
                if worker.conn not in ready:
                    continue
                for ticket, outcome in self._consume(worker, pending, delayed, elapsed):
                    finish(ticket, outcome)
            for ticket, info in self._watchdog_sweep(pending, delayed, elapsed):
                finish(ticket, info)

    # -- the run loop -------------------------------------------------------

    def run(self, payloads: Iterable[Any]) -> Iterator[Tuple[int, Any]]:
        """Execute every payload; yield ``(index, outcome)`` as they finish.

        ``outcome`` is the task function's ``body`` on success, else a
        :class:`FailureInfo`.  Every index is yielded exactly once, in
        completion order.  Abandoning the iterator mid-run kills and
        respawns any workers still holding tasks (their results have no
        consumer), leaving the pool reusable.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if self.serving:
            raise RuntimeError("pool is serving; use submit(), not run()")
        tasks = list(payloads)
        self.start()
        pending: deque = deque((index, 1) for index in range(len(tasks)))
        delayed: List[Tuple[float, int, int]] = []  # (not_before, index, attempt)
        elapsed: Dict[int, float] = {}
        outstanding = len(tasks)
        try:
            while outstanding > 0:
                if self._broken is not None:
                    for index, attempt, info in self._drain_broken(pending, delayed):
                        yield index, info
                        outstanding -= 1
                    break
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, index, attempt = heapq.heappop(delayed)
                    pending.append((index, attempt))
                self._dispatch_pending(pending, tasks)
                ready_conns = _wait_on_connections(
                    [worker.conn for worker in self._workers],
                    self._wait_timeout(delayed),
                )
                for worker in list(self._workers):
                    if worker.conn not in ready_conns:
                        continue
                    for index, outcome in self._consume(worker, pending, delayed, elapsed):
                        yield index, outcome
                        outstanding -= 1
                for index, info in self._watchdog_sweep(pending, delayed, elapsed):
                    yield index, info
                    outstanding -= 1
        finally:
            # The consumer may abandon the iterator mid-run (a harness that
            # breaks on its own budget).  Workers still holding tasks would
            # eventually reply into the void — or hang forever; reclaim them.
            for worker in self._workers:
                if worker.assignment is not None:
                    self._respawn(worker)

    def _dispatch_pending(self, pending: deque, tasks: List[Any]) -> None:
        while pending:
            worker = next(
                (w for w in self._workers if w.ready and w.assignment is None), None
            )
            if worker is None:
                return
            index, attempt = pending.popleft()
            task_id = next(self._task_ids)
            try:
                worker.conn.send((task_id, index, attempt, tasks[index]))
            except Exception:
                # The worker died while idle; the attempt never started.
                pending.appendleft((index, attempt))
                self._respawn(worker)
                if self._broken is not None:
                    return
                continue
            worker.assignment = (task_id, index, attempt, time.monotonic())
            worker.acked = False

    def _wait_timeout(self, delayed: List[Tuple[float, int, int]]) -> Optional[float]:
        now = time.monotonic()
        horizons = []
        if delayed:
            horizons.append(delayed[0][0] - now)
        for worker in self._workers:
            assignment = worker.assignment
            if assignment is not None:
                if not worker.acked:
                    horizons.append(assignment[3] + self.ack_timeout - now)
                elif self.task_timeout is not None:
                    horizons.append(assignment[3] + self.task_timeout - now)
            elif self.init_timeout is not None and not worker.ready:
                horizons.append(worker.spawned_at + self.init_timeout - now)
        if not horizons:
            return None
        return max(0.01, min(horizons))

    def _consume(
        self,
        worker: _Worker,
        pending: deque,
        delayed: List[Tuple[float, int, int]],
        elapsed: Dict[int, float],
    ) -> List[Tuple[int, Any]]:
        """Read one event from a readable worker pipe; return finished tasks."""
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            return self._on_worker_death(worker, pending, delayed, elapsed)
        tag = message[0]
        if tag == "ready":
            worker.ready = True
            self._init_failures = 0
            return []
        if tag == "started":
            assignment = worker.assignment
            if assignment is not None and assignment[0] == message[1]:
                worker.acked = True
            return []
        if tag == "init_error":
            self._init_failures += 1
            if self._init_failures > self.jobs + _INIT_FAILURE_SLACK:
                self._broken = "workers cannot initialise: {}".format(message[1])
            # The worker exits after reporting; the EOF that follows respawns
            # it (or the broken flag stops the loop).
            return []
        if tag == "result":
            _, task_id, status, body = message
            assignment = worker.assignment
            if assignment is None or assignment[0] != task_id:
                return []  # stale reply from a task whose attempt was written off
            _, index, attempt, started_at = assignment
            worker.assignment = None
            took = time.monotonic() - started_at
            total = elapsed.pop(index, 0.0) + took
            if status == "ok":
                return [(index, body)]
            if status == "timeout":
                return [
                    (
                        index,
                        FailureInfo(
                            kind="timeout",
                            attempts=attempt,
                            elapsed=total,
                            detail="cooperative deadline",
                            statistics=body,
                        ),
                    )
                ]
            if status == "oom":
                return [
                    (
                        index,
                        FailureInfo(
                            kind="oom", attempts=attempt, elapsed=total, detail=str(body)
                        ),
                    )
                ]
            # status == "error": the attempt failed but the worker survived.
            return self._retry_or_quarantine(
                index, attempt, total, str(body), pending, delayed, elapsed
            )
        return []

    def _on_worker_death(
        self,
        worker: _Worker,
        pending: deque,
        delayed: List[Tuple[float, int, int]],
        elapsed: Dict[int, float],
    ) -> List[Tuple[int, Any]]:
        assignment = worker.assignment
        was_ready = worker.ready
        exit_code = worker.process.exitcode
        worker.assignment = None
        if not was_ready and assignment is None:
            # Died during initialisation without even an init_error message.
            self._init_failures += 1
            if self._init_failures > self.jobs + _INIT_FAILURE_SLACK:
                self._broken = "workers die during initialisation (exit code {})".format(
                    exit_code
                )
        self._respawn(worker)
        if assignment is None:
            return []
        _, index, attempt, started_at = assignment
        total = elapsed.pop(index, 0.0) + (time.monotonic() - started_at)
        detail = "worker died (exit code {})".format(exit_code)
        return self._retry_or_quarantine(
            index, attempt, total, detail, pending, delayed, elapsed
        )

    def _retry_or_quarantine(
        self,
        index: int,
        attempt: int,
        total_elapsed: float,
        detail: str,
        pending: deque,
        delayed: List[Tuple[float, int, int]],
        elapsed: Dict[int, float],
    ) -> List[Tuple[int, Any]]:
        if attempt <= self.retries:
            self.retried += 1
            elapsed[index] = total_elapsed
            backoff = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
            if backoff <= 0.0:
                pending.append((index, attempt + 1))
            else:
                heapq.heappush(delayed, (time.monotonic() + backoff, index, attempt + 1))
            return []
        kind = "crash" if self.retries == 0 else "retries_exhausted"
        return [
            (
                index,
                FailureInfo(
                    kind=kind, attempts=attempt, elapsed=total_elapsed, detail=detail
                ),
            )
        ]

    def _watchdog_sweep(
        self,
        pending: deque,
        delayed: List[Tuple[float, int, int]],
        elapsed: Dict[int, float],
    ) -> List[Tuple[int, Any]]:
        now = time.monotonic()
        finished: List[Tuple[int, Any]] = []
        for worker in self._workers:
            assignment = worker.assignment
            if assignment is None:
                # No task in flight; check the init watchdog — a worker that
                # never reports ready would otherwise starve dispatch forever
                # (no EOF to react to, nothing for the task watchdog to see).
                if (
                    self.init_timeout is not None
                    and not worker.ready
                    and now - worker.spawned_at > self.init_timeout
                ):
                    self._init_failures += 1
                    if self._init_failures > self.jobs + _INIT_FAILURE_SLACK:
                        self._broken = (
                            "workers hang during initialisation "
                            "(no ready within {:.0f}s)".format(self.init_timeout)
                        )
                    self._respawn(worker)
                continue
            _, index, attempt, started_at = assignment
            overrun = now - started_at
            if not worker.acked:
                # The worker never even picked the task up.  A healthy worker
                # acks within microseconds, so past ack_timeout the dispatch
                # is written off as lost and the attempt retried on a fresh
                # worker — spending the whole task budget here would punish
                # the task for the worker's sickness.
                if overrun <= self.ack_timeout:
                    continue
                worker.assignment = None
                self._respawn(worker)
                total = elapsed.pop(index, 0.0) + overrun
                detail = "worker never started the task (no ack within {:.1f}s)".format(
                    self.ack_timeout
                )
                finished.extend(
                    self._retry_or_quarantine(
                        index, attempt, total, detail, pending, delayed, elapsed
                    )
                )
                continue
            if self.task_timeout is None or overrun <= self.task_timeout:
                continue
            worker.assignment = None
            self._respawn(worker)
            total = elapsed.pop(index, 0.0) + overrun
            finished.append(
                (
                    index,
                    FailureInfo(
                        kind="timeout",
                        attempts=attempt,
                        elapsed=total,
                        detail="hard watchdog kill after {:.2f}s".format(overrun),
                    ),
                )
            )
        return finished

    def _drain_broken(
        self, pending: deque, delayed: List[Tuple[float, int, int]]
    ) -> List[Tuple[int, int, FailureInfo]]:
        """Fail everything still queued or in flight on a broken pool."""
        leftovers: List[Tuple[int, int]] = []
        leftovers.extend(pending)
        pending.clear()
        leftovers.extend((index, attempt) for _, index, attempt in delayed)
        delayed.clear()
        for worker in self._workers:
            if worker.assignment is not None:
                _, index, attempt, _ = worker.assignment
                worker.assignment = None
                leftovers.append((index, attempt))
            self._kill_worker(worker)
        detail = "worker pool broken: {}".format(self._broken)
        return [
            (index, attempt, FailureInfo(kind="crash", attempts=attempt, detail=detail))
            for index, attempt in leftovers
        ]

    # -- teardown -----------------------------------------------------------

    def close(self, drain_seconds: Optional[float] = None) -> None:
        """Gracefully drain the pool; escalate to terminate/kill on deadline.

        Idempotent: safe to call any number of times, from ``__exit__``,
        ``__del__`` and explicit call sites alike.
        """
        if self._closed:
            return
        self._closed = True
        budget = self.drain_seconds if drain_seconds is None else drain_seconds
        reactor = self._serve_thread
        if reactor is not None and reactor.is_alive():
            # Stop the reactor before touching worker pipes: it fails any
            # outstanding submissions structurally, then exits.
            self._intake.put(None)
            self._wake_reactor()
            reactor.join(max(1.0, budget))
        self._serve_thread = None
        for sock in (self._wakeup_recv, self._wakeup_send):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._wakeup_recv = self._wakeup_send = None
        deadline = time.monotonic() + max(0.0, budget)
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except Exception:
                pass
        for worker in self._workers:
            remaining = max(0.0, deadline - time.monotonic())
            worker.process.join(remaining)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(0.5)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(0.5)
            try:
                worker.conn.close()
            except Exception:
                pass
        self._workers = []

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close(drain_seconds=0.1)
        except Exception:
            pass
