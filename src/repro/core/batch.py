"""Batch proving: supervised parallel entailment checking with caching.

Every workload this prover serves — the paper's Tables 1-3 batches, the
verification-condition stream of the symbolic-execution front end, CLI files —
is a *batch* of independent entailments.  :class:`BatchProver` turns the fast
single-query prover into a batch engine with three orthogonal levers:

* **parallelism** — a :class:`~repro.core.supervisor.SupervisedPool` of
  worker processes; each worker holds one warm
  :class:`~repro.core.prover.Prover` (and its interning tables, ordering
  caches and so on) for its whole lifetime, and tasks are dispatched
  per-task with explicit liveness tracking.  Results stream back as they
  complete (:meth:`BatchProver.iter_results`) or in input order
  (:meth:`BatchProver.iter_ordered` / :meth:`BatchProver.prove_all`);
* **supervision** — a crashed, hung or OOM-killed worker is detected and
  respawned, its in-flight task retried with capped exponential backoff, and
  a task that keeps killing workers is quarantined.  Every task therefore
  produces exactly one structured outcome: a
  :class:`~repro.core.result.ProofResult`, or a
  :class:`~repro.core.supervisor.FailureInfo` saying *why* there is no
  verdict (``timeout``/``oom``/``crash``/``retries_exhausted``).  ``None``
  never appears;
* **memoisation** — a :class:`~repro.core.cache.ProofCache` in the
  coordinating process answers alpha-equivalent queries without proving, and
  additionally *deduplicates within the batch*: structurally identical
  entailments are proved once and the verdict is renamed back for every copy.

The levers compose: cache lookups and deduplication happen before dispatch,
so the pool only ever sees one representative per equivalence class.  A
representative that *fails* (rather than times out on its own merits) does
not poison its copies — they are re-dispatched independently.

Budgets are enforced for real.  ``ProverConfig.max_seconds`` is threaded
into the saturation inner loop (cooperative, fires within one inference
step); the coordinator additionally arms a **hard watchdog** that kills any
worker holding a task past ``max_seconds * grace_factor``, which is what
catches a worker that stopped executing Python (native hang, pathological
GC).  ``ProverConfig.max_memory_mb`` applies ``RLIMIT_AS`` in each worker,
converting memory blow-ups into structured ``oom`` failures instead of
kernel OOM kills.

The engine degrades gracefully: with ``jobs=1``, or on platforms where
worker processes cannot be created, everything runs in-process through the
same outcome contract — including injected faults and retry/quarantine
semantics, minus the hard watchdog (there is no second process to do the
killing).  A deterministic :class:`~repro.core.faults.FaultPlan` (passed in,
or exported via ``SLP_FAULT_PLAN``) disturbs chosen task indices for chaos
testing; failures it causes are marked ``injected``.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.cache import ProofCache, rename_counterexample, rename_proof
from repro.core.config import ProverConfig
from repro.core.faults import FaultPlan, InjectedCrash, apply_fault_before_task, make_unpicklable
from repro.core.prover import Prover, ProverTimeout
from repro.core.result import ProofResult, ProverStatistics
from repro.core.supervisor import FailureInfo, SupervisedPool
from repro.logic.canonical import CanonicalForm
from repro.logic.formula import Entailment, lseg, pts
from repro.logic.terms import make_const

__all__ = [
    "BatchOutcome",
    "BatchProver",
    "BatchStatistics",
    "FailureInfo",
    "default_jobs",
]

#: What one batch entry resolves to: a verdict, or a structured failure.
BatchOutcome = Union[ProofResult, FailureInfo]

#: Errors that mean "no worker pool on this platform" (sandboxes, exotic
#: interpreters); the engine degrades to in-process execution, once, quietly.
_POOL_UNAVAILABLE_ERRORS = (OSError, ValueError, ImportError, PermissionError)


def default_jobs() -> int:
    """A sensible worker count for this machine (capped to keep startup cheap).

    Counts the CPUs this process may actually *use* — the scheduling affinity
    mask, which cgroup cpusets and ``taskset`` shrink — not the machine's
    nominal core count.  In a 2-CPU container on a 64-core host,
    ``os.cpu_count()`` says 64; spawning 8 provers to share 2 CPUs thrashes.
    """
    try:
        available = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux platforms
        available = os.cpu_count() or 1
    return max(1, min(available, 8))


# ---------------------------------------------------------------------------
# Worker-side machinery.  Module-level so that it is picklable under both the
# fork and spawn start methods; the prover is created once per worker process
# by the initializer and reused for every task.
# ---------------------------------------------------------------------------

_WORKER_PROVER: Optional[Prover] = None

#: Per-batch configuration overrides travelling with every task payload:
#: ``(max_seconds, record_proof)``, each ``None`` meaning "keep the pool's
#: configured value".  ``None`` in place of the whole tuple means no override
#: at all (the common case).  The entailment service uses this to honour
#: per-request budgets and proof flags on one long-lived warm pool.
TaskOverrides = Optional[Tuple[Optional[float], Optional[bool]]]


def _apply_overrides(config: ProverConfig, overrides: TaskOverrides) -> ProverConfig:
    """The effective per-task configuration under ``overrides``."""
    if overrides is None:
        return config
    max_seconds, record_proof = overrides
    if max_seconds is not None and max_seconds != config.max_seconds:
        config = config.with_timeout(max_seconds)
    if record_proof is not None and record_proof != config.record_proof:
        config = replace(config, record_proof=record_proof)
    return config

_WARMUP = dict(
    lhs=[pts("wk_a", "wk_b"), pts("wk_b", "nil")], rhs=[lseg("wk_a", "nil")]
)


def _reintern(entailment: Entailment) -> Entailment:
    """Rebuild an unpickled entailment over the worker's interned constants.

    Pickling bypasses the intern tables, so a received entailment would miss
    every identity fast path; renaming each constant to its interned twin
    restores the sharing the warm prover relies on.
    """
    return entailment.rename({c: make_const(c.name) for c in entailment.constants()})


def _apply_memory_limit(max_memory_mb: Optional[int]) -> None:
    """Cap this process's address space (``RLIMIT_AS``) — worker processes only.

    Platforms without the :mod:`resource` module (or without this limit) are
    left uncapped: the budget is an operational safety net, not a semantic
    requirement, and failing the whole pool over it would be worse.
    """
    if max_memory_mb is None:
        return
    try:
        import resource

        limit = int(max_memory_mb) * 1024 * 1024
        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY:
            limit = min(limit, hard)
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (ImportError, AttributeError, ValueError, OSError):  # pragma: no cover
        pass


def _warm_prover(config: ProverConfig) -> Prover:
    """A fresh prover with imports, ordering caches and intern tables primed."""
    prover = Prover(config)
    try:
        prover.prove(Entailment.build(**_WARMUP))
    except ProverTimeout:  # pragma: no cover - only with absurdly small budgets
        pass
    return prover


def _supervised_worker_init(config: ProverConfig, fault_plan: Optional[FaultPlan]):
    """Per-worker initialiser for the supervised pool; returns the task function.

    Order matters: the memory limit is applied *before* the warm-up, so the
    budget covers everything the worker will ever allocate.  A budget too
    tight for even the warm-up surfaces as MemoryError here, which the
    supervisor reports as an initialisation failure (and, if persistent,
    declares the pool broken) instead of respawning forever.
    """
    _apply_memory_limit(config.max_memory_mb)
    plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
    prover = _warm_prover(config)

    def prove_task(payload: Tuple[int, Entailment, TaskOverrides], _position: int, attempt: int):
        # The payload carries the *batch* index (fault plans target batch
        # indices); the pool's positional index is ignored.
        index, entailment, overrides = payload
        spec = plan.should_fire(index, attempt) if plan is not None else None
        if spec is not None:
            apply_fault_before_task(spec)
        effective = _apply_overrides(config, overrides)
        # Prover instances are stateless (the warmth lives in the interning
        # tables and ordering caches, which are shared), so an override costs
        # one cheap construction, not a re-warm.
        active = prover if effective is config else Prover(effective)
        try:
            result = active.prove(_reintern(entailment))
        except ProverTimeout as timeout:
            return "timeout", timeout.statistics
        if spec is not None and spec.kind == "unpicklable":
            return "ok", make_unpicklable(result)
        return "ok", result

    return prove_task


def _initialize_worker(config: ProverConfig) -> None:
    """Legacy chunked-pool initialiser (kept for the supervision ablation)."""
    global _WORKER_PROVER
    _apply_memory_limit(config.max_memory_mb)
    _WORKER_PROVER = _warm_prover(config)


def _prove_in_worker(
    task: Tuple[int, Entailment, TaskOverrides]
) -> Tuple[int, Optional[ProofResult]]:
    index, entailment, overrides = task
    assert _WORKER_PROVER is not None, "worker used before initialisation"
    effective = _apply_overrides(_WORKER_PROVER.config, overrides)
    active = _WORKER_PROVER if effective is _WORKER_PROVER.config else Prover(effective)
    try:
        return index, active.prove(_reintern(entailment))
    except ProverTimeout:
        return index, None


# ---------------------------------------------------------------------------
# Coordinator side.
# ---------------------------------------------------------------------------


def _fold_statistics(target: ProverStatistics, source: ProverStatistics) -> None:
    for item in fields(ProverStatistics):
        setattr(target, item.name, getattr(target, item.name) + getattr(source, item.name))


@dataclass
class BatchStatistics:
    """Aggregated accounting for everything a :class:`BatchProver` has run.

    ``prover`` sums the per-result work counters of genuinely proved
    instances; ``timeout_work`` sums the *partial* counters of timed-out
    attempts (work done, then discarded), which used to be invisible.  Cache
    hits and deduplicated copies contribute no prover work (that is the
    point) and are counted separately.

    ``cache_misses`` counts cache lookups the memoisation could not answer
    (in-batch duplicates miss once before their leader resolves them);
    ``disk_hits`` is the subset of ``cache_hits`` answered by the persistent
    second tier (:class:`~repro.core.cache.PersistentProofCache`) rather than
    the in-memory LRU — nonzero only after a coordinator restart or when
    another process shares the store.
    """

    total: int = 0
    proved: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    disk_hits: int = 0
    deduplicated: int = 0
    timed_out: int = 0
    oom: int = 0
    quarantined: int = 0
    retried: int = 0
    respawned_workers: int = 0
    injected_faults: int = 0
    valid: int = 0
    invalid: int = 0
    jobs: int = 1
    parallel: bool = False
    elapsed_seconds: float = 0.0
    prover: ProverStatistics = field(default_factory=ProverStatistics)
    timeout_work: ProverStatistics = field(default_factory=ProverStatistics)

    @property
    def failed(self) -> int:
        """Batch entries that resolved to no verdict, of any kind."""
        return self.timed_out + self.oom + self.quarantined

    #: Counter fields summed by :meth:`fold` (everything except ``jobs``,
    #: ``parallel`` and the nested :class:`ProverStatistics` pair).
    _FOLD_COUNTERS = (
        "total", "proved", "cache_hits", "cache_misses", "disk_hits",
        "deduplicated", "timed_out", "oom", "quarantined", "retried",
        "respawned_workers", "injected_faults", "valid", "invalid",
        "elapsed_seconds",
    )

    def fold(self, other: "BatchStatistics") -> None:
        """Absorb another accounting object (used to merge per-batch stats).

        Concurrent dispatcher lanes each accumulate into a private
        :class:`BatchStatistics` and fold it into the shared one under a
        lock when their batch finishes — the shared object never sees a
        torn read-modify-write.
        """
        for name in self._FOLD_COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.parallel = self.parallel or other.parallel
        _fold_statistics(self.prover, other.prover)
        _fold_statistics(self.timeout_work, other.timeout_work)

    def absorb_proved(self, result: ProofResult) -> None:
        """Fold one freshly proved result into the aggregate counters."""
        self.proved += 1
        _fold_statistics(self.prover, result.statistics)

    def absorb_failure(self, info: FailureInfo) -> None:
        """Fold one fresh (non-echoed) structured failure's bookkeeping."""
        if isinstance(info.statistics, ProverStatistics):
            _fold_statistics(self.timeout_work, info.statistics)

    def count_verdict(self, outcome: Optional[BatchOutcome]) -> None:
        self.total += 1
        if outcome is None or isinstance(outcome, FailureInfo):
            kind = "timeout" if outcome is None else outcome.kind
            if kind == "timeout":
                self.timed_out += 1
            elif kind == "oom":
                self.oom += 1
            else:
                self.quarantined += 1
        elif outcome.is_valid:
            self.valid += 1
        else:
            self.invalid += 1


class BatchProver:
    """Check batches of entailments in parallel, memoising under renaming.

    Parameters
    ----------
    config:
        Prover configuration used by every worker (and the in-process
        fallback).  Give it a ``max_seconds`` budget for per-instance
        timeouts and a ``max_memory_mb`` budget for per-worker memory;
        exceeded budgets come back as :class:`FailureInfo` outcomes.
    jobs:
        Worker processes.  ``1`` (the default) runs in-process — no pool, no
        pickling, verdicts bit-identical to a bare :class:`Prover` loop.
    cache:
        ``True`` (default) for a fresh :class:`ProofCache`, ``False``/``None``
        to disable caching *and* in-batch deduplication, or an existing
        :class:`ProofCache` to share across batch provers.
    retries:
        How many times a crashed task is re-dispatched before quarantine
        (``0`` quarantines on the first crash).  Applies to worker deaths and
        in-task exceptions, not to timeouts or OOMs, which are deterministic
        properties of the instance under its budget.
    grace_factor:
        The hard watchdog kills a worker holding one task longer than
        ``max_seconds * grace_factor`` — the headroom the cooperative
        deadline gets before the coordinator stops trusting the worker to
        enforce its own budget.  No ``max_seconds`` means no watchdog.
    backoff_base / backoff_cap:
        Crash-retry backoff: re-dispatch *n* waits
        ``min(cap, base * 2**(n-1))`` seconds.
    fault_plan:
        A :class:`~repro.core.faults.FaultPlan` to disturb this batch with
        (chaos testing).  ``None`` reads ``SLP_FAULT_PLAN`` from the
        environment; normal operation has neither.
    supervised:
        ``False`` selects the legacy chunked ``multiprocessing.Pool`` path —
        no supervision, no retries, crash-fragile.  Kept for the
        ``supervision_overhead`` ablation benchmark only.
    chunk_size:
        Tasks per dispatch of the *legacy* pool (ignored when supervised).
    mp_context:
        A :mod:`multiprocessing` context (or start-method name) to use
        instead of the default (fork where available).  Mainly for tests.
    drain_seconds:
        Budget :meth:`close` gives workers to exit gracefully before
        escalating to ``terminate``/``kill``.

    The instance is reusable across many batches; the pool stays warm.  Use
    it as a context manager (or call :meth:`close`) to release the workers;
    a leaked instance reclaims them from ``__del__`` as a safety net.
    """

    def __init__(
        self,
        config: Optional[ProverConfig] = None,
        jobs: int = 1,
        cache: Union[bool, ProofCache, None] = True,
        chunk_size: Optional[int] = None,
        mp_context=None,
        retries: int = 2,
        grace_factor: float = 2.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        fault_plan: Optional[FaultPlan] = None,
        supervised: bool = True,
        drain_seconds: float = 5.0,
        shared_dispatch: bool = False,
    ):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if grace_factor < 1.0:
            raise ValueError("grace_factor must be >= 1.0 (the watchdog must not fire first)")
        self.config = config if config is not None else ProverConfig()
        self.jobs = jobs
        if cache is True:
            self.cache: Optional[ProofCache] = ProofCache()
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        self.chunk_size = chunk_size
        self.retries = retries
        self.grace_factor = grace_factor
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.supervised = supervised
        self.drain_seconds = drain_seconds
        #: Thread-safe dispatch facade: ``True`` lets any number of threads
        #: call :meth:`iter_results`/:meth:`prove_all` concurrently against
        #: the one shared pool — tasks from all callers interleave per-task
        #: in the pool's serve-mode reactor, ranked by ``priority``.  The
        #: entailment service's dispatcher lanes run this way.
        self.shared_dispatch = shared_dispatch
        self.statistics = BatchStatistics(jobs=jobs)
        self._stats_lock = threading.Lock()
        self._fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self._mp_context = mp_context
        self._pool_lock = threading.Lock()
        self._pool: Optional[SupervisedPool] = None
        self._legacy_pool = None
        self._pool_unavailable = False
        self._local_prover: Optional[Prover] = None
        self._thread_local = threading.local()
        self._closed = False

    @property
    def _task_timeout(self) -> Optional[float]:
        if self.config.max_seconds is None:
            return None
        return self.config.max_seconds * self.grace_factor

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release the worker processes: graceful drain, then escalation.

        Idempotent; a later batch on the same instance starts a fresh pool.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
            legacy, self._legacy_pool = self._legacy_pool, None
            self._closed = True
        if pool is not None:
            if self.shared_dispatch:
                # Serve-mode supervision counters live on the pool (they are
                # shared across lanes, so no lane may delta-fold them); bank
                # them into the aggregate before the pool goes away.
                with self._stats_lock:
                    self.statistics.retried += pool.retried
                    self.statistics.respawned_workers += pool.respawned_workers
            pool.close(self.drain_seconds)
        if legacy is not None:
            legacy.close()  # no more tasks; lets workers finish and exit
            joiner = threading.Thread(target=legacy.join, daemon=True)
            joiner.start()
            joiner.join(self.drain_seconds)
            if joiner.is_alive():
                legacy.terminate()
                joiner.join(1.0)

    def __enter__(self) -> "BatchProver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        # Safety net for leaked instances: never let an abandoned BatchProver
        # orphan its worker processes.  Interpreter-shutdown failures are
        # swallowed — there is nothing useful to do with them in __del__.
        try:
            if not self._closed and (self._pool is not None or self._legacy_pool is not None):
                self.close()
        except Exception:
            pass

    def _ensure_pool(self) -> Optional[SupervisedPool]:
        """The persistent supervised pool, or ``None`` when unavailable.

        Locked: under shared dispatch any number of lane threads race the
        first batch here, and two winners would each spawn a full worker set
        (the loser's pool leaking its processes until interpreter exit).
        """
        with self._pool_lock:
            self._closed = False
            if self._pool is not None:
                return self._pool
            if self._pool_unavailable:
                return None
            try:
                pool = SupervisedPool(
                    jobs=self.jobs,
                    initializer=_supervised_worker_init,
                    init_args=(self.config, self._fault_plan),
                    task_timeout=self._task_timeout,
                    retries=self.retries,
                    backoff_base=self.backoff_base,
                    backoff_cap=self.backoff_cap,
                    mp_context=self._mp_context,
                    drain_seconds=self.drain_seconds,
                )
                pool.start()
                if self.shared_dispatch:
                    pool.serve()
            except _POOL_UNAVAILABLE_ERRORS:
                self._pool_unavailable = True
                return None
            self._pool = pool
            return pool

    def pool_counters(self) -> Dict[str, int]:
        """Live serve-mode supervision counters not yet folded into ``statistics``.

        In shared-dispatch mode retries and respawns are pool-global (no
        lane can attribute a delta to itself without double counting), so
        they stay on the pool until :meth:`close` banks them; consumers that
        report totals add these to ``statistics``.  Zero in solo mode, where
        :meth:`_execute_supervised` already delta-folds per batch.
        """
        pool = self._pool
        if self.shared_dispatch and pool is not None:
            return {"retried": pool.retried, "respawned_workers": pool.respawned_workers}
        return {"retried": 0, "respawned_workers": 0}

    def _ensure_legacy_pool(self):
        """The unsupervised chunked pool (ablation benchmark only)."""
        self._closed = False
        if self._legacy_pool is not None:
            return self._legacy_pool
        if self._pool_unavailable:
            return None
        try:
            context = self._mp_context
            if isinstance(context, str):
                context = multiprocessing.get_context(context)
            if context is None:
                methods = multiprocessing.get_all_start_methods()
                context = multiprocessing.get_context(
                    "fork" if "fork" in methods else None
                )
            self._legacy_pool = context.Pool(
                processes=self.jobs,
                initializer=_initialize_worker,
                initargs=(self.config,),
            )
        except _POOL_UNAVAILABLE_ERRORS:
            self._pool_unavailable = True
            return None
        return self._legacy_pool

    # -- in-process execution ---------------------------------------------
    def _local_prover_for_thread(self) -> Prover:
        """The warm in-process prover — per-thread under shared dispatch.

        Prover instances are cheap after the module-level interning tables
        are warm, so giving each dispatcher lane its own keeps the in-process
        path lock-free without re-warming anything that matters.
        """
        if not self.shared_dispatch:
            if self._local_prover is None:
                self._local_prover = Prover(self.config)
            return self._local_prover
        prover = getattr(self._thread_local, "prover", None)
        if prover is None:
            prover = Prover(self.config)
            self._thread_local.prover = prover
        return prover

    def _prove_local(
        self,
        index: int,
        entailment: Entailment,
        overrides: TaskOverrides,
        stats: BatchStatistics,
    ) -> BatchOutcome:
        """One task through the in-process engine: same contract as the pool.

        Injected faults degrade sensibly without a process boundary: process
        death and undeliverable results become retryable crashes, a hang
        longer than the watchdog budget becomes the ``timeout`` the watchdog
        would have produced (there is no second process to do the killing).
        """
        local = self._local_prover_for_thread()
        effective = _apply_overrides(self.config, overrides)
        active = local if effective is self.config else Prover(effective)
        plan = self._fault_plan
        attempt = 1
        started = time.monotonic()
        while True:
            spec = plan.should_fire(index, attempt) if plan is not None else None
            try:
                if spec is not None and spec.kind == "hang":
                    budget = self._task_timeout
                    if budget is not None and spec.seconds > budget:
                        time.sleep(budget)
                        return FailureInfo(
                            kind="timeout",
                            attempts=attempt,
                            elapsed=time.monotonic() - started,
                            detail="hang exhausted the watchdog budget",
                        )
                if spec is not None:
                    apply_fault_before_task(spec, in_process=True)
                return active.prove(entailment)
            except ProverTimeout as timeout:
                return FailureInfo(
                    kind="timeout",
                    attempts=attempt,
                    elapsed=time.monotonic() - started,
                    detail="cooperative deadline",
                    statistics=timeout.statistics,
                )
            except MemoryError:
                return FailureInfo(
                    kind="oom",
                    attempts=attempt,
                    elapsed=time.monotonic() - started,
                    detail="MemoryError while proving",
                )
            except InjectedCrash as crash:
                if attempt <= self.retries:
                    stats.retried += 1
                    backoff = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
                    if backoff > 0.0:
                        time.sleep(backoff)
                    attempt += 1
                    continue
                kind = "crash" if self.retries == 0 else "retries_exhausted"
                return FailureInfo(
                    kind=kind,
                    attempts=attempt,
                    elapsed=time.monotonic() - started,
                    detail=str(crash),
                )

    # -- execution ---------------------------------------------------------
    def _mark_injected(self, index: int, outcome: BatchOutcome) -> BatchOutcome:
        """Flag failures at indices the fault plan targets.

        The decision function is pure, so the coordinator can label a
        failure whose worker never reported back (it was killed before it
        could say anything).
        """
        if (
            isinstance(outcome, FailureInfo)
            and not outcome.injected
            and self._fault_plan is not None
            and self._fault_plan.fault_at(index) is not None
        ):
            return replace(outcome, injected=True)
        return outcome

    def _execute(
        self,
        tasks: Sequence[Tuple[int, Entailment]],
        overrides: TaskOverrides,
        stats: BatchStatistics,
        priority: int = 0,
    ) -> Iterator[Tuple[int, BatchOutcome]]:
        """Run the deduplicated tasks, yielding ``(index, outcome)`` as completed."""
        if not tasks:
            return
        if self._fault_plan is not None:
            # Count faults as *fired*, not as "failed in the end": a transient
            # fault the retry loop recovered from still disturbed the run.
            # The decision function is pure, so the coordinator knows without
            # hearing from the (possibly killed) worker.
            stats.injected_faults += sum(
                1 for index, _ in tasks if self._fault_plan.fault_at(index) is not None
            )
        if self.jobs > 1:
            if self.supervised:
                pool = self._ensure_pool()
                if pool is not None:
                    if self.shared_dispatch:
                        yield from self._execute_shared(
                            pool, tasks, overrides, stats, priority
                        )
                    else:
                        yield from self._execute_supervised(
                            pool, tasks, overrides, stats
                        )
                    return
            else:
                legacy = self._ensure_legacy_pool()
                if legacy is not None:
                    yield from self._execute_legacy(legacy, tasks, overrides, stats)
                    return
        for index, entailment in tasks:
            yield index, self._mark_injected(
                index, self._prove_local(index, entailment, overrides, stats)
            )

    def _execute_shared(
        self,
        pool: SupervisedPool,
        tasks: Sequence[Tuple[int, Entailment]],
        overrides: TaskOverrides,
        stats: BatchStatistics,
        priority: int,
    ) -> Iterator[Tuple[int, BatchOutcome]]:
        """Run one batch through the serve-mode reactor (thread-safe).

        Each task is submitted individually with the batch's priority, so
        tasks from concurrent batches interleave per-task in the pool —
        a large batch no longer occupies the dispatch head-of-line.  The
        reactor guarantees exactly one delivery per submission (broken pools
        and shutdown deliver structured failures), so the collection loop
        below cannot lose an index; the ``serving`` check is a belt-and-
        braces escape hatch against a reactor that died to a bug.
        """
        stats.parallel = True
        done: "queue.SimpleQueue" = queue.SimpleQueue()
        for index, entailment in tasks:
            pool.submit(
                (index, entailment, overrides),
                (lambda outcome, _index=index: done.put((_index, outcome))),
                priority=priority,
            )
        delivered = 0
        expected = len(tasks)
        while delivered < expected:
            try:
                index, outcome = done.get(timeout=1.0)
            except queue.Empty:
                if not pool.serving:
                    detail = "pool reactor is gone"
                    seen = delivered
                    for index, _ in tasks[seen:]:
                        yield index, FailureInfo(kind="crash", detail=detail)
                        delivered += 1
                continue
            delivered += 1
            yield index, self._mark_injected(index, outcome)

    def _execute_supervised(
        self,
        pool: SupervisedPool,
        tasks: Sequence[Tuple[int, Entailment]],
        overrides: TaskOverrides,
        stats: BatchStatistics,
    ) -> Iterator[Tuple[int, BatchOutcome]]:
        stats.parallel = True
        # The pool indexes payloads by position; faults are planned against
        # batch indices.  Dispatch (index, entailment, overrides) triples and
        # let the worker unpack, so ``should_fire`` sees the batch index.
        retried_before = pool.retried
        respawned_before = pool.respawned_workers
        try:
            payloads = [(index, entailment, overrides) for index, entailment in tasks]
            for position, outcome in pool.run(payloads):
                index = tasks[position][0]
                yield index, self._mark_injected(index, outcome)
        finally:
            stats.retried += pool.retried - retried_before
            stats.respawned_workers += pool.respawned_workers - respawned_before

    def _execute_legacy(
        self,
        pool,
        tasks: Sequence[Tuple[int, Entailment]],
        overrides: TaskOverrides,
        stats: BatchStatistics,
    ) -> Iterator[Tuple[int, BatchOutcome]]:
        stats.parallel = True
        chunk = self.chunk_size
        if chunk is None:
            chunk = max(1, len(tasks) // (self.jobs * 4))
        payloads = [(index, entailment, overrides) for index, entailment in tasks]
        for index, result in pool.imap_unordered(_prove_in_worker, payloads, chunksize=chunk):
            if result is None:
                result = FailureInfo(kind="timeout", detail="cooperative deadline")
            yield index, result

    def _echo_for_follower(
        self,
        leader_result: ProofResult,
        leader_canonical: CanonicalForm,
        follower_entailment: Entailment,
        follower_canonical: CanonicalForm,
    ) -> ProofResult:
        """The leader's verdict renamed into a duplicate's own vocabulary.

        The leader and its followers share one canonical form, so composing
        the leader's ``renaming`` (own names -> ``c1..cn``) with the
        follower's ``inverse`` (``c1..cn`` -> follower names) transports the
        verdict, the proof and the counterexample directly.  Doing the rename
        here — instead of round-tripping through ``cache.lookup`` — keeps the
        echo correct even when the leader's entry has already left the cache:
        a small ``max_entries`` LRU, a consumer that stores into a shared
        cache between yields, or a store compaction can all evict it before
        the echo, and the old lookup round-trip crashed the whole batch on
        ``assert echoed is not None`` when they did.
        """
        start = time.perf_counter()
        from_canonical = dict(follower_canonical.inverse)
        mapping = {
            source: from_canonical.get(target, target)
            for source, target in leader_canonical.renaming.items()
        }
        proof = (
            rename_proof(leader_result.proof, mapping)
            if leader_result.proof is not None
            else None
        )
        counterexample = (
            rename_counterexample(leader_result.counterexample, mapping)
            if leader_result.counterexample is not None
            else None
        )
        statistics = replace(
            leader_result.statistics, elapsed_seconds=time.perf_counter() - start
        )
        return ProofResult(
            verdict=leader_result.verdict,
            entailment=follower_entailment,
            proof=proof,
            counterexample=counterexample,
            statistics=statistics,
            from_cache=True,
        )

    def iter_results(
        self,
        entailments: Iterable[Entailment],
        max_seconds: Optional[float] = None,
        record_proof: Optional[bool] = None,
        priority: int = 0,
    ) -> Iterator[Tuple[int, BatchOutcome]]:
        """Yield ``(index, outcome)`` pairs as they complete (not in order).

        Cache hits surface immediately; the remaining work streams back from
        the pool.  Every outcome is a :class:`ProofResult` or a
        :class:`FailureInfo` — never ``None`` — and every input index is
        yielded exactly once.

        ``max_seconds`` / ``record_proof`` override the pool configuration
        for this batch only (``None`` keeps the configured value).  The warm
        workers stay warm — overrides travel with the task payloads.  Note
        the hard watchdog budget stays derived from ``config.max_seconds``,
        so a per-batch ``max_seconds`` larger than the configured one is
        enforced by the watchdog at the *configured* grace budget; callers
        that allow larger per-batch budgets should configure the pool with
        the largest budget they will grant (the entailment service clamps
        per-request timeouts to its configured ceiling for exactly this
        reason).

        ``priority`` ranks this batch's tasks against other concurrent
        batches under shared dispatch (higher runs first); solo mode ignores
        it — there is nothing to rank against.

        Statistics are accumulated batch-locally and folded into
        :attr:`statistics` under a lock when the iteration finishes, so
        concurrent callers (dispatcher lanes) never tear the shared
        counters.  Consequently ``statistics`` moves at batch granularity:
        readers mid-batch see the totals as of the last completed batch.
        """
        overrides: TaskOverrides = (
            None
            if max_seconds is None and record_proof is None
            else (max_seconds, record_proof)
        )
        batch = list(entailments)
        start = time.perf_counter()
        # Batch-local accounting: the shared object is only touched in the
        # ``finally`` fold.  The shared cache's own counters move under its
        # internal lock; this batch's share is attributed per-lookup (a
        # before/after delta over the whole batch would double-count under
        # concurrent lanes).
        stats = BatchStatistics(jobs=self.jobs)
        try:
            leaders: List[Tuple[int, Entailment]] = []
            canonicals: Dict[int, CanonicalForm] = {}
            followers: Dict[int, List[int]] = {}  # leader index -> duplicate indices
            leader_of: Dict[tuple, int] = {}  # fingerprint -> leader index
            for index, entailment in enumerate(batch):
                canonical = (
                    self.cache.canonical_form(entailment) if self.cache is not None else None
                )
                if canonical is None:
                    leaders.append((index, entailment))
                    continue
                canonicals[index] = canonical
                # Hold the cache lock across lookup + disk_hits delta so the
                # "did the second tier answer this?" attribution is atomic.
                with self.cache.lock:
                    disk_hits_before = self.cache.disk_hits
                    cached = self.cache.lookup(entailment, canonical)
                    if cached is not None:
                        stats.disk_hits += self.cache.disk_hits - disk_hits_before
                if cached is not None:
                    stats.cache_hits += 1
                    stats.count_verdict(cached)
                    yield index, cached
                    continue
                stats.cache_misses += 1
                leader = leader_of.get(canonical.key)
                if leader is None:
                    leader_of[canonical.key] = index
                    leaders.append((index, entailment))
                else:
                    followers.setdefault(leader, []).append(index)

            orphans: List[Tuple[int, Entailment]] = []
            for index, outcome in self._execute(leaders, overrides, stats, priority):
                if isinstance(outcome, ProofResult):
                    stats.absorb_proved(outcome)
                    if self.cache is not None and index in canonicals:
                        self.cache.store(batch[index], outcome, canonicals[index])
                else:
                    stats.absorb_failure(outcome)
                stats.count_verdict(outcome)
                yield index, outcome
                for duplicate in followers.get(index, ()):
                    if isinstance(outcome, ProofResult):
                        # Rename the leader's result directly; echoes are
                        # *dedup* events, not cache traffic — they must not
                        # depend on the entry surviving in the cache, and
                        # they must not inflate its hit counters.
                        echoed = self._echo_for_follower(
                            outcome,
                            canonicals[index],
                            batch[duplicate],
                            canonicals[duplicate],
                        )
                        stats.deduplicated += 1
                        stats.count_verdict(echoed)
                        yield duplicate, echoed
                    elif outcome.kind in ("timeout", "oom") and not outcome.injected:
                        # A genuine budget exhaustion is a property of the
                        # instance; its alpha-equivalent copies would exhaust
                        # the same budget.  Echo the failure (frozen, shareable).
                        stats.count_verdict(outcome)
                        yield duplicate, outcome
                    else:
                        # The representative crashed (or its failure was
                        # injected): that says nothing about the instance.
                        # Re-dispatch the copies on their own merits.
                        orphans.append((duplicate, batch[duplicate]))

            for index, outcome in self._execute(orphans, overrides, stats, priority):
                if isinstance(outcome, ProofResult):
                    stats.absorb_proved(outcome)
                    if self.cache is not None and index in canonicals:
                        self.cache.store(batch[index], outcome, canonicals[index])
                else:
                    stats.absorb_failure(outcome)
                stats.count_verdict(outcome)
                yield index, outcome
        finally:
            stats.elapsed_seconds += time.perf_counter() - start
            with self._stats_lock:
                self.statistics.fold(stats)

    def iter_ordered(
        self,
        entailments: Iterable[Entailment],
        max_seconds: Optional[float] = None,
        record_proof: Optional[bool] = None,
        priority: int = 0,
    ) -> Iterator[Tuple[int, BatchOutcome]]:
        """Yield ``(index, outcome)`` in input order, streaming as soon as possible."""
        buffered: Dict[int, BatchOutcome] = {}
        next_index = 0
        for index, outcome in self.iter_results(
            entailments, max_seconds, record_proof, priority
        ):
            buffered[index] = outcome
            while next_index in buffered:
                yield next_index, buffered.pop(next_index)
                next_index += 1

    def prove_all(
        self,
        entailments: Iterable[Entailment],
        max_seconds: Optional[float] = None,
        record_proof: Optional[bool] = None,
        priority: int = 0,
    ) -> List[BatchOutcome]:
        """Check the whole batch and return outcomes in input order.

        Entries are :class:`ProofResult` for decided instances and
        :class:`FailureInfo` for the rest (timeout, OOM, quarantined crash);
        no entry is ever ``None`` and no entry is silently dropped.
        """
        batch = list(entailments)
        results: List[Optional[BatchOutcome]] = [None] * len(batch)
        delivered = [False] * len(batch)
        for index, outcome in self.iter_results(batch, max_seconds, record_proof, priority):
            results[index] = outcome
            delivered[index] = True
        assert all(delivered), "every batch entry must produce exactly one outcome"
        return results  # type: ignore[return-value]
