"""Batch proving: parallel entailment checking with alpha-equivalence caching.

Every workload this prover serves — the paper's Tables 1-3 batches, the
verification-condition stream of the symbolic-execution front end, CLI files —
is a *batch* of independent entailments.  :class:`BatchProver` turns the fast
single-query prover into a batch engine with two orthogonal levers:

* **parallelism** — a persistent :mod:`multiprocessing` pool; each worker
  process holds one warm :class:`~repro.core.prover.Prover` (and its interning
  tables, ordering caches and so on) for its whole lifetime, and tasks are
  dispatched in chunks to amortise the IPC.  Results stream back as they
  complete (:meth:`BatchProver.iter_results`) or in input order
  (:meth:`BatchProver.iter_ordered` / :meth:`BatchProver.prove_all`);
* **memoisation** — a :class:`~repro.core.cache.ProofCache` in the
  coordinating process answers alpha-equivalent queries without proving, and
  additionally *deduplicates within the batch*: structurally identical
  entailments are proved once and the verdict is renamed back for every copy.

The two compose: cache lookups and deduplication happen before dispatch, so
the pool only ever sees one representative per equivalence class.

The engine degrades gracefully: with ``jobs=1``, or on platforms where a
worker pool cannot be created (no ``fork``/``spawn`` support, sandboxed
environments), everything runs in-process through the same code path, with a
single warm prover — behaviour and verdicts are identical either way.

Workers are stateless with respect to the batch: a task is ``(index,
entailment)`` and the reply is ``(index, result)``, so scheduling order never
affects verdicts.  When the configuration carries a per-instance budget
(``ProverConfig.max_seconds``), a worker converts
:class:`~repro.core.prover.ProverTimeout` into a ``None`` result; ``None``
therefore means "undecided within budget" everywhere in this module.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.cache import ProofCache
from repro.core.config import ProverConfig
from repro.core.prover import Prover, ProverTimeout
from repro.core.result import ProofResult, ProverStatistics
from repro.logic.canonical import CanonicalForm
from repro.logic.formula import Entailment, lseg, pts
from repro.logic.terms import make_const

__all__ = ["BatchProver", "BatchStatistics", "default_jobs"]


def default_jobs() -> int:
    """A sensible worker count for this machine (capped to keep startup cheap)."""
    return max(1, min(os.cpu_count() or 1, 8))


# ---------------------------------------------------------------------------
# Worker-side machinery.  Module-level so that it is picklable under both the
# fork and spawn start methods; the prover is created once per worker process
# by the initializer and reused for every task.
# ---------------------------------------------------------------------------

_WORKER_PROVER: Optional[Prover] = None


def _reintern(entailment: Entailment) -> Entailment:
    """Rebuild an unpickled entailment over the worker's interned constants.

    Pickling bypasses the intern tables, so a received entailment would miss
    every identity fast path; renaming each constant to its interned twin
    restores the sharing the warm prover relies on.
    """
    return entailment.rename({c: make_const(c.name) for c in entailment.constants()})


def _initialize_worker(config: ProverConfig) -> None:
    global _WORKER_PROVER
    _WORKER_PROVER = Prover(config)
    # Prime the imports, ordering caches and intern tables with a tiny proof
    # so the first real task does not pay the warm-up.
    warmup = Entailment.build(
        lhs=[pts("wk_a", "wk_b"), pts("wk_b", "nil")], rhs=[lseg("wk_a", "nil")]
    )
    try:
        _WORKER_PROVER.prove(warmup)
    except ProverTimeout:  # pragma: no cover - only with absurdly small budgets
        pass


def _prove_in_worker(task: Tuple[int, Entailment]) -> Tuple[int, Optional[ProofResult]]:
    index, entailment = task
    assert _WORKER_PROVER is not None, "worker used before initialisation"
    try:
        return index, _WORKER_PROVER.prove(_reintern(entailment))
    except ProverTimeout:
        return index, None


# ---------------------------------------------------------------------------
# Coordinator side.
# ---------------------------------------------------------------------------


@dataclass
class BatchStatistics:
    """Aggregated accounting for everything a :class:`BatchProver` has run.

    ``prover`` sums the per-result work counters of genuinely proved
    instances; cache hits and deduplicated copies contribute no prover work
    (that is the point) and are counted separately.
    """

    total: int = 0
    proved: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    timed_out: int = 0
    valid: int = 0
    invalid: int = 0
    jobs: int = 1
    parallel: bool = False
    elapsed_seconds: float = 0.0
    prover: ProverStatistics = field(default_factory=ProverStatistics)

    def absorb_proved(self, result: ProofResult) -> None:
        """Fold one freshly proved result into the aggregate counters."""
        self.proved += 1
        for item in fields(ProverStatistics):
            setattr(
                self.prover,
                item.name,
                getattr(self.prover, item.name) + getattr(result.statistics, item.name),
            )

    def count_verdict(self, result: Optional[ProofResult]) -> None:
        self.total += 1
        if result is None:
            self.timed_out += 1
        elif result.is_valid:
            self.valid += 1
        else:
            self.invalid += 1


class BatchProver:
    """Check batches of entailments in parallel, memoising under renaming.

    Parameters
    ----------
    config:
        Prover configuration used by every worker (and the in-process
        fallback).  Give it a ``max_seconds`` budget for per-instance
        timeouts; timed-out instances come back as ``None``.
    jobs:
        Worker processes.  ``1`` (the default) runs in-process — no pool, no
        pickling, verdicts bit-identical to a bare :class:`Prover` loop.
    cache:
        ``True`` (default) for a fresh :class:`ProofCache`, ``False``/``None``
        to disable caching *and* in-batch deduplication, or an existing
        :class:`ProofCache` to share across batch provers.
    chunk_size:
        Tasks per pool dispatch; defaults to a heuristic that keeps every
        worker busy while bounding IPC round trips.
    mp_context:
        A :mod:`multiprocessing` context to use instead of the default
        (fork where available).  Mainly for tests.

    The instance is reusable across many batches; the pool stays warm.  Use
    it as a context manager (or call :meth:`close`) to release the workers.
    """

    def __init__(
        self,
        config: Optional[ProverConfig] = None,
        jobs: int = 1,
        cache: Union[bool, ProofCache, None] = True,
        chunk_size: Optional[int] = None,
        mp_context=None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.config = config if config is not None else ProverConfig()
        self.jobs = jobs
        if cache is True:
            self.cache: Optional[ProofCache] = ProofCache()
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        self.chunk_size = chunk_size
        self.statistics = BatchStatistics(jobs=jobs)
        self._mp_context = mp_context
        self._pool = None
        self._pool_unavailable = False
        self._local_prover: Optional[Prover] = None

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release the worker processes.  A later batch starts a fresh pool."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "BatchProver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self):
        """The persistent pool, or ``None`` when parallelism is unavailable."""
        if self._pool is not None:
            return self._pool
        if self._pool_unavailable:
            return None
        try:
            context = self._mp_context
            if context is None:
                methods = multiprocessing.get_all_start_methods()
                context = multiprocessing.get_context(
                    "fork" if "fork" in methods else None
                )
            self._pool = context.Pool(
                processes=self.jobs,
                initializer=_initialize_worker,
                initargs=(self.config,),
            )
        except (OSError, ValueError, ImportError, PermissionError):
            # No usable multiprocessing on this platform (or in this
            # sandbox): degrade to in-process execution, once, quietly.
            self._pool_unavailable = True
            return None
        return self._pool

    def _prove_local(self, entailment: Entailment) -> Optional[ProofResult]:
        if self._local_prover is None:
            self._local_prover = Prover(self.config)
        try:
            return self._local_prover.prove(entailment)
        except ProverTimeout:
            return None

    # -- execution ---------------------------------------------------------
    def _execute(
        self, tasks: Sequence[Tuple[int, Entailment]]
    ) -> Iterator[Tuple[int, Optional[ProofResult]]]:
        """Run the deduplicated tasks, yielding ``(index, result)`` as completed."""
        if not tasks:
            return
        pool = self._ensure_pool() if self.jobs > 1 else None
        if pool is None:
            for index, entailment in tasks:
                yield index, self._prove_local(entailment)
            return
        self.statistics.parallel = True
        chunk = self.chunk_size
        if chunk is None:
            chunk = max(1, len(tasks) // (self.jobs * 4))
        for index, result in pool.imap_unordered(_prove_in_worker, tasks, chunksize=chunk):
            yield index, result

    def iter_results(
        self, entailments: Iterable[Entailment]
    ) -> Iterator[Tuple[int, Optional[ProofResult]]]:
        """Yield ``(index, result)`` pairs as they complete (not in order).

        Cache hits surface immediately; the remaining work streams back from
        the pool.  A ``None`` result means the instance exceeded the
        configured per-instance budget.
        """
        batch = list(entailments)
        start = time.perf_counter()
        try:
            leaders: List[Tuple[int, Entailment]] = []
            canonicals: Dict[int, CanonicalForm] = {}
            followers: Dict[int, List[int]] = {}  # leader index -> duplicate indices
            leader_of: Dict[tuple, int] = {}  # fingerprint -> leader index
            for index, entailment in enumerate(batch):
                canonical = (
                    self.cache.canonical_form(entailment) if self.cache is not None else None
                )
                if canonical is None:
                    leaders.append((index, entailment))
                    continue
                canonicals[index] = canonical
                cached = self.cache.lookup(entailment, canonical)
                if cached is not None:
                    self.statistics.cache_hits += 1
                    self.statistics.count_verdict(cached)
                    yield index, cached
                    continue
                leader = leader_of.get(canonical.key)
                if leader is None:
                    leader_of[canonical.key] = index
                    leaders.append((index, entailment))
                else:
                    followers.setdefault(leader, []).append(index)

            for index, result in self._execute(leaders):
                if result is not None:
                    self.statistics.absorb_proved(result)
                    if self.cache is not None and index in canonicals:
                        self.cache.store(batch[index], result, canonicals[index])
                self.statistics.count_verdict(result)
                yield index, result
                for duplicate in followers.get(index, ()):
                    if result is None:
                        # The representative timed out; its copies would too.
                        self.statistics.count_verdict(None)
                        yield duplicate, None
                        continue
                    assert self.cache is not None
                    echoed = self.cache.lookup(batch[duplicate], canonicals[duplicate])
                    assert echoed is not None, "stored leader result must be retrievable"
                    self.statistics.deduplicated += 1
                    self.statistics.count_verdict(echoed)
                    yield duplicate, echoed
        finally:
            self.statistics.elapsed_seconds += time.perf_counter() - start

    def iter_ordered(
        self, entailments: Iterable[Entailment]
    ) -> Iterator[Tuple[int, Optional[ProofResult]]]:
        """Yield ``(index, result)`` in input order, streaming as soon as possible."""
        buffered: Dict[int, Optional[ProofResult]] = {}
        next_index = 0
        for index, result in self.iter_results(entailments):
            buffered[index] = result
            while next_index in buffered:
                yield next_index, buffered.pop(next_index)
                next_index += 1

    def prove_all(self, entailments: Iterable[Entailment]) -> List[Optional[ProofResult]]:
        """Check the whole batch and return results in input order.

        Entries are ``None`` only for instances that exceeded the configured
        per-instance budget (``config.max_seconds``).
        """
        batch = list(entailments)
        results: List[Optional[ProofResult]] = [None] * len(batch)
        delivered = [False] * len(batch)
        for index, result in self.iter_results(batch):
            results[index] = result
            delivered[index] = True
        assert all(delivered), "every batch entry must produce exactly one result"
        return results
