"""Crash-safe persistence: the on-disk proof store and the run journal.

The batch layer's alpha-equivalence cache (:mod:`repro.core.cache`) is worth
38-80x on warm workloads and, until this module, died with the coordinating
process — a SIGKILLed nightly campaign restarted from zero.  This module is
the durability tier under it, plus the checkpoint journal the campaign
drivers use for ``--resume``.

Both artifacts share one **append-only record framing**:

.. code-block:: text

    file   := header record*
    header := b"SLPSTORE" version:u16le kind:u16le           (12 bytes)
    record := magic:4 length:u32le crc32:u32le digest:16 payload

* ``magic`` (``b"\\xabRC1"``) makes records *resynchronisable*: after a bad
  region, scanning forward for the next magic that heads a CRC-valid record
  distinguishes a torn tail (nothing valid follows — truncate) from mid-file
  corruption (valid records follow — quarantine and rebuild).
* ``crc32`` covers the payload, so a flipped bit is detected rather than
  deserialised.
* ``digest`` is a 16-byte key fingerprint, letting :class:`ProofStore` build
  its key index on open *without* unpickling a single payload.
* ``length`` is sanity-capped; a corrupted length cannot make the scanner
  allocate gigabytes or walk off the file.

**Recovery state machine** (``open()`` → usable store, never an exception
for file damage):

1. missing file → create (header only);
2. unreadable / wrong-magic / wrong-kind header → quarantine the file
   (rename to ``<path>.corrupt-N``) and start fresh;
3. scan records; all valid → done;
4. damage with **no** valid record after it → torn tail: truncate to the end
   of the last valid record (the classic crash-mid-append);
5. damage **with** valid records after it → mid-file corruption: quarantine
   the damaged file and rebuild a fresh one from every salvaged record.

**Concurrency**: writers hold an exclusive ``fcntl.flock`` on a sidecar
``<path>.lock`` file (stable across the rename games above); readers take it
shared while scanning appended tails.  Several ``slp`` processes can
therefore share one store: each sees the others' appends on its next refresh,
and recovery/compaction are serialised.  On platforms without :mod:`fcntl`
the locks degrade to no-ops (single-process use stays correct).

**Compaction**: updated keys leave dead records behind; when the dead ratio
passes a threshold the store rewrites live records into a temp file and
atomically ``os.replace``\\ s it over the old one.

**Chaos**: a :class:`~repro.core.faults.DiskFaultPlan` (or the
``SLP_DISK_FAULT_PLAN`` environment variable) disturbs appends with
deterministic torn writes, bit flips and ENOSPC — the recovery paths above
are exercised by the fault suite on every CI run, not once a year by a power
cut.
"""

from __future__ import annotations

import errno
import hashlib
import io
import os
import pickle
import struct
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.faults import DiskFaultPlan, DiskFaultSpec, InjectedDiskFault

try:  # pragma: no cover - import guard exercised only on exotic platforms
    import fcntl
except ImportError:  # pragma: no cover - Windows
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "JournalMismatch",
    "ProofStore",
    "RunJournal",
    "StoreStatistics",
]

_HEADER_MAGIC = b"SLPSTORE"
_HEADER_STRUCT = struct.Struct("<8sHH")  # magic, format version, file kind
_HEADER_SIZE = _HEADER_STRUCT.size
_FORMAT_VERSION = 1

_KIND_PROOF_STORE = 1
_KIND_RUN_JOURNAL = 2

_RECORD_MAGIC = b"\xabRC1"
_FRAME_STRUCT = struct.Struct("<4sII16s")  # magic, payload length, crc32, key digest
_FRAME_SIZE = _FRAME_STRUCT.size

#: Sanity cap on a single record's payload: a corrupted length field must not
#: make the scanner allocate unbounded memory.  Proof-cache entries are a few
#: KB; 64 MB is orders of magnitude of headroom.
_MAX_PAYLOAD = 64 * 1024 * 1024

_ZERO_DIGEST = b"\x00" * 16


class JournalMismatch(ValueError):
    """A ``--resume`` journal belongs to a different run configuration."""


def _key_digest(key: Any) -> bytes:
    """A stable 16-byte fingerprint of a canonical cache key.

    ``repr`` of the key (nested tuples of ints and strings) is deterministic
    across processes and Python versions in a way pickled bytes are not
    (pickle memoisation depends on object identity).  The digest is only an
    index accelerator — :meth:`ProofStore.get` verifies the full key stored
    in the payload, so a collision degrades to a miss, never a wrong answer.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).digest()[:16]


def _frame(payload: bytes, digest: bytes) -> bytes:
    return (
        _FRAME_STRUCT.pack(_RECORD_MAGIC, len(payload), zlib.crc32(payload), digest)
        + payload
    )


def _parse_frame(data: bytes, offset: int) -> Optional[Tuple[bytes, bytes, int]]:
    """Parse one record at ``offset`` of ``data``.

    Returns ``(digest, payload, end_offset)`` or ``None`` when no valid
    record starts there (bad magic, insane length, short read, CRC mismatch).
    """
    end = offset + _FRAME_SIZE
    if end > len(data):
        return None
    magic, length, crc, digest = _FRAME_STRUCT.unpack_from(data, offset)
    if magic != _RECORD_MAGIC or length > _MAX_PAYLOAD:
        return None
    payload_end = end + length
    if payload_end > len(data):
        return None
    payload = data[end:payload_end]
    if zlib.crc32(payload) != crc:
        return None
    return digest, payload, payload_end


def _find_valid_record_after(data: bytes, start: int) -> bool:
    """Is there any CRC-valid record strictly after ``start``?

    Distinguishes a torn tail (no) from mid-file corruption (yes).  The
    search is a byte scan for the record magic; each candidate is fully
    validated, so garbage that merely contains the magic bytes does not count.
    """
    position = data.find(_RECORD_MAGIC, start + 1)
    while position != -1:
        if _parse_frame(data, position) is not None:
            return True
        position = data.find(_RECORD_MAGIC, position + 1)
    return False


class _ScanResult:
    """Everything one pass over a record file learns."""

    def __init__(self) -> None:
        self.records: List[Tuple[bytes, int, int, bytes]] = []  # digest, offset, end, payload
        self.end_offset: int = _HEADER_SIZE
        self.damage_offset: Optional[int] = None
        self.corrupt_midfile: bool = False


def _scan(data: bytes) -> _ScanResult:
    """Walk ``data`` (header already validated) record by record."""
    result = _ScanResult()
    offset = _HEADER_SIZE
    while offset < len(data):
        parsed = _parse_frame(data, offset)
        if parsed is None:
            result.damage_offset = offset
            result.corrupt_midfile = _find_valid_record_after(data, offset)
            return result
        digest, payload, end = parsed
        result.records.append((digest, offset, end, payload))
        offset = end
    result.end_offset = offset
    return result


class _FileLock:
    """Advisory lock on a sidecar file, surviving renames of the data file."""

    def __init__(self, path: str):
        self.path = path
        self._fd: Optional[int] = None

    def _handle(self) -> Optional[int]:
        if fcntl is None:
            return None
        if self._fd is None:
            self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        return self._fd

    def acquire(self, exclusive: bool) -> None:
        fd = self._handle()
        if fd is not None:
            fcntl.flock(fd, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)

    def release(self) -> None:
        if fcntl is not None and self._fd is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            finally:
                self._fd = None


class _Locked:
    """``with store._locked(exclusive):`` — scoped advisory locking."""

    def __init__(self, lock: _FileLock, exclusive: bool):
        self._lock = lock
        self._exclusive = exclusive

    def __enter__(self) -> None:
        self._lock.acquire(self._exclusive)

    def __exit__(self, *exc_info) -> None:
        self._lock.release()


class StoreStatistics:
    """Counters a record file accumulates over its lifetime (one process)."""

    def __init__(self) -> None:
        self.appends = 0
        self.append_errors = 0
        self.reads = 0
        self.read_errors = 0
        self.decode_errors = 0
        self.torn_truncations = 0
        self.quarantines = 0
        self.compactions = 0
        self.refreshes = 0

    def to_json(self) -> Dict[str, int]:
        return dict(self.__dict__)


class _RecordFile:
    """The shared append-only framed file under both artifacts.

    Subclasses fix the header ``kind`` and interpret payloads; this class
    owns opening, recovery, locking, appending, refreshing and fault
    injection.  All damage handling happens here so the "never raises on a
    damaged file" property is one implementation, tested once, inherited by
    both the proof store and the run journal.
    """

    _FILE_KIND = 0  # subclasses override

    def __init__(
        self,
        path: str,
        fsync: bool = True,
        fault_plan: Optional[DiskFaultPlan] = None,
    ):
        self.path = path
        self.fsync = fsync
        self.statistics = StoreStatistics()
        self._fault_plan = fault_plan if fault_plan is not None else DiskFaultPlan.from_env()
        self._operation = 0  # append counter the fault plan indexes
        self._lock = _FileLock(path + ".lock")
        self._fd: Optional[io.BufferedRandom] = None
        self._ino: Optional[int] = None
        self._offset = _HEADER_SIZE
        self._broken = False  # a torn write "killed" this handle (chaos mode)
        self._closed = False
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with _Locked(self._lock, exclusive=True):
            self._open_and_recover()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Flush and release the file handle and the lock (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._fd is not None:
            try:
                self._fd.flush()
                if self.fsync:
                    os.fsync(self._fd.fileno())
            except (OSError, ValueError):
                pass
            try:
                self._fd.close()
            except OSError:
                pass
            self._fd = None
        self._lock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- opening and recovery (exclusive lock held) ------------------------
    def _header_bytes(self) -> bytes:
        return _HEADER_STRUCT.pack(_HEADER_MAGIC, _FORMAT_VERSION, self._FILE_KIND)

    def _create_fresh(self) -> None:
        fd = open(self.path, "w+b")
        fd.write(self._header_bytes())
        fd.flush()
        if self.fsync:
            os.fsync(fd.fileno())
        self._adopt(fd, _HEADER_SIZE)
        self._on_reset()

    def _adopt(self, fd: io.BufferedRandom, offset: int) -> None:
        if self._fd is not None and self._fd is not fd:
            try:
                self._fd.close()
            except OSError:
                pass
        self._fd = fd
        self._ino = os.fstat(fd.fileno()).st_ino
        self._offset = offset

    def _quarantine(self) -> str:
        """Rename the damaged file aside (first free ``<path>.corrupt-N``)."""
        number = 0
        while True:
            candidate = "{}.corrupt-{}".format(self.path, number)
            if not os.path.exists(candidate):
                break
            number += 1
        os.replace(self.path, candidate)
        self.statistics.quarantines += 1
        return candidate

    def _open_and_recover(self) -> None:
        """Open ``self.path``, repairing or quarantining damage as needed."""
        if not os.path.exists(self.path):
            self._create_fresh()
            return
        try:
            fd = open(self.path, "r+b")
        except OSError:
            # Unreadable file (permissions churn, stale directory entry):
            # move it aside and start fresh rather than crash the prover.
            try:
                self._quarantine()
            except OSError:
                pass
            self._create_fresh()
            return
        data = fd.read()
        header_ok = len(data) >= _HEADER_SIZE and data[:_HEADER_SIZE] == self._header_bytes()
        if not header_ok:
            fd.close()
            self._quarantine()
            self._create_fresh()
            return
        scan = _scan(data)
        if scan.damage_offset is None:
            self._adopt(fd, scan.end_offset)
            self._on_reset()
            for digest, offset, end, payload in scan.records:
                self._on_record(digest, offset, end, payload)
            return
        if not scan.corrupt_midfile:
            # Torn tail: everything before the damage is intact; cut the tear.
            fd.truncate(scan.damage_offset)
            fd.flush()
            if self.fsync:
                os.fsync(fd.fileno())
            self.statistics.torn_truncations += 1
            self._adopt(fd, scan.damage_offset)
            self._on_reset()
            for digest, offset, end, payload in scan.records:
                self._on_record(digest, offset, end, payload)
            return
        # Mid-file corruption: salvage every valid record (before *and* after
        # the damage — resync via the record magic), rebuild a fresh file.
        salvaged = list(scan.records)
        position = scan.damage_offset + 1
        while True:
            position = data.find(_RECORD_MAGIC, position)
            if position == -1:
                break
            parsed = _parse_frame(data, position)
            if parsed is None:
                position += 1
                continue
            digest, payload, end = parsed
            salvaged.append((digest, position, end, payload))
            position = end
        fd.close()
        self._quarantine()
        rebuilt = open(self.path, "w+b")
        rebuilt.write(self._header_bytes())
        self._on_reset()
        offset = _HEADER_SIZE
        for digest, _, _, payload in salvaged:
            framed = _frame(payload, digest)
            rebuilt.write(framed)
            self._on_record(digest, offset, offset + len(framed), payload)
            offset += len(framed)
        rebuilt.flush()
        if self.fsync:
            os.fsync(rebuilt.fileno())
        self._adopt(rebuilt, offset)

    # -- subclass hooks ----------------------------------------------------
    def _on_reset(self) -> None:
        """The in-memory view is being rebuilt from scratch."""

    def _on_record(self, digest: bytes, offset: int, end: int, payload: bytes) -> None:
        """One valid record was observed at ``[offset, end)``."""

    # -- refreshing (sees other processes' appends) ------------------------
    def _refresh_locked(self) -> None:
        """Fold in whatever changed on disk since our last look.

        Read-only: damage observed here (e.g. another process is mid-append)
        is *not* repaired — repair belongs to ``open()`` under an exclusive
        lock; the refresh simply stops at the last valid record and retries
        on the next call.
        """
        assert self._fd is not None
        try:
            stat = os.stat(self.path)
        except OSError:
            return
        if stat.st_ino != self._ino:
            # The file was compacted or rebuilt under us; re-read it whole.
            try:
                fd = open(self.path, "r+b")
            except OSError:
                return
            data = fd.read()
            if len(data) < _HEADER_SIZE or data[:_HEADER_SIZE] != self._header_bytes():
                fd.close()
                return
            scan = _scan(data)
            self._adopt(fd, scan.end_offset)
            self._on_reset()
            for digest, offset, end, payload in scan.records:
                self._on_record(digest, offset, end, payload)
            self.statistics.refreshes += 1
            return
        if stat.st_size <= self._offset:
            return
        self._fd.seek(self._offset)
        tail = self._fd.read(stat.st_size - self._offset)
        offset = 0
        while offset < len(tail):
            parsed = _parse_frame(tail, offset)
            if parsed is None:
                break
            digest, payload, end = parsed
            self._on_record(
                digest, self._offset + offset, self._offset + end, payload
            )
            offset = end
        self._offset += offset
        self.statistics.refreshes += 1

    def refresh(self) -> None:
        """Pick up records other processes appended since the last look."""
        if self._fd is None or self._broken:
            return
        with _Locked(self._lock, exclusive=False):
            self._refresh_locked()

    # -- appending ---------------------------------------------------------
    def _append_locked(self, digest: bytes, payload: bytes) -> Tuple[int, int]:
        """Append one framed record at EOF; returns its ``(offset, end)``.

        Raises ``OSError`` on failure (injected or real).  A *real* partial
        write is repaired by truncating back to the pre-append offset; an
        injected torn write deliberately leaves the tear and marks this
        handle broken — simulating the process dying mid-write, which is the
        scenario the next ``open()`` must recover from.
        """
        assert self._fd is not None
        self._refresh_locked()  # appends go after everyone else's records
        framed = _frame(payload, digest)
        spec = self._next_fault()
        start = self._offset
        if spec is not None and spec.kind == "enospc":
            self.statistics.append_errors += 1
            raise InjectedDiskFault(errno.ENOSPC, "injected disk-full on append")
        if spec is not None and spec.kind == "bitflip":
            rng = self._fault_plan.corruption_rng(self._operation - 1)
            position = rng.randrange(len(framed))
            flipped = bytearray(framed)
            flipped[position] ^= 1 << rng.randrange(8)
            framed = bytes(flipped)
        if spec is not None and spec.kind == "torn":
            cut = max(1, min(len(framed) - 1, int(len(framed) * spec.fraction)))
            self._fd.seek(start)
            self._fd.write(framed[:cut])
            self._fd.flush()
            self._broken = True  # this handle is "dead"; recovery is open()'s job
            self.statistics.append_errors += 1
            raise InjectedDiskFault(errno.EIO, "injected torn write (handle now dead)")
        try:
            self._fd.seek(start)
            self._fd.write(framed)
            self._fd.flush()
            if self.fsync:
                os.fsync(self._fd.fileno())
        except OSError:
            self.statistics.append_errors += 1
            try:  # undo the partial append so the file stays clean
                self._fd.truncate(start)
            except OSError:
                self._broken = True  # cannot even repair: stop writing
            raise
        self._offset = start + len(framed)
        self.statistics.appends += 1
        return start, self._offset

    def _next_fault(self) -> Optional[DiskFaultSpec]:
        operation = self._operation
        self._operation += 1
        if self._fault_plan is None:
            return None
        return self._fault_plan.fault_at(operation)

    def _read_payload(self, offset: int, end: int) -> Optional[bytes]:
        """Re-read and re-verify one record's payload (bit rot surfaces here)."""
        if self._fd is None:
            return None
        try:
            self._fd.seek(offset)
            raw = self._fd.read(end - offset)
        except OSError:
            self.statistics.read_errors += 1
            return None
        parsed = _parse_frame(raw, 0)
        if parsed is None:
            self.statistics.read_errors += 1
            return None
        self.statistics.reads += 1
        return parsed[1]

    @property
    def broken(self) -> bool:
        """True when an (injected) torn write retired this handle."""
        return self._broken


# ---------------------------------------------------------------------------
# The proof store.
# ---------------------------------------------------------------------------


class ProofStore(_RecordFile):
    """The on-disk tier of the proof cache: canonical key -> pickled entry.

    Payloads are pickles of ``(key, verdict_value, proof, counterexample,
    statistics)`` in the *canonical* vocabulary (``c1..cn``), exactly what
    the in-memory cache stores — so a disk hit renames back the same way a
    memory hit does and callers cannot tell them apart.  The key index maps
    16-byte key digests to record extents; lookups verify the full key after
    unpickling, so digest collisions are misses, never wrong answers.

    ``get``/``put`` never raise for file damage: unreadable or undecodable
    records count as misses (with counters), append failures propagate as
    ``OSError`` for the caching tier to swallow.  The store is usable from
    several processes at once (advisory locking; see the module docstring).
    """

    _FILE_KIND = _KIND_PROOF_STORE

    def __init__(
        self,
        path: str,
        fsync: bool = True,
        compact_dead_ratio: float = 0.5,
        compact_min_records: int = 64,
        fault_plan: Optional[DiskFaultPlan] = None,
    ):
        if not 0.0 < compact_dead_ratio <= 1.0:
            raise ValueError("compact_dead_ratio must be in (0, 1]")
        self.compact_dead_ratio = compact_dead_ratio
        self.compact_min_records = compact_min_records
        self._index: Dict[bytes, Tuple[int, int]] = {}
        self._records = 0
        super().__init__(path, fsync=fsync, fault_plan=fault_plan)

    # -- framing hooks -----------------------------------------------------
    def _on_reset(self) -> None:
        self._index = {}
        self._records = 0

    def _on_record(self, digest: bytes, offset: int, end: int, payload: bytes) -> None:
        self._index[digest] = (offset, end)  # later records win (append-only updates)
        self._records += 1

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    @property
    def dead_records(self) -> int:
        return self._records - len(self._index)

    def keys_on_disk(self) -> int:
        """Live record count (distinct key digests)."""
        return len(self._index)

    # -- lookup / store ----------------------------------------------------
    def get(self, key: Any) -> Optional[Tuple[Any, ...]]:
        """The stored ``(verdict_value, proof, counterexample, statistics)``
        tuple for ``key``, or ``None``.

        A miss against the in-memory index triggers one refresh (another
        process may have appended the entry since we last looked) before
        giving up.  Damaged or undecodable records are misses.
        """
        if self._broken:
            return None
        digest = _key_digest(key)
        location = self._index.get(digest)
        if location is None:
            self.refresh()
            location = self._index.get(digest)
            if location is None:
                return None
        payload = self._read_payload(*location)
        if payload is None:
            return None
        try:
            stored = pickle.loads(payload)
            stored_key, verdict_value, proof, counterexample, statistics = stored
        except Exception:
            self.statistics.decode_errors += 1
            return None
        if stored_key != key:  # digest collision: a miss, never a wrong answer
            return None
        return verdict_value, proof, counterexample, statistics

    def put(
        self,
        key: Any,
        verdict_value: str,
        proof: Any,
        counterexample: Any,
        statistics: Any,
    ) -> None:
        """Append one entry (raises ``OSError`` on write failure)."""
        if self._broken:
            raise InjectedDiskFault(errno.EIO, "store handle retired by a torn write")
        payload = pickle.dumps(
            (key, verdict_value, proof, counterexample, statistics),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        digest = _key_digest(key)
        with _Locked(self._lock, exclusive=True):
            offset, end = self._append_locked(digest, payload)
            if digest in self._index:
                # _append_locked's refresh already indexed nothing new for
                # this digest unless another process wrote it; either way the
                # fresh record supersedes it.
                self._records += 1
                self._index[digest] = (offset, end)
            else:
                self._records += 1
                self._index[digest] = (offset, end)
            if (
                self._records >= self.compact_min_records
                and self.dead_records / self._records >= self.compact_dead_ratio
            ):
                self._compact_locked()

    # -- compaction --------------------------------------------------------
    def compact(self) -> None:
        """Rewrite the store with only live records (atomic replace)."""
        if self._fd is None or self._broken:
            return
        with _Locked(self._lock, exclusive=True):
            self._refresh_locked()
            self._compact_locked()

    def _compact_locked(self) -> None:
        assert self._fd is not None
        live: List[Tuple[bytes, bytes]] = []
        for digest, (offset, end) in sorted(self._index.items(), key=lambda kv: kv[1]):
            payload = self._read_payload(offset, end)
            if payload is not None:
                live.append((digest, payload))
        temp_path = self.path + ".compact"
        try:
            with open(temp_path, "wb") as temp:
                temp.write(self._header_bytes())
                for digest, payload in live:
                    temp.write(_frame(payload, digest))
                temp.flush()
                os.fsync(temp.fileno())
            os.replace(temp_path, self.path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            return  # compaction is an optimisation; failing it is not an error
        fd = open(self.path, "r+b")
        self._adopt(fd, _HEADER_SIZE)
        self._on_reset()
        offset = _HEADER_SIZE
        for digest, payload in live:
            end = offset + _FRAME_SIZE + len(payload)
            self._on_record(digest, offset, end, payload)
            offset = end
        self._offset = offset
        self.statistics.compactions += 1


# ---------------------------------------------------------------------------
# The sharded proof store.
# ---------------------------------------------------------------------------


class ShardedProofStore:
    """N :class:`ProofStore` files behind one store interface.

    Keys are routed by the first byte of their 16-byte fingerprint digest
    (``digest[0] % shards``) — digests are uniform, so shards stay balanced.
    Each shard is a complete, independently crash-safe :class:`ProofStore`
    with its **own sidecar lock**, which is the point: concurrent writers
    (several server processes over one store, a campaign running next to a
    live service) only serialise when they touch the *same* shard, instead
    of queueing on one global advisory lock, and a compaction pause stalls
    1/N of the key space instead of all of it.

    Shard files live at ``<path>.shard-K-of-N``.  The shard count is part of
    the layout: reopening with a different ``shards`` routes keys to
    different files, which degrades to misses (stores never return wrong
    answers — every lookup verifies the full key) but wastes the warm state;
    keep the count stable for a given path.  ``shards=1`` still uses the
    sharded layout so the count can be raised later without aliasing the
    unsharded ``<path>`` file.
    """

    def __init__(
        self,
        path: str,
        shards: int = 4,
        fsync: bool = True,
        compact_dead_ratio: float = 0.5,
        compact_min_records: int = 64,
        fault_plan: Optional[DiskFaultPlan] = None,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.path = path
        self._shards: Tuple[ProofStore, ...] = tuple(
            ProofStore(
                self.shard_path(path, index, shards),
                fsync=fsync,
                compact_dead_ratio=compact_dead_ratio,
                compact_min_records=compact_min_records,
                fault_plan=fault_plan,
            )
            for index in range(shards)
        )

    @staticmethod
    def shard_path(path: str, index: int, count: int) -> str:
        return "{}.shard-{}-of-{}".format(path, index, count)

    @property
    def shards(self) -> Tuple[ProofStore, ...]:
        return self._shards

    def _shard_for(self, key: Any) -> ProofStore:
        return self._shards[_key_digest(key)[0] % len(self._shards)]

    # -- the ProofStore surface the caching tier drives --------------------
    def get(self, key: Any) -> Optional[Tuple[Any, ...]]:
        return self._shard_for(key).get(key)

    def put(
        self,
        key: Any,
        verdict_value: str,
        proof: Any,
        counterexample: Any,
        statistics: Any,
    ) -> None:
        self._shard_for(key).put(key, verdict_value, proof, counterexample, statistics)

    def refresh(self) -> None:
        for shard in self._shards:
            shard.refresh()

    def compact(self) -> None:
        for shard in self._shards:
            shard.compact()

    def close(self) -> None:
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedProofStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def keys_on_disk(self) -> int:
        return sum(shard.keys_on_disk() for shard in self._shards)

    @property
    def broken(self) -> bool:
        """True when *every* shard's handle was retired (all writes fail)."""
        return all(shard.broken for shard in self._shards)

    @property
    def statistics(self) -> StoreStatistics:
        """Counters aggregated over all shards (a fresh snapshot each read)."""
        total = StoreStatistics()
        for shard in self._shards:
            for name, value in shard.statistics.to_json().items():
                setattr(total, name, getattr(total, name) + value)
        return total


# ---------------------------------------------------------------------------
# The run journal.
# ---------------------------------------------------------------------------


def _json_payload(record: Dict[str, Any]) -> bytes:
    import json

    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _json_load(payload: bytes) -> Optional[Dict[str, Any]]:
    import json

    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return decoded if isinstance(decoded, dict) else None


class RunJournal(_RecordFile):
    """The campaign checkpoint log: one JSON record per completed unit of work.

    The first record is the run's **metadata** (seed, workload digest,
    options); :meth:`open_run` validates it on resume so a journal can never
    silently replay into a differently-configured campaign.  Subsequent
    records are task completions appended as they happen — after a SIGKILL,
    whatever was journaled is exactly what ``--resume`` skips.

    Records that fail to decode as JSON objects are dropped (counted), which
    composes with the framing-level recovery: a journal truncated at *any*
    byte offset replays to a prefix of its records.
    """

    _FILE_KIND = _KIND_RUN_JOURNAL

    def __init__(
        self,
        path: str,
        fsync: bool = True,
        fault_plan: Optional[DiskFaultPlan] = None,
    ):
        self._entries: List[Dict[str, Any]] = []
        super().__init__(path, fsync=fsync, fault_plan=fault_plan)

    def _on_reset(self) -> None:
        self._entries = []

    def _on_record(self, digest: bytes, offset: int, end: int, payload: bytes) -> None:
        record = _json_load(payload)
        if record is None:
            self.statistics.decode_errors += 1
            return
        self._entries.append(record)

    @property
    def entries(self) -> List[Dict[str, Any]]:
        """Every decoded record, in append order (metadata first)."""
        return list(self._entries)

    def append(self, record: Dict[str, Any]) -> None:
        """Journal one record (raises ``OSError`` on write failure)."""
        if self._broken:
            raise InjectedDiskFault(errno.EIO, "journal handle retired by a torn write")
        payload = _json_payload(record)
        digest = hashlib.sha256(payload).digest()[:16]
        with _Locked(self._lock, exclusive=True):
            self._append_locked(digest, payload)
        self._entries.append(record)

    # -- the campaign-facing API -------------------------------------------
    @classmethod
    def open_run(
        cls,
        path: str,
        meta: Dict[str, Any],
        resume: bool,
        fsync: bool = True,
        fault_plan: Optional[DiskFaultPlan] = None,
    ) -> Tuple["RunJournal", List[Dict[str, Any]]]:
        """Open (or start) a checkpointed run; returns ``(journal, completed)``.

        A fresh run writes ``meta`` as the first record and returns no
        completions.  A resumed run validates the journaled metadata against
        ``meta`` — any difference raises :class:`JournalMismatch`, because
        replaying completions into a different workload would corrupt the
        report — and returns the completed-task records.  Starting a fresh
        run over an existing journal with completions also raises (pass
        ``resume=True`` or use a new directory; silently discarding finished
        work would be worse than either).
        """
        journal = cls(path, fsync=fsync, fault_plan=fault_plan)
        entries = journal.entries
        if not resume:
            if entries:
                journal.close()
                raise JournalMismatch(
                    "{}: journal already holds {} record(s); resume it or use a "
                    "fresh run directory".format(path, len(entries))
                )
            journal.append({"t": "meta", **meta})
            return journal, []
        if not entries:
            # Resuming a run that never journaled anything (killed before the
            # meta record survived) degrades to a fresh run.
            journal.append({"t": "meta", **meta})
            return journal, []
        head, completed = entries[0], entries[1:]
        journaled_meta = {k: v for k, v in head.items() if k != "t"}
        if head.get("t") != "meta" or journaled_meta != meta:
            journal.close()
            raise JournalMismatch(
                "{}: journal belongs to a different run (journaled {!r}, "
                "requested {!r})".format(path, journaled_meta, meta)
            )
        return journal, completed

    def tasks(self) -> Iterator[Dict[str, Any]]:
        """Every journaled record after the metadata head."""
        for record in self._entries:
            if record.get("t") != "meta":
                yield record
