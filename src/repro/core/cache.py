"""A proof cache keyed on canonical forms (alpha-equivalence memoisation).

Batch workloads — the paper's table batches, the symbolic-execution VC stream,
CLI files — are full of entailments that are *renamings* of each other: loop
unrollings re-emit the same invariant-preservation obligation with fresh
cursor names, cloned benchmark instances differ only in variable indices, and
so on.  Verdicts, proofs and counterexamples all transport along such
renamings, so proving one representative per alpha-equivalence class is
enough.

:class:`ProofCache` implements that memoisation as an LRU map from the
canonical fingerprint (:mod:`repro.logic.canonical`) to the verdict plus the
proof/counterexample expressed in the *canonical* vocabulary ``c1..cn``.  On
a hit the stored objects are renamed back into the requesting entailment's
own vocabulary, so callers cannot tell a cached result from a fresh one
(apart from the :attr:`~repro.core.result.ProofResult.from_cache` flag and
the much smaller elapsed time).

:class:`CachingProver` wraps a :class:`~repro.core.prover.Prover` with a
cache for sequential use; the parallel batch engine
(:mod:`repro.core.batch`) drives the cache directly so that it can also
deduplicate in-flight work.

:class:`PersistentProofCache` adds a write-through on-disk second tier
(:mod:`repro.core.store`): every stored entry is also appended to a
crash-safe :class:`~repro.core.store.ProofStore`, and a memory miss falls
through to disk before giving up.  Disk hits are promoted into the LRU and
counted separately (:attr:`~ProofCache.disk_hits`), which is what makes the
warm-restart bench row measurable.  Disk failures never propagate out of the
cache: a failed persist is counted and skipped (the memory tier keeps
working), a damaged record is a miss.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional

from repro.core.config import ProverConfig
from repro.core.faults import DiskFaultPlan
from repro.core.proof import Proof, ProofStep
from repro.core.prover import Prover
from repro.core.result import ProofResult, Verdict
from repro.core.store import ProofStore, ShardedProofStore
from repro.logic.canonical import CanonicalForm, TooSymmetricError, canonicalize
from repro.logic.formula import Entailment
from repro.logic.terms import Const
from repro.semantics.counterexample import Counterexample
from repro.semantics.heap import Heap, NIL_LOC, Stack

__all__ = [
    "ProofCache",
    "PersistentProofCache",
    "CachingProver",
    "rename_proof",
    "rename_counterexample",
]


def rename_proof(proof: Proof, mapping: Mapping[Const, Const]) -> Proof:
    """Apply a constant renaming to every clause of a proof."""
    mapping = dict(mapping)
    return Proof(
        tuple(
            ProofStep(
                step.index,
                step.clause.substitute(mapping),
                step.rule,
                step.premises,
                step.note,
            )
            for step in proof.steps
        )
    )


def rename_counterexample(
    counterexample: Counterexample, mapping: Mapping[Const, Const]
) -> Counterexample:
    """Apply a constant renaming to a counterexample's stack and heap.

    Locations named after renamed constants follow the renaming; anonymous
    locations (the ``anonN`` cells introduced by heap tweaking) keep their
    names unless that would collide with a renamed location, in which case
    they are refreshed.  The location map stays injective, which is what
    preserves (fal)sification under the renaming.
    """
    loc_map: Dict[str, str] = {
        source.name: target.name
        for source, target in mapping.items()
        if not source.is_nil
    }
    bindings = counterexample.stack.bindings
    cells = counterexample.heap.cells
    locations = set(bindings.values()) | set(cells) | counterexample.heap.locations()
    taken = set(loc_map.values()) | {NIL_LOC}
    final: Dict[str, str] = {}
    fresh_index = 0
    for location in sorted(locations):
        if location == NIL_LOC:
            final[location] = location
        elif location in loc_map:
            final[location] = loc_map[location]
        else:
            candidate = location
            while candidate in taken:
                candidate = "anon{}".format(fresh_index)
                fresh_index += 1
            final[location] = candidate
            taken.add(candidate)
    stack = Stack(
        {
            mapping.get(variable, variable): final[location]
            for variable, location in bindings.items()
        }
    )
    def rename_cell(value):
        if isinstance(value, tuple):
            return tuple(final[field] for field in value)
        return final[value]

    heap = Heap({final[address]: rename_cell(value) for address, value in cells.items()})
    return Counterexample(stack=stack, heap=heap, description=counterexample.description)


@dataclass(frozen=True)
class _CacheEntry:
    """A memoised verdict with its artifacts in the canonical vocabulary."""

    verdict: Verdict
    proof: Optional[Proof]
    counterexample: Optional[Counterexample]
    statistics: object  # ProverStatistics of the run that produced the entry


class ProofCache:
    """An LRU cache of proof results keyed on canonical fingerprints.

    The cache is a plain in-process object; in the batch engine it lives in
    the coordinating process (workers stay stateless).  ``max_entries``
    bounds memory; the least recently used entry is evicted first.

    Lookups, stores and counter updates are serialised by an internal
    re-entrant lock, so concurrent dispatcher lanes may share one cache.
    Note the sidecar file locks of a persistent second tier are advisory
    *inter-process* locks (fcntl) — they do nothing between threads of one
    process, which is exactly what this lock covers.  Callers needing a
    multi-step atomic read (e.g. a lookup plus a ``disk_hits`` delta) can
    hold :attr:`lock` around the sequence; it is re-entrant.
    """

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, _CacheEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.uncacheable = 0
        self.disk_hits = 0  # subset of ``hits`` answered by the second tier

    @property
    def lock(self) -> "threading.RLock":
        """The cache's re-entrant lock, for callers composing atomic sequences."""
        return self._lock

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of all cache work answered from the cache (0.0 when unused).

        The denominator counts ``uncacheable`` canonicalisation opt-outs as
        well as ordinary misses: an entailment too symmetric to fingerprint
        is a query the cache was asked about and could not answer, so leaving
        it out would over-report on symmetric-heavy workloads.  In-batch
        deduplication echoes are *not* cache traffic (they are counted by the
        batch layer as ``deduplicated``) and never move this rate.
        """
        total = self.hits + self.misses + self.uncacheable
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.uncacheable = 0
            self.disk_hits = 0

    # -- second-tier hooks -------------------------------------------------
    def _fetch_second_tier(self, key: tuple) -> Optional[_CacheEntry]:
        """A memory miss falls through here; ``None`` means a full miss."""
        return None

    def _persist(self, key: tuple, entry: _CacheEntry) -> None:
        """Write-through hook called after every in-memory store."""

    # -- canonicalisation --------------------------------------------------
    def canonical_form(self, entailment: Entailment) -> Optional[CanonicalForm]:
        """Canonicalise, or ``None`` for entailments too symmetric to key."""
        try:
            return canonicalize(entailment)
        except TooSymmetricError:
            with self._lock:
                self.uncacheable += 1
            return None

    # -- lookup / store ----------------------------------------------------
    def lookup(
        self,
        entailment: Entailment,
        canonical: Optional[CanonicalForm] = None,
    ) -> Optional[ProofResult]:
        """The memoised result for ``entailment``, renamed into its vocabulary.

        Pass ``canonical`` when the caller already canonicalised (the batch
        engine does, to share the work between lookup, dedup and store).
        """
        start = time.perf_counter()
        if canonical is None:
            canonical = self.canonical_form(entailment)
        if canonical is None:
            return None
        with self._lock:
            entry = self._entries.get(canonical.key)
            if entry is None:
                entry = self._fetch_second_tier(canonical.key)
                if entry is None:
                    self.misses += 1
                    return None
                self.disk_hits += 1
                self._entries[canonical.key] = entry  # promote into the LRU
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
            self._entries.move_to_end(canonical.key)
            self.hits += 1
        # Entries are immutable; renaming happens outside the lock so slow
        # proof/counterexample transport doesn't serialise other lanes.
        inverse = dict(canonical.inverse)
        proof = rename_proof(entry.proof, inverse) if entry.proof is not None else None
        counterexample = (
            rename_counterexample(entry.counterexample, inverse)
            if entry.counterexample is not None
            else None
        )
        statistics = replace(entry.statistics, elapsed_seconds=time.perf_counter() - start)
        return ProofResult(
            verdict=entry.verdict,
            entailment=entailment,
            proof=proof,
            counterexample=counterexample,
            statistics=statistics,
            from_cache=True,
        )

    def store(
        self,
        entailment: Entailment,
        result: ProofResult,
        canonical: Optional[CanonicalForm] = None,
    ) -> bool:
        """Memoise ``result`` under the entailment's fingerprint.

        Returns ``False`` when the entailment is uncacheable.  The proof and
        counterexample are renamed into the canonical vocabulary so any
        alpha-equivalent future query can rename them back into its own.
        """
        if canonical is None:
            canonical = self.canonical_form(entailment)
        if canonical is None:
            return False
        renaming = dict(canonical.renaming)
        proof = rename_proof(result.proof, renaming) if result.proof is not None else None
        counterexample = (
            rename_counterexample(result.counterexample, renaming)
            if result.counterexample is not None
            else None
        )
        entry = _CacheEntry(
            verdict=result.verdict,
            proof=proof,
            counterexample=counterexample,
            statistics=result.statistics,
        )
        with self._lock:
            self._entries[canonical.key] = entry
            self._entries.move_to_end(canonical.key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            # Persisting under the lock also serialises the second tier's
            # file handle, which is not thread-safe on its own.
            self._persist(canonical.key, entry)
        return True


class PersistentProofCache(ProofCache):
    """A :class:`ProofCache` backed by an on-disk :class:`ProofStore`.

    Write-through: every memoised entry is also appended to the store, so a
    new coordinator process (or a concurrent one sharing the file) starts
    warm.  Entries evicted from the LRU remain on disk; a later lookup for
    them is a :attr:`disk_hits` hit and re-promotes them.

    The disk tier must never make the prover less reliable than a memory-only
    cache, so every store failure is absorbed: persist errors (ENOSPC, torn
    writes, a retired handle) are counted in :attr:`persist_errors` and the
    entry simply stays memory-only; damaged records read back as misses.

    ``shards > 1`` switches the disk tier to a
    :class:`~repro.core.store.ShardedProofStore`: N store files routed by
    fingerprint digest, each with its own sidecar lock, so concurrent
    processes sharing the path don't serialise on one advisory lock.  The
    server runs this way; the single-file layout (``shards=1``, the default)
    stays bit-compatible with every existing store on disk.
    """

    def __init__(
        self,
        path: str,
        max_entries: int = 4096,
        fsync: bool = True,
        fault_plan: Optional[DiskFaultPlan] = None,
        store: Optional[ProofStore] = None,
        shards: int = 1,
    ):
        super().__init__(max_entries=max_entries)
        if store is not None:
            self.disk = store
        elif shards > 1:
            self.disk = ShardedProofStore(
                path, shards=shards, fsync=fsync, fault_plan=fault_plan
            )
        else:
            self.disk = ProofStore(path, fsync=fsync, fault_plan=fault_plan)
        self.persist_errors = 0

    def _fetch_second_tier(self, key: tuple) -> Optional[_CacheEntry]:
        found = self.disk.get(key)
        if found is None:
            return None
        verdict_value, proof, counterexample, statistics = found
        try:
            verdict = Verdict(verdict_value)
        except ValueError:
            return None
        return _CacheEntry(
            verdict=verdict,
            proof=proof,
            counterexample=counterexample,
            statistics=statistics,
        )

    def _persist(self, key: tuple, entry: _CacheEntry) -> None:
        try:
            self.disk.put(
                key,
                entry.verdict.value,
                entry.proof,
                entry.counterexample,
                entry.statistics,
            )
        except OSError:
            self.persist_errors += 1

    def close(self) -> None:
        """Release the store's file handle and lock."""
        self.disk.close()

    def __enter__(self) -> "PersistentProofCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CachingProver:
    """A drop-in ``prove()`` front that consults a :class:`ProofCache` first.

    Misses are proved on the *original* entailment (so an uncached call is
    bit-identical to a bare :class:`Prover`) and then stored canonically.
    """

    def __init__(
        self,
        prover: Optional[Prover] = None,
        cache: Optional[ProofCache] = None,
        config: Optional[ProverConfig] = None,
    ):
        self.prover = prover if prover is not None else Prover(config)
        self.cache = cache if cache is not None else ProofCache()

    def prove(self, entailment: Entailment) -> ProofResult:
        """Decide ``entailment``, answering from the cache when possible."""
        canonical = self.cache.canonical_form(entailment)
        if canonical is not None:
            cached = self.cache.lookup(entailment, canonical)
            if cached is not None:
                return cached
        result = self.prover.prove(entailment)
        if canonical is not None:
            self.cache.store(entailment, result, canonical)
        return result
