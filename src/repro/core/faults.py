"""Deterministic fault injection for the batch execution stack.

The supervised worker pool (:mod:`repro.core.supervisor`) exists to keep the
batch prover's verdict contract under partial failure: crashed workers, hung
workers, OOM kills, results that cannot cross the process boundary.  None of
those happen on a healthy development machine, so this module manufactures
them *on demand and deterministically* — the chaos counterpart of the
differential fuzzer.

A :class:`FaultPlan` decides, per batch task index, whether a fault fires and
which kind.  Plans are either explicit (``{index: FaultSpec}``) or seeded
(every index is hashed independently against a rate, so the same plan works
for any batch size and the targeted index set is reproducible from
``(seed, rate, kinds)`` alone).  Because the decision is a pure function of
the plan and the index, both sides of the process boundary can evaluate it:
the *worker* applies the fault, and the *coordinator* — which never hears
from a killed worker — can still mark the resulting failure as injected.

Plans cross the process boundary two ways: passed directly to
:class:`~repro.core.batch.BatchProver` (which forwards them through the
worker initializer), or via the ``SLP_FAULT_PLAN`` environment variable
(JSON), which worker processes inherit.  The env route is what lets an
external harness — the chaos CI job, a ``slp fuzz`` campaign — inject faults
into a stack it does not construct.

Fault kinds
-----------

``exit``
    The worker process dies (``os._exit``) before proving — a stand-in for a
    segfault in a native kernel, an OOM kill, a stray SIGTERM.
``hang``
    The worker stops responding (sleeps) — only the coordinator's hard
    watchdog can reclaim it.
``slow``
    The task takes ``seconds`` longer than it should, but completes; the
    supervisor must *not* kill it (tests the watchdog's false-positive edge).
``alloc``
    The worker allocates ``alloc_bytes`` before proving — a memory spike;
    with ``ProverConfig.max_memory_mb`` set this trips ``RLIMIT_AS``.
``error``
    The task raises an unexpected exception inside the worker.
``unpicklable``
    The worker proves the task but its reply cannot be pickled back.  In the
    in-process (``jobs=1``) engine no pickling happens; the fault degrades to
    a crash there, preserving "the result could not be delivered".

Disk-fault kinds
----------------

The persistence layer (:mod:`repro.core.store`) has its own failure domain —
the filesystem — and its own deterministic chaos plan.  A
:class:`DiskFaultPlan` decides per *write operation* (the store numbers its
appends) whether a disk fault fires:

``torn``
    The append writes only a prefix of the framed record and then the store
    behaves as if the process died mid-write (raises
    :class:`InjectedDiskFault` without repairing the tail).  The next
    ``open()`` of the file must recover by truncating to the last valid
    record.
``bitflip``
    One deterministic bit of the framed record is flipped before it is
    written — silent media corruption.  The CRC must catch it on the next
    read or open (quarantine/truncate, never a wrong answer).
``enospc``
    The append fails up front with ``OSError(ENOSPC)`` — a full disk.  The
    write never starts, so the file stays consistent; the caller must degrade
    (memory-only caching) instead of crashing.

Like task faults, disk plans cross process boundaries via an environment
variable (``SLP_DISK_FAULT_PLAN``), so a chaos harness can disturb the store
of a CLI run it does not construct.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "DISK_FAULT_KINDS",
    "DISK_FAULT_PLAN_ENV",
    "DiskFaultPlan",
    "DiskFaultSpec",
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedDiskFault",
    "apply_fault_before_task",
    "make_unpicklable",
]

#: Environment variable a JSON-encoded plan is read from (worker processes
#: inherit the coordinator's environment, so exporting it injects faults into
#: every batch in the process tree without touching any call site).
FAULT_PLAN_ENV = "SLP_FAULT_PLAN"

#: Environment variable carrying a JSON-encoded :class:`DiskFaultPlan` for
#: the persistence layer (same rationale as :data:`FAULT_PLAN_ENV`).
DISK_FAULT_PLAN_ENV = "SLP_DISK_FAULT_PLAN"

FAULT_KINDS = ("exit", "hang", "slow", "alloc", "error", "unpicklable")

DISK_FAULT_KINDS = ("torn", "bitflip", "enospc")

#: Exit code used by injected worker deaths (visible in supervisor details).
INJECTED_EXIT_CODE = 73


class InjectedCrash(RuntimeError):
    """Raised by ``error`` faults (and crash-degraded faults in-process)."""


class InjectedDiskFault(OSError):
    """Raised by injected ``torn``/``enospc`` disk faults.

    An :class:`OSError` subclass on purpose: the persistence layer's callers
    must survive *real* filesystem failures, so the injected ones travel the
    exact same ``except OSError`` paths — chaos tests exercise production
    handling, not a parallel test-only route.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject when its task index comes up.

    ``times`` bounds how many *attempts* of the task the fault fires on:
    ``None`` means every attempt (a persistent fault — retries cannot save
    the task), ``1`` means only the first (a transient fault — the retry
    succeeds and the verdict must come out unharmed).
    """

    kind: str
    times: Optional[int] = None
    seconds: float = 30.0
    alloc_bytes: int = 1 << 62

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                "unknown fault kind {!r}; known: {}".format(self.kind, ", ".join(FAULT_KINDS))
            )

    def fires_on(self, attempt: int) -> bool:
        """Does this fault fire on the given 1-based attempt?"""
        return self.times is None or attempt <= self.times

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "times": self.times,
            "seconds": self.seconds,
            "alloc_bytes": self.alloc_bytes,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "FaultSpec":
        return cls(
            kind=str(payload["kind"]),
            times=None if payload.get("times") is None else int(payload["times"]),  # type: ignore[arg-type]
            seconds=float(payload.get("seconds", 30.0)),  # type: ignore[arg-type]
            alloc_bytes=int(payload.get("alloc_bytes", 1 << 62)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FaultPlan:
    """Which tasks of a batch are disturbed, and how.

    Two composable sources: ``faults`` pins explicit ``index -> FaultSpec``
    entries (tests), and the seeded triple ``(seed, rate, kinds)`` targets
    each index with probability ``rate`` by hashing ``(seed, index)`` — no
    shared RNG stream, so the decision for index *i* is independent of the
    batch size and of every other index, and any process holding the plan
    reaches the same answer.
    """

    faults: Mapping[int, FaultSpec] = field(default_factory=dict)
    seed: Optional[int] = None
    rate: float = 0.0
    kinds: Tuple[str, ...] = ()
    times: Optional[int] = None
    seconds: float = 30.0
    alloc_bytes: int = 1 << 62

    def __post_init__(self) -> None:
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError("unknown fault kind {!r}".format(kind))
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must be in [0, 1], got {}".format(self.rate))

    @classmethod
    def seeded(
        cls,
        seed: int,
        rate: float,
        kinds: Tuple[str, ...] = ("exit",),
        times: Optional[int] = None,
        seconds: float = 30.0,
        alloc_bytes: int = 1 << 62,
    ) -> "FaultPlan":
        """A purely seeded plan hitting ~``rate`` of all task indices."""
        return cls(
            seed=seed, rate=rate, kinds=tuple(kinds), times=times,
            seconds=seconds, alloc_bytes=alloc_bytes,
        )

    # -- the decision function ---------------------------------------------
    def fault_at(self, index: int) -> Optional[FaultSpec]:
        """The fault targeting task ``index``, or ``None`` (pure function)."""
        explicit = self.faults.get(index)
        if explicit is not None:
            return explicit
        if self.seed is None or not self.kinds or self.rate <= 0.0:
            return None
        rng = random.Random("slp-fault:{}:{}".format(self.seed, index))
        if rng.random() >= self.rate:
            return None
        return FaultSpec(
            kind=rng.choice(self.kinds),
            times=self.times,
            seconds=self.seconds,
            alloc_bytes=self.alloc_bytes,
        )

    def should_fire(self, index: int, attempt: int) -> Optional[FaultSpec]:
        """The fault to apply on this (1-based) attempt of task ``index``."""
        spec = self.fault_at(index)
        if spec is not None and spec.fires_on(attempt):
            return spec
        return None

    def injected_indices(self, count: int) -> List[int]:
        """Every targeted index in ``range(count)`` (for marking and tests)."""
        return [index for index in range(count) if self.fault_at(index) is not None]

    # -- crossing the process boundary -------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "faults": {str(index): spec.to_json() for index, spec in self.faults.items()},
            "seed": self.seed,
            "rate": self.rate,
            "kinds": list(self.kinds),
            "times": self.times,
            "seconds": self.seconds,
            "alloc_bytes": self.alloc_bytes,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "FaultPlan":
        return cls(
            faults={
                int(index): FaultSpec.from_json(spec)
                for index, spec in dict(payload.get("faults", {})).items()  # type: ignore[arg-type]
            },
            seed=None if payload.get("seed") is None else int(payload["seed"]),  # type: ignore[arg-type]
            rate=float(payload.get("rate", 0.0)),  # type: ignore[arg-type]
            kinds=tuple(payload.get("kinds", ())),  # type: ignore[arg-type]
            times=None if payload.get("times") is None else int(payload["times"]),  # type: ignore[arg-type]
            seconds=float(payload.get("seconds", 30.0)),  # type: ignore[arg-type]
            alloc_bytes=int(payload.get("alloc_bytes", 1 << 62)),  # type: ignore[arg-type]
        )

    def to_env(self) -> str:
        """The ``SLP_FAULT_PLAN`` value equivalent to this plan."""
        return json.dumps(self.to_json(), sort_keys=True)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> Optional["FaultPlan"]:
        """The plan exported in the environment, or ``None``.

        A malformed value raises: silently proving an undisturbed batch when
        the operator asked for chaos would defeat the harness.
        """
        raw = (environ if environ is not None else os.environ).get(FAULT_PLAN_ENV)
        if not raw:
            return None
        return cls.from_json(json.loads(raw))

    def with_fault(self, index: int, spec: FaultSpec) -> "FaultPlan":
        """A copy with one more explicit fault pinned."""
        faults = dict(self.faults)
        faults[index] = spec
        return replace(self, faults=faults)


# ---------------------------------------------------------------------------
# Applying a fault.  Worker-side for the pool; the in-process engine calls the
# same function with ``in_process=True`` (where process death and pickling
# have no analogue and degrade to a crash exception the retry loop handles).
# ---------------------------------------------------------------------------


def apply_fault_before_task(spec: FaultSpec, in_process: bool = False) -> None:
    """Apply the pre-proving effect of ``spec``.  May not return (``exit``).

    ``hang`` and ``slow`` sleep here and then let the task proceed — a hang
    is only fatal because the coordinator's watchdog reclaims the worker
    first; should no watchdog be armed, the task eventually completes, which
    is exactly what a stalled-then-recovered worker looks like.
    ``unpicklable`` has no pre-task effect in a worker (it poisons the
    reply); in-process it degrades to a crash.
    """
    if spec.kind == "exit":
        if in_process:
            raise InjectedCrash("injected worker exit")
        os._exit(INJECTED_EXIT_CODE)
    if spec.kind == "error":
        raise InjectedCrash("injected task error")
    if spec.kind in ("hang", "slow"):
        time.sleep(spec.seconds)
        return
    if spec.kind == "alloc":
        # Touching nothing: the allocation itself is the fault.  With
        # RLIMIT_AS armed (ProverConfig.max_memory_mb) or an absurd size this
        # raises MemoryError, which the worker reports as a structured OOM.
        _hold = bytearray(spec.alloc_bytes)  # noqa: F841 - allocation is the point
        del _hold
        return
    if spec.kind == "unpicklable" and in_process:
        raise InjectedCrash("injected undeliverable result")


class _Unpicklable:
    """A reply wrapper whose pickling always fails (the ``unpicklable`` fault)."""

    def __init__(self, value: object):
        self.value = value

    def __reduce__(self):
        raise TypeError("injected unpicklable result")


def make_unpicklable(value: object) -> object:
    """Wrap a worker reply so that sending it across the pipe fails."""
    return _Unpicklable(value)


# ---------------------------------------------------------------------------
# Disk faults.  The plan shape mirrors FaultPlan, but the decision is indexed
# by the store's append-operation counter, not a batch task index, and the
# faults are applied *by the store itself* (repro.core.store) because only it
# knows the bytes in flight.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DiskFaultSpec:
    """One disk fault to inject when its write-operation index comes up.

    ``fraction`` parameterises ``torn`` faults: the share of the framed
    record that reaches the disk before the "crash" (clamped to at least one
    byte and at most all-but-one, so a tear is always a genuine tear).
    """

    kind: str
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in DISK_FAULT_KINDS:
            raise ValueError(
                "unknown disk fault kind {!r}; known: {}".format(
                    self.kind, ", ".join(DISK_FAULT_KINDS)
                )
            )
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1], got {}".format(self.fraction))

    def to_json(self) -> Dict[str, object]:
        return {"kind": self.kind, "fraction": self.fraction}

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "DiskFaultSpec":
        return cls(
            kind=str(payload["kind"]),
            fraction=float(payload.get("fraction", 0.5)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class DiskFaultPlan:
    """Which write operations of a store are disturbed, and how.

    The decision is a pure function of ``(seed, operation_index)`` — exactly
    like :class:`FaultPlan` — so a chaos test can predict which appends were
    disturbed without instrumenting the store, and two stores opened on the
    same plan agree.  ``faults`` pins explicit ``operation_index ->
    DiskFaultSpec`` entries for unit tests.
    """

    faults: Mapping[int, DiskFaultSpec] = field(default_factory=dict)
    seed: Optional[int] = None
    rate: float = 0.0
    kinds: Tuple[str, ...] = ()
    fraction: float = 0.5

    def __post_init__(self) -> None:
        for kind in self.kinds:
            if kind not in DISK_FAULT_KINDS:
                raise ValueError("unknown disk fault kind {!r}".format(kind))
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("disk fault rate must be in [0, 1], got {}".format(self.rate))

    @classmethod
    def seeded(
        cls,
        seed: int,
        rate: float,
        kinds: Tuple[str, ...] = DISK_FAULT_KINDS,
        fraction: float = 0.5,
    ) -> "DiskFaultPlan":
        """A purely seeded plan hitting ~``rate`` of all write operations."""
        return cls(seed=seed, rate=rate, kinds=tuple(kinds), fraction=fraction)

    def fault_at(self, operation: int) -> Optional[DiskFaultSpec]:
        """The fault targeting write operation ``operation``, or ``None``."""
        explicit = self.faults.get(operation)
        if explicit is not None:
            return explicit
        if self.seed is None or not self.kinds or self.rate <= 0.0:
            return None
        rng = random.Random("slp-disk-fault:{}:{}".format(self.seed, operation))
        if rng.random() >= self.rate:
            return None
        return DiskFaultSpec(kind=rng.choice(self.kinds), fraction=self.fraction)

    def corruption_rng(self, operation: int) -> random.Random:
        """The deterministic RNG a ``bitflip``/``torn`` fault draws from."""
        return random.Random("slp-disk-bytes:{}:{}".format(self.seed, operation))

    def to_json(self) -> Dict[str, object]:
        return {
            "faults": {str(index): spec.to_json() for index, spec in self.faults.items()},
            "seed": self.seed,
            "rate": self.rate,
            "kinds": list(self.kinds),
            "fraction": self.fraction,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "DiskFaultPlan":
        return cls(
            faults={
                int(index): DiskFaultSpec.from_json(spec)
                for index, spec in dict(payload.get("faults", {})).items()  # type: ignore[arg-type]
            },
            seed=None if payload.get("seed") is None else int(payload["seed"]),  # type: ignore[arg-type]
            rate=float(payload.get("rate", 0.0)),  # type: ignore[arg-type]
            kinds=tuple(payload.get("kinds", ())),  # type: ignore[arg-type]
            fraction=float(payload.get("fraction", 0.5)),  # type: ignore[arg-type]
        )

    def to_env(self) -> str:
        """The ``SLP_DISK_FAULT_PLAN`` value equivalent to this plan."""
        return json.dumps(self.to_json(), sort_keys=True)

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["DiskFaultPlan"]:
        """The plan exported in the environment, or ``None`` (loud when malformed)."""
        raw = (environ if environ is not None else os.environ).get(DISK_FAULT_PLAN_ENV)
        if not raw:
            return None
        return cls.from_json(json.loads(raw))
