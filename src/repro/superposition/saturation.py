"""Incremental saturation of pure clauses (the ``Cns_I`` operator).

The Figure 3 algorithm repeatedly saturates a *growing* set of pure clauses:
each iteration of its loops adds the pure consequences of the spatial rules
and asks for the saturation again.  The :class:`SaturationEngine` therefore
keeps its state between calls — clauses added later are simply queued and the
given-clause loop resumes.

Besides the saturated set, the engine records, for every derived clause, the
inference that produced it (rule name and premises).  This record is what lets
the prover reconstruct a full SI proof tree (Figure 4 of the paper) once the
empty clause has been derived.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.logic.clauses import Clause
from repro.logic.ordering import TermOrder
from repro.superposition.calculus import Inference, SuperpositionCalculus
from repro.superposition.index import ClauseIndex

#: Active-clause count below which maintaining index buckets costs more than
#: the linear scans they replace.  The engine (both the symbolic and the
#: dense-kernel path) starts with plain scans and bulk-activates the index
#: the first time the active set reaches this size; on the Table 1 n=12 row
#: the crossover is what turns the index from a small loss into a win (see
#: PERFORMANCE.md, "Adaptive index activation").
ADAPTIVE_INDEX_THRESHOLD = 24


class SaturationLimitError(RuntimeError):
    """Raised when saturation exceeds the configured clause budget."""


class DeadlineExceeded(RuntimeError):
    """Raised from inside the given-clause loop when the wall clock runs out.

    The prover arms the engine with :meth:`SaturationEngine.set_deadline`;
    the loop checks the clock before every given clause, so a cooperative
    timeout overruns by at most one inference step — not a whole
    ``saturation_chunk`` round, which on a pathological instance is an
    unbounded amount of work.  The prover converts this into a
    :class:`~repro.core.prover.ProverTimeout` carrying partial statistics.
    """


@dataclass
class SaturationResult:
    """Outcome of (re-)saturating the current clause set.

    Attributes
    ----------
    clauses:
        The saturated set of pure clauses (without redundant clauses).  The
        kernel engine materialises this tuple lazily — the prover's inner
        loop asks for a result every chunk and reads only ``refuted`` and
        ``complete``, so decoding the whole active set per round was pure
        overhead.
    refuted:
        True when the empty clause was derived, i.e. the set is unsatisfiable.
    derivations:
        For each derived clause, the inference that produced it.  Input
        clauses are absent from this mapping.  This is a *live read-only view*
        of the engine's record (copying it every round was a measurable cost);
        callers that need a frozen snapshot should ``dict(...)`` it.
    """

    clauses: Tuple[Clause, ...]
    refuted: bool
    derivations: Mapping[Clause, Inference] = field(default_factory=dict)
    complete: bool = True

    @staticmethod
    def lazy(
        clauses_factory,
        refuted: bool,
        derivations: Mapping[Clause, Inference],
        complete: bool,
    ) -> "SaturationResult":
        """A result whose ``clauses`` tuple is built on first access.

        The factory must close over an immutable snapshot of the clause set
        at call time (the kernel engine copies its active list), so the lazy
        result observes exactly what an eager one would have.
        """
        result = _LazyClausesResult((), refuted, derivations, complete)
        result.__dict__["_clauses_factory"] = clauses_factory
        return result

    def __contains__(self, clause: Clause) -> bool:
        return clause in self.clauses

    def __len__(self) -> int:
        return len(self.clauses)


class _LazyClausesResult(SaturationResult):
    """A :class:`SaturationResult` that materialises ``clauses`` on demand.

    The interception lives on this subclass only, so plain results — the
    symbolic engine's — keep C-level attribute lookups.
    """

    def __getattribute__(self, name):
        if name == "clauses":
            state = object.__getattribute__(self, "__dict__")
            factory = state.get("_clauses_factory")
            if factory is not None:
                state["_clauses_factory"] = None
                state["clauses"] = factory()
        return object.__getattribute__(self, name)


class SaturationEngine:
    """A given-clause saturation loop with subsumption and tautology deletion.

    Parameters
    ----------
    order:
        The term ordering used to constrain inferences.
    max_clauses:
        A safety budget; the fragment guarantees termination (there are only
        finitely many pure clauses over the problem's constants) but the bound
        protects against pathological blow-ups in benchmarks.
    use_index:
        Maintain a :class:`~repro.superposition.index.ClauseIndex` over the
        active set so subsumption and inference-partner selection are index
        lookups instead of linear scans.  The unindexed path is kept as the
        reference implementation (the two derive identical clauses in an
        identical order); disabling it is only useful for the equivalence
        tests and the ablation benchmarks.  Index maintenance is *adaptive*:
        buckets are only built once the active set reaches
        ``index_threshold`` clauses (below that, linear scans win).
    use_kernel:
        Run the given-clause loop on the dense integer representation
        (:mod:`repro.superposition.kernel`): constants interned to small ints
        in term order, literals packed into ints, ordering checks compiled to
        integer compares.  The kernel derives byte-identical clauses in an
        identical order to the symbolic path; inputs and outputs stay
        symbolic :class:`Clause` objects (encode/decode happens at this
        class's boundary).
    use_unit_rewrite:
        Absorb unit positive equalities into a union-find over dense
        constant ids and forward-simplify (demodulate) every clause before it
        is processed.  This is a genuine simplification — it *changes* the
        derivation sequence and the generated-clause count — so it is pinned
        for verdict equivalence only, and requires the kernel.
    index_threshold:
        Override the adaptive activation point (``None`` uses
        :data:`ADAPTIVE_INDEX_THRESHOLD`; ``0`` builds the index from the
        first clause, the pre-adaptive behaviour).
    use_bitset:
        Run subsumption on exact per-clause literal bitsets (big-int masks
        over a per-engine atom-slot table, with a numpy bulk path for large
        index buckets).  Containment answers are exact, so derivations stay
        byte-identical; requires the kernel.
    """

    def __init__(
        self,
        order: TermOrder,
        max_clauses: int = 200000,
        use_index: bool = True,
        use_kernel: bool = True,
        use_unit_rewrite: bool = False,
        index_threshold: Optional[int] = None,
        use_bitset: bool = False,
    ):
        self.order = order
        self.calculus = SuperpositionCalculus(order)
        self.max_clauses = max_clauses
        threshold = ADAPTIVE_INDEX_THRESHOLD if index_threshold is None else index_threshold
        if use_unit_rewrite and not use_kernel:
            raise ValueError("unit-rewrite simplification requires the integer kernel")
        if use_bitset and not use_kernel:
            raise ValueError("bitset subsumption requires the integer kernel")
        if use_kernel:
            from repro.superposition.kernel import IntSaturationCore

            self._core: Optional[IntSaturationCore] = IntSaturationCore(
                order, max_clauses, use_index, use_unit_rewrite, threshold, use_bitset
            )
            return
        self._core = None
        self._deadline: Optional[float] = None
        self._index: Optional[ClauseIndex] = ClauseIndex(order) if use_index else None
        self._index_live = False
        self._index_threshold = threshold
        self._active: List[Clause] = []
        self._active_set: Set[Clause] = set()
        # Passive clauses are processed smallest-first (by literal count), which
        # finds refutations early and keeps the generated-clause count low.
        self._passive: List[Tuple[int, int, Clause]] = []
        self._passive_set: Set[Clause] = set()
        self._tick = itertools.count()
        self._seen: Set[Clause] = set()
        self._derivations: Dict[Clause, Inference] = {}
        self._refuted = False
        self._generated_count = 0

    # -- public API ----------------------------------------------------------
    @property
    def refuted(self) -> bool:
        """True once the empty clause has been derived."""
        if self._core is not None:
            return self._core.refuted
        return self._refuted

    @property
    def derivations(self) -> Mapping[Clause, Inference]:
        """A read-only view of the recorded derivation of every generated clause."""
        if self._core is not None:
            return self._core.derivations
        return MappingProxyType(self._derivations)

    @property
    def generated_count(self) -> int:
        """Total number of clauses generated so far (a work measure for benchmarks)."""
        if self._core is not None:
            return self._core.generated_count
        return self._generated_count

    def set_deadline(self, deadline: Optional[float]) -> None:
        """Arm (or clear) the in-loop wall-clock deadline.

        ``deadline`` is an absolute ``time.perf_counter()`` instant.  Once
        armed, :meth:`saturate` raises :class:`DeadlineExceeded` before
        processing any given clause past the instant.
        """
        if self._core is not None:
            self._core.deadline = deadline
        else:
            self._deadline = deadline

    def add_clauses(self, clauses: Iterable[Clause]) -> None:
        """Queue new input pure clauses for the next saturation round."""
        if self._core is not None:
            self._core.add_clauses(clauses)
            return
        for clause in clauses:
            if not clause.is_pure:
                raise ValueError("the saturation engine only accepts pure clauses")
            self._enqueue(clause, inference=None)

    def saturate(self, max_given: Optional[int] = None) -> SaturationResult:
        """Run the given-clause loop, optionally bounding the work of this call.

        The engine is incremental: calling :meth:`add_clauses` followed by
        :meth:`saturate` again resumes from the previous state.  With
        ``max_given`` set, at most that many given clauses are processed; the
        returned result's ``complete`` flag tells whether the passive queue
        was exhausted (i.e. the clause set is fully saturated).  Callers that
        only need a *verified* candidate model — like the prover's inner loop
        — use the bounded form and simply resume when model generation reports
        a problem.
        """
        if self._core is not None:
            return self._core.saturate(max_given)
        processed = 0
        deadline = self._deadline
        while self._passive and not self._refuted:
            if max_given is not None and processed >= max_given:
                break
            if deadline is not None and time.perf_counter() > deadline:
                raise DeadlineExceeded("saturation ran past its wall-clock deadline")
            given = self._pop_passive()
            if given is None:
                break
            processed += 1
            given = self.calculus.simplify(given)
            if given.is_empty:
                self._register_active(given)
                self._refuted = True
                break
            if self.calculus.is_tautology(given):
                continue
            if self._is_subsumed_by_active(given):
                continue
            self._remove_subsumed_active(given)
            self._register_active(given)

            new_inferences: List[Inference] = []
            new_inferences.extend(self.calculus.infer_within(given))
            if self._index is not None and self._index_live:
                # Index lookup: only the actives sharing a rewritable position
                # with ``given``, in the same order the full scan would visit
                # them.  ``infer_between`` returns [] for every skipped pair.
                partners: Iterable[Clause] = self._index.inference_partners(given)
            else:
                partners = [other for other in list(self._active) if other is not given]
            for other in partners:
                new_inferences.extend(self.calculus.infer_between(given, other))
                new_inferences.extend(self.calculus.infer_between(other, given))
            # Self-superposition (the clause used as both premises).
            new_inferences.extend(self.calculus.infer_between(given, given))

            for inference in new_inferences:
                self._enqueue(inference.conclusion, inference)
                if self._refuted:
                    break

        return SaturationResult(
            clauses=tuple(self._active),
            refuted=self._refuted,
            derivations=MappingProxyType(self._derivations),
            complete=not self._passive or self._refuted,
        )

    def known_pure_clauses(self) -> Tuple[Clause, ...]:
        """Every non-redundant clause currently known (active and still-passive).

        Model generation verifies its candidate against this whole set, so that
        a model produced from a *partially* saturated set still satisfies every
        clause the prover has derived so far.
        """
        if self._core is not None:
            return self._core.known_pure_clauses()
        passive = [clause for _, _, clause in self._passive if clause in self._passive_set]
        return tuple(self._active) + tuple(passive)

    def drain_known_changes(self) -> Optional[Tuple[List[Clause], List[Clause]]]:
        """Net known-set changes since the last drain, or ``None`` (unsupported).

        Only the kernel path maintains the change feed; the symbolic path
        returns ``None`` and consumers fall back to diffing
        :meth:`known_pure_clauses` (see
        ``IncrementalModelGenerator.model_for_engine``).
        """
        if self._core is not None:
            return self._core.drain_known_changes()
        return None

    def dense_core(self):
        """The kernel core, or ``None`` on the symbolic path.

        The dense model generator pairs with the core directly (raw
        :class:`~repro.superposition.kernel.IntClause` feed, no decoding);
        everything else should go through this facade.
        """
        return self._core

    def clauses(self) -> Tuple[Clause, ...]:
        """The currently active (saturated so far) clauses."""
        if self._core is not None:
            return self._core.clauses()
        return tuple(self._active)

    def is_known(self, clause: Clause) -> bool:
        """Would adding ``clause`` leave the saturated set unchanged?

        Used by the prover's fixpoint tests (lines 10 and 14 of the Figure 3
        algorithm): a clause brings no new information when it is a tautology,
        has already been generated, or is subsumed by an active clause.
        """
        if self._core is not None:
            return self._core.is_known(clause)
        simplified = self.calculus.simplify(clause)
        if self.calculus.is_tautology(simplified):
            return True
        if simplified in self._seen:
            return True
        return self._is_subsumed_by_active(simplified)

    # -- internals -----------------------------------------------------------
    def _enqueue(self, clause: Clause, inference: Optional[Inference]) -> None:
        clause = self.calculus.simplify(clause)
        if clause in self._seen:
            return
        self._seen.add(clause)
        self._generated_count += 1
        if self._generated_count > self.max_clauses:
            raise SaturationLimitError(
                "saturation exceeded the budget of {} clauses".format(self.max_clauses)
            )
        if inference is not None:
            self._derivations[clause] = inference
        if clause.is_empty:
            self._register_active(clause)
            self._refuted = True
            return
        weight = len(clause.gamma) + len(clause.delta)
        heapq.heappush(self._passive, (weight, next(self._tick), clause))
        self._passive_set.add(clause)

    def _pop_passive(self) -> Optional[Clause]:
        while self._passive:
            _, _, clause = heapq.heappop(self._passive)
            if clause in self._passive_set:
                self._passive_set.discard(clause)
                return clause
        return None

    def _register_active(self, clause: Clause) -> None:
        if clause not in self._active_set:
            self._active.append(clause)
            self._active_set.add(clause)
            if self._index is not None and not clause.is_empty:
                if self._index_live:
                    self._index.add(clause)
                elif len(self._active) >= self._index_threshold:
                    # Adaptive activation: the first time the active set is
                    # large enough for bucket lookups to beat linear scans,
                    # index everything accumulated so far and stay indexed.
                    for active in self._active:
                        if not active.is_empty:
                            self._index.add(active)
                    self._index_live = True

    def _is_subsumed_by_active(self, clause: Clause) -> bool:
        if self._index is not None and self._index_live:
            return self._index.is_subsumed(clause)
        return any(active.subsumes(clause) for active in self._active)

    def _remove_subsumed_active(self, clause: Clause) -> None:
        if self._index is not None and self._index_live:
            victims = self._index.subsumed_by(clause)
            if victims:
                for victim in victims:
                    self._index.remove(victim)
                self._active = [active for active in self._active if active not in victims]
                self._active_set.difference_update(victims)
            return
        survivors = [active for active in self._active if not clause.subsumes(active)]
        if len(survivors) != len(self._active):
            self._active = survivors
            self._active_set = set(survivors)
