"""Convergent rewrite relations over constant symbols.

The model produced by the superposition calculus for a satisfiable set of
pure clauses is a *convergent* binary relation ``R`` on constants: every
constant has a unique normal form, and two constants are equal in the model
exactly when their normal forms coincide (Section 3 of the paper).

In the ground, function-free fragment a convergent relation is particularly
simple: it is a partial function from constants to constants (at most one
outgoing edge per constant) whose edges always point from a larger constant to
a smaller one in the term ordering, which guarantees termination; being a
function makes it trivially confluent.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.logic.atoms import EqAtom
from repro.logic.clauses import Clause
from repro.logic.terms import Const


class RewriteCycleError(RuntimeError):
    """Raised when normalisation runs into a cycle (the relation is not terminating)."""


class RewriteRelation:
    """A convergent rewrite relation ``{x => y, ...}`` over constants.

    The relation is stored as a dictionary mapping each reducible constant to
    its (unique) successor.  All operations are non-destructive except
    :meth:`add_edge`, which is used only while the relation is being generated.
    """

    def __init__(self, edges: Optional[Dict[Const, Const]] = None):
        self._edges: Dict[Const, Const] = dict(edges or {})
        # Memoised normal forms with path compression.  Satisfaction checks
        # chase the same rewrite chains over and over (model generation
        # evaluates every known clause against the relation); the cache turns
        # each chase into a single dictionary hit.  It is dropped whenever an
        # edge is added, so it only ever describes the current relation.
        self._nf_cache: Dict[Const, Const] = {}

    # -- construction -------------------------------------------------------
    def add_edge(self, source: Const, target: Const) -> None:
        """Add the edge ``source => target``.

        The source must be irreducible so far: a convergent relation never has
        two edges with the same left-hand side.
        """
        if source in self._edges:
            raise ValueError("constant {} already has an outgoing edge".format(source))
        if source == target:
            raise ValueError("a rewrite edge must relate two distinct constants")
        self._edges[source] = target
        self._nf_cache.clear()

    def copy(self) -> "RewriteRelation":
        """An independent copy of the relation."""
        return RewriteRelation(dict(self._edges))

    @classmethod
    def preloaded(
        cls, edges: Dict[Const, Const], normal_forms: Dict[Const, Const]
    ) -> "RewriteRelation":
        """A relation whose normal-form cache starts populated.

        The dense model generator computes every known constant's normal form
        as a by-product of its own (integer-side) construction; materialising
        the boundary relation with those values already cached means the
        downstream satisfaction and normalisation queries never re-chase a
        rewrite chain the construction has already walked.  The caller
        vouches that ``normal_forms`` maps constants to their exact normal
        forms under ``edges`` — a wrong value here silently corrupts
        satisfaction answers, so only construction-derived snapshots qualify.
        """
        relation = cls(edges)
        relation._nf_cache.update(normal_forms)
        return relation

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._edges)

    def __bool__(self) -> bool:
        return bool(self._edges)

    def __contains__(self, constant: Const) -> bool:
        return constant in self._edges

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RewriteRelation):
            return NotImplemented
        return self._edges == other._edges

    def __hash__(self) -> int:
        return hash(frozenset(self._edges.items()))

    def __iter__(self) -> Iterator[Tuple[Const, Const]]:
        return iter(sorted(self._edges.items(), key=lambda edge: (edge[0].name, edge[1].name)))

    def __repr__(self) -> str:
        from repro.logic.printer import format_rewrite_relation

        return "RewriteRelation({})".format(format_rewrite_relation(self._edges))

    # -- queries -----------------------------------------------------------
    @property
    def edges(self) -> Dict[Const, Const]:
        """The edges as a dictionary (a copy; mutating it does not affect the relation)."""
        return dict(self._edges)

    def domain(self) -> FrozenSet[Const]:
        """The set of reducible constants."""
        return frozenset(self._edges)

    def edge_set(self) -> FrozenSet[Tuple[Const, Const]]:
        """The edges as a frozen set of ``(source, target)`` pairs."""
        return frozenset(self._edges.items())

    def is_irreducible(self, constant: Const) -> bool:
        """True when the constant has no outgoing edge."""
        return constant not in self._edges

    def successor(self, constant: Const) -> Optional[Const]:
        """The unique successor of ``constant``, or ``None`` if irreducible."""
        return self._edges.get(constant)

    def normal_form(self, constant: Const) -> Const:
        """The unique normal form of ``constant`` (follow edges until irreducible)."""
        cache = self._nf_cache
        cached = cache.get(constant)
        if cached is not None:
            return cached
        edges = self._edges
        path = []
        current = constant
        while True:
            successor = edges.get(current)
            if successor is None:
                break
            cached = cache.get(successor)
            if cached is not None:
                current = cached
                break
            path.append(current)
            if len(path) > len(edges):
                raise RewriteCycleError(
                    "cycle detected while normalising {}: relation is not terminating".format(
                        constant
                    )
                )
            current = successor
        for node in path:
            cache[node] = current
        cache[constant] = current
        return current

    def rewrite_path(self, constant: Const) -> List[Const]:
        """The full rewrite sequence ``constant => ... => normal form``."""
        path = [constant]
        seen = {constant}
        current = constant
        while current in self._edges:
            current = self._edges[current]
            if current in seen:
                raise RewriteCycleError(
                    "cycle detected while normalising {}".format(constant)
                )
            seen.add(current)
            path.append(current)
        return path

    def equivalent(self, left: Const, right: Const) -> bool:
        """True when the two constants have the same normal form."""
        # Constants are truthy, so ``or`` falls through to the full chase
        # exactly on a cache miss.
        cached = self._nf_cache.get
        return (cached(left) or self.normal_form(left)) == (
            cached(right) or self.normal_form(right)
        )

    def normal_form_snapshot(self, constants: Iterable[Const]) -> Dict[Const, Const]:
        """The normal form of every given constant, as one dictionary.

        Unlike :meth:`substitution` this includes the irreducible constants
        too — the result is a total snapshot of how the relation interprets
        the given vocabulary.  The incremental model generator diffs two such
        snapshots to find which constants (and hence which clauses) a change
        of the edge set actually affected.
        """
        normal_form = self.normal_form
        return {constant: normal_form(constant) for constant in constants}

    def substitution(self, constants: Iterable[Const]) -> Dict[Const, Const]:
        """The substitution mapping each given constant to its normal form.

        Only constants that are actually reducible appear in the mapping.
        """
        result: Dict[Const, Const] = {}
        for constant in constants:
            normal = self.normal_form(constant)
            if normal != constant:
                result[constant] = normal
        return result

    def equivalence_classes(self, constants: Iterable[Const]) -> Dict[Const, FrozenSet[Const]]:
        """Group the given constants by normal form."""
        groups: Dict[Const, set] = {}
        for constant in constants:
            groups.setdefault(self.normal_form(constant), set()).add(constant)
        return {normal: frozenset(members) for normal, members in groups.items()}

    # -- satisfaction (the |~ relation of the paper) -------------------------
    def satisfies_atom(self, atom: EqAtom) -> bool:
        """``R |~ x = y`` iff the normal forms of ``x`` and ``y`` coincide."""
        return self.equivalent(atom.left, atom.right)

    def satisfies_literal(self, atom: EqAtom, positive: bool) -> bool:
        """Satisfaction of a literal under the relation."""
        holds = self.satisfies_atom(atom)
        return holds if positive else not holds

    def satisfies_pure_clause(self, clause: Clause) -> bool:
        """``R |~ Gamma -> Delta``: some antecedent fails or some consequent holds."""
        if not clause.is_pure:
            raise ValueError("satisfies_pure_clause expects a pure clause")
        normal_form = self.normal_form
        cached = self._nf_cache.get
        for atom in clause.gamma:
            left, right = atom.left, atom.right
            if (cached(left) or normal_form(left)) != (cached(right) or normal_form(right)):
                return True
        for atom in clause.delta:
            left, right = atom.left, atom.right
            if (cached(left) or normal_form(left)) == (cached(right) or normal_form(right)):
                return True
        return False

    def satisfies_pure_part(self, clause: Clause) -> bool:
        """Satisfaction of the pure part ``Gamma -> Delta`` of any clause."""
        return self.satisfies_pure_clause(clause.pure_part())

    def satisfies_all(self, clauses: Iterable[Clause]) -> bool:
        """True when every pure clause in the collection is satisfied."""
        return all(self.satisfies_pure_clause(clause) for clause in clauses if clause.is_pure)

    def forces(self, clause: Clause) -> bool:
        """The forcing relation ``R, C ||- Sigma`` of Definition 4.3.

        A spatial clause forces its spatial atom when the relation does *not*
        satisfy the pure part of the clause, i.e. the spatial atom must take
        the indicated truth value for the clause to hold in the induced model.
        """
        if clause.is_pure:
            raise ValueError("forcing is only defined for spatial clauses")
        return not self.satisfies_pure_part(clause)
