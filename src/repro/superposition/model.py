"""Candidate-model generation ``Gen(S*)`` for saturated pure clause sets.

When saturation does not derive the empty clause, the completeness proof of
the superposition calculus constructs a model of the clause set.  The
construction (due to Bachmair and Ganzinger, used by the paper via Lemma 3.1)
processes the clauses in increasing clause order and lets certain *productive*
clauses generate rewrite edges:

    a clause ``Gamma -> Delta, x = y`` generates the edge ``x => y`` when

    * ``x > y`` in the term ordering,
    * ``x = y`` is strictly maximal in the clause,
    * the clause is false in the partial model built so far, and
    * ``x`` is still irreducible (has no outgoing edge yet).

The result is a convergent rewrite relation ``R`` together with the map ``g``
from each edge to its generating clause.  Lemma 3.1(2) of the paper — the
generating clause's remaining literals are false under ``R`` — is exactly the
property the spatial normalisation rules N1/N3 rely on, so we keep the leftover
``Gamma``/``Delta`` of the generating clause alongside each edge.

As a defensive measure :func:`generate_model` verifies that the relation it
built really satisfies every pure clause of the input.  For a properly
saturated input this always holds; a failure indicates a saturation bug and
raises :class:`ModelGenerationError` rather than silently producing a wrong
answer.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.logic.atoms import EqAtom
from repro.logic.clauses import Clause
from repro.logic.ordering import TermOrder
from repro.logic.terms import Const
from repro.superposition.kernel import _MASK, SHIFT, IntClause, _cmask_of
from repro.superposition.rewrite import RewriteRelation


class ModelGenerationError(RuntimeError):
    """Raised when the candidate model fails to satisfy the (allegedly saturated) clauses."""


@dataclass(frozen=True)
class GeneratingClause:
    """Bookkeeping for one rewrite edge: the clause that generated it.

    ``leftover_gamma`` and ``leftover_delta`` are the clause's literals other
    than the generating equation itself; by Lemma 3.1 they are all false in the
    final model, which is what allows the normalisation rules to carry them
    into normalised spatial clauses.
    """

    clause: Clause
    equation: EqAtom
    leftover_gamma: FrozenSet[EqAtom]
    leftover_delta: FrozenSet[EqAtom]


@dataclass
class EqualityModel:
    """The pair ``<R, g>`` returned by ``Gen(S*)``.

    Attributes
    ----------
    relation:
        The convergent rewrite relation ``R``.
    generators:
        The map ``g`` from rewrite edges ``(x, y)`` to their generating clause
        record.
    order:
        The term ordering the model was generated under (needed to interpret
        normal forms consistently downstream).
    """

    relation: RewriteRelation
    generators: Dict[Tuple[Const, Const], GeneratingClause]
    order: TermOrder

    def normal_form(self, constant: Const) -> Const:
        """The ``R``-normal form of a constant."""
        return self.relation.normal_form(constant)

    def satisfies_atom(self, atom: EqAtom) -> bool:
        """``R |~ x = y``."""
        return self.relation.satisfies_atom(atom)

    def satisfies_literal(self, atom: EqAtom, positive: bool) -> bool:
        """Satisfaction of a pure literal."""
        return self.relation.satisfies_literal(atom, positive)

    def satisfies_pure_clause(self, clause: Clause) -> bool:
        """``R |~ Gamma -> Delta`` for a pure clause."""
        return self.relation.satisfies_pure_clause(clause)

    def generator_for(self, source: Const, target: Const) -> GeneratingClause:
        """The generating clause of the edge ``source => target``."""
        return self.generators[(source, target)]

    def edge_count(self) -> int:
        """Number of rewrite edges in the model."""
        return len(self.relation)


def generate_model(
    clauses: Iterable[Clause],
    order: TermOrder,
    verify: bool = True,
) -> EqualityModel:
    """Run the candidate-model construction on a saturated set of pure clauses.

    Parameters
    ----------
    clauses:
        The saturated pure clauses (the empty clause must not be among them).
    order:
        The term ordering; ``nil`` must be minimal, as the paper requires.
    verify:
        When true (the default), check that the generated relation satisfies
        every input clause and raise :class:`ModelGenerationError` otherwise.
    """
    pure_clauses: List[Clause] = []
    for clause in clauses:
        if not clause.is_pure:
            raise ValueError("generate_model expects pure clauses only")
        if clause.is_empty:
            raise ValueError("cannot generate a model: the empty clause is present")
        if clause.is_tautology:
            continue
        pure_clauses.append(clause)

    ordered = sorted(pure_clauses, key=order.clause_sort_key)

    relation = RewriteRelation()
    generators: Dict[Tuple[Const, Const], GeneratingClause] = {}

    for clause in ordered:
        if relation.satisfies_pure_clause(clause):
            continue
        production = _productive_equation(clause, relation, order)
        if production is None:
            # The clause stays false at this point of the construction.  For a
            # genuinely saturated set the final verification below still
            # succeeds because some larger clause will produce the missing
            # edge; if not, verification reports the problem.
            continue
        big, small, equation = production
        relation.add_edge(big, small)
        generators[(big, small)] = GeneratingClause(
            clause=clause,
            equation=equation,
            leftover_gamma=clause.gamma,
            leftover_delta=clause.delta - {equation},
        )

    if verify:
        _verify_model(relation, ordered, generators)

    return EqualityModel(relation=relation, generators=generators, order=order)


#: Sentinel for construction-trail positions not yet evaluated (clauses
#: inserted since the last construction).
_UNDECIDED = object()


class IncrementalModelGenerator:
    """``Gen(S*)`` maintained incrementally across saturation rounds.

    The prover's inner loop regenerates the candidate model after every
    saturation chunk and every batch of well-formedness consequences.  Between
    two consecutive calls the clause set changes only a little, yet the
    one-shot :func:`generate_model` re-sorts, re-constructs and re-verifies
    everything from scratch.  This class keeps three pieces of state alive
    between calls:

    * the **ordered clause list**, maintained insertion-sorted under the
      memoised ``clause_sort_key`` (which is injective on pure clauses, so
      positions are unambiguous and removals can be found by bisection);
    * the **construction trail** — the produce/skip decision at every position
      of the ordered list.  A decision at position ``i`` depends only on the
      *rewrite relation* built from the clauses before ``i``, not on those
      clauses themselves: as long as the edge sequence replayed so far equals
      the previous construction's, recorded decisions stay valid and are
      applied without satisfiability checks.  A newly inserted clause is
      evaluated in place; if it produces **no** edge the relation is
      unchanged and the replay continues, so only an insertion that actually
      fires (or the removal of a clause that had fired) invalidates the
      decisions behind it;
    * the **verification cache** — the set of clauses already checked against
      the current rewrite relation, plus the per-edge generator records whose
      leftover literals were checked.  Satisfaction of a clause depends only
      on the *normal forms of its own constants*, so the cache is invalidated
      per constant: when the edge set changes, the generator diffs the
      normal-form snapshot against the previous round's and re-verifies only
      the clauses that mention a constant whose normal form actually moved.
      A round that leaves the edge set unchanged (the common case while the
      prover narrows in on a stable model) verifies only newly added clauses;
      a round that adds one edge re-verifies only the clauses in that edge's
      constant neighbourhood.

    The result is equal to ``generate_model(clauses, order, verify)`` called
    from scratch on every round — the construction is deterministic and the
    caches are invalidated exactly when their inputs change.
    """

    def __init__(self, order: TermOrder, verify: bool = True, dense: bool = True):
        self.order = order
        self.verify = verify
        #: Prefer the dense-side generator when the paired engine exposes a
        #: kernel core (see :class:`_DenseModelGenerator`); disabled by the
        #: ``use_dense_models`` ablation, which keeps the decoded-clause feed.
        self.dense = dense
        self._dense_impl: Optional[_DenseModelGenerator] = None
        self._members: Set[Clause] = set()
        self._keys: List[Tuple] = []
        self._ordered: List[Clause] = []
        #: Per-position construction decision: ``None`` (clause produced no
        #: edge), ``(big, small, GeneratingClause)``, or the ``_UNDECIDED``
        #: sentinel for positions inserted since the last construction.
        self._decisions: List[object] = []
        #: Positions >= the barrier hold decisions made under a relation
        #: prefix that no longer exists (an edge-producing clause before them
        #: was removed); they must be re-evaluated.
        self._replay_barrier = 0
        self._verified_edges: Optional[FrozenSet[Tuple[Const, Const]]] = None
        #: Clauses whose satisfaction still has to be checked against the
        #: current relation (everything else passed under normal forms that
        #: have not moved since).
        self._unverified: Set[Clause] = set()
        self._verified_generators: Dict[Tuple[Const, Const], GeneratingClause] = {}
        #: constant -> clauses of the current set mentioning it (the
        #: invalidation neighbourhoods of the per-constant verification cache).
        self._clauses_by_const: Dict[Const, Set[Clause]] = {}
        #: Normal form of every constant at the last verification.
        self._verified_normal_forms: Dict[Const, Const] = {}
        #: Which key function populated ``_keys``: ``None`` until first use,
        #: then "symbolic" (``TermOrder.clause_sort_key``), "dense" (the
        #: kernel's packed literal keys over decoded clauses), or
        #: "dense-core" (the :class:`_DenseModelGenerator` owns all state).
        #: The orders agree but the keys/structures don't, so one generator
        #: must never mix modes.
        self._key_mode: Optional[str] = None

    def model_for(self, clauses: Iterable[Clause]) -> EqualityModel:
        """The candidate model of the given clause set (see :func:`generate_model`)."""
        self._set_key_mode("symbolic")
        self._update_ordered(clauses)
        relation, generators = self._construct()
        if self.verify:
            self._verify(relation, generators)
        return EqualityModel(relation=relation, generators=generators, order=self.order)

    def model_for_engine(self, engine) -> EqualityModel:
        """The candidate model of an engine's current known clause set.

        With a kernel engine and ``dense`` enabled (the default), the whole
        construction runs on the dense side: a :class:`_DenseModelGenerator`
        consumes the engine's raw :class:`IntClause` feed and maintains the
        ordered list, trail and verification caches over integer ids —
        symbolic objects are materialised only at the model boundary.

        Otherwise, when the engine maintains a (decoded) change feed
        (``drain_known_changes``), the ordered list, trail and verification
        caches are updated from the *deltas* under the engine's precomputed
        dense sort keys, skipping both the full-set diff and the symbolic
        key computations of :meth:`model_for`; failing that, this falls back
        to diffing ``known_pure_clauses()``.  The change feed supports one
        consumer, which is exactly the pairing the prover creates.
        """
        if self._dense_impl is not None:
            return self._dense_impl.model()
        if self.dense:
            core_of = getattr(engine, "dense_core", None)
            core = core_of() if core_of is not None else None
            if core is not None:
                self._set_key_mode("dense-core")
                self._dense_impl = _DenseModelGenerator(core, self.order, self.verify)
                return self._dense_impl.model()
        changes = engine.drain_known_changes()
        if changes is None:
            return self.model_for(engine.known_pure_clauses())
        self._set_key_mode("dense")
        added, removed = changes
        if added or removed:
            self._apply_changes(added, removed)
        relation, generators = self._construct()
        if self.verify:
            self._verify(relation, generators)
        return EqualityModel(relation=relation, generators=generators, order=self.order)

    # -- internals -----------------------------------------------------------
    def _set_key_mode(self, mode: str) -> None:
        if self._key_mode is None:
            self._key_mode = mode
        elif self._key_mode != mode:
            raise RuntimeError(
                "an IncrementalModelGenerator cannot mix dense-keyed and "
                "symbolically-keyed updates; pair it with one engine"
            )

    def _apply_changes(self, added, removed) -> None:
        """Apply a keyed known-set delta to the ordered list and the caches."""
        by_const = self._clauses_by_const
        members = self._members
        unverified = self._unverified
        for clause, key in removed:
            if clause not in members:
                continue
            members.discard(clause)
            position = bisect_left(self._keys, key)
            decision = self._decisions[position]
            del self._keys[position]
            del self._ordered[position]
            del self._decisions[position]
            if decision is not None and decision is not _UNDECIDED:
                self._replay_barrier = min(self._replay_barrier, position)
            elif position < self._replay_barrier:
                self._replay_barrier -= 1
            unverified.discard(clause)
            for constant in clause.constants():
                bucket = by_const.get(constant)
                if bucket is not None:
                    bucket.discard(clause)
        for clause, key in added:
            if not clause.is_pure:
                raise ValueError("generate_model expects pure clauses only")
            if clause.is_empty:
                raise ValueError("cannot generate a model: the empty clause is present")
            if clause.is_tautology or clause in members:
                continue
            members.add(clause)
            position = bisect_left(self._keys, key)
            self._keys.insert(position, key)
            self._ordered.insert(position, clause)
            self._decisions.insert(position, _UNDECIDED)
            if position < self._replay_barrier:
                self._replay_barrier += 1
            unverified.add(clause)
            for constant in clause.constants():
                by_const.setdefault(constant, set()).add(clause)
    def _update_ordered(self, clauses: Iterable[Clause]) -> None:
        current: Set[Clause] = set()
        for clause in clauses:
            if not clause.is_pure:
                raise ValueError("generate_model expects pure clauses only")
            if clause.is_empty:
                raise ValueError("cannot generate a model: the empty clause is present")
            if clause.is_tautology:
                continue
            current.add(clause)
        if current == self._members:
            return
        sort_key = self.order.clause_sort_key
        by_const = self._clauses_by_const
        for clause in self._members - current:
            position = bisect_left(self._keys, sort_key(clause))
            decision = self._decisions[position]
            del self._keys[position]
            del self._ordered[position]
            del self._decisions[position]
            if decision is not None and decision is not _UNDECIDED:
                # The removed clause had produced an edge: everything behind
                # it was decided against a relation that no longer exists.
                self._replay_barrier = min(self._replay_barrier, position)
            elif position < self._replay_barrier:
                self._replay_barrier -= 1
            self._unverified.discard(clause)
            for constant in clause.constants():
                bucket = by_const.get(constant)
                if bucket is not None:
                    bucket.discard(clause)
        for clause in current - self._members:
            key = sort_key(clause)
            position = bisect_left(self._keys, key)
            self._keys.insert(position, key)
            self._ordered.insert(position, clause)
            self._decisions.insert(position, _UNDECIDED)
            if position < self._replay_barrier:
                self._replay_barrier += 1
            self._unverified.add(clause)
            for constant in clause.constants():
                by_const.setdefault(constant, set()).add(clause)
        self._members = current

    def _construct(self) -> Tuple[RewriteRelation, Dict[Tuple[Const, Const], GeneratingClause]]:
        relation = RewriteRelation()
        generators: Dict[Tuple[Const, Const], GeneratingClause] = {}
        decisions = self._decisions
        production_of = self.order.production
        barrier = self._replay_barrier
        trusted = True
        # Normal forms of the relation built *so far*, maintained eagerly as
        # edges are added (``_apply_edge``): evaluating a clause is then a
        # dictionary hit per constant instead of a rewrite-chain chase
        # against the relation's (edge-invalidated) cache.
        normal_forms: Dict[Const, Const] = {}
        nf_get = normal_forms.get
        #: normal form -> every constant currently mapping to it.
        classes: Dict[Const, List[Const]] = {}

        def apply_edge(big: Const, small: Const) -> None:
            relation.add_edge(big, small)
            target = nf_get(small, small)
            group = classes.pop(big, None)
            if group is None:
                group = [big]
            else:
                group.append(big)
            for constant in group:
                normal_forms[constant] = target
            bucket = classes.get(target)
            if bucket is None:
                classes[target] = group
            else:
                bucket.extend(group)

        for position, clause in enumerate(self._ordered):
            if trusted:
                if position >= barrier:
                    trusted = False
                else:
                    decision = decisions[position]
                    if decision is not _UNDECIDED:
                        # Replay: the relation built so far equals the one
                        # this decision was made under, so it still holds —
                        # no satisfiability check needed.
                        if decision is not None:
                            big, small, generator = decision
                            apply_edge(big, small)
                            generators[(big, small)] = generator
                        continue
            satisfied = False
            for atom in clause.gamma:
                left, right = atom.left, atom.right
                if nf_get(left, left) != nf_get(right, right):
                    satisfied = True
                    break
            if not satisfied:
                for atom in clause.delta:
                    left, right = atom.left, atom.right
                    if nf_get(left, left) == nf_get(right, right):
                        satisfied = True
                        break
            fresh = None
            if not satisfied:
                production = production_of(clause)
                if production is not None and production[0] not in relation:
                    big, small, equation = production
                    apply_edge(big, small)
                    generator = GeneratingClause(
                        clause=clause,
                        equation=equation,
                        leftover_gamma=clause.gamma,
                        leftover_delta=clause.delta - {equation},
                    )
                    generators[(big, small)] = generator
                    fresh = (big, small, generator)
            if trusted and fresh is not None:
                # A newly inserted clause produced an edge the previous
                # construction did not have: the recorded suffix no longer
                # describes this relation.
                trusted = False
            decisions[position] = fresh
        self._replay_barrier = len(self._ordered)
        return relation, generators

    def _verify(
        self,
        relation: RewriteRelation,
        generators: Dict[Tuple[Const, Const], GeneratingClause],
    ) -> None:
        edges = relation.edge_set()
        unverified = self._unverified
        if edges != self._verified_edges:
            # The edge set moved: a clause's satisfaction only depends on the
            # normal forms of its own constants, so re-verify exactly the
            # clauses in the neighbourhood of the constants whose normal form
            # actually changed (diff of the two snapshots) instead of
            # everything.
            snapshot = relation.normal_form_snapshot(self._clauses_by_const)
            previous = self._verified_normal_forms
            for constant, normal in snapshot.items():
                if previous.get(constant, constant) != normal:
                    unverified |= self._clauses_by_const[constant]
            self._verified_normal_forms = snapshot
            self._verified_edges = edges
            self._verified_generators = {}
        if unverified:
            # Evaluate straight off the normal-form snapshot: one dictionary
            # hit per constant instead of a satisfies_pure_clause call that
            # re-chases (cached) rewrite paths per literal.
            snapshot = self._verified_normal_forms
            snapshot_get = snapshot.get
            normal_form = relation.normal_form
            for clause in list(unverified):
                satisfied = False
                for atom in clause.gamma:
                    left, right = atom.left, atom.right
                    if (snapshot_get(left) or normal_form(left)) != (
                        snapshot_get(right) or normal_form(right)
                    ):
                        satisfied = True
                        break
                if not satisfied:
                    for atom in clause.delta:
                        left, right = atom.left, atom.right
                        if (snapshot_get(left) or normal_form(left)) == (
                            snapshot_get(right) or normal_form(right)
                        ):
                            satisfied = True
                            break
                if not satisfied:
                    raise ModelGenerationError(
                        "the candidate model does not satisfy the clause {}".format(
                            clause
                        )
                    )
                unverified.discard(clause)
        checked_generators = self._verified_generators
        for edge, generator in generators.items():
            if checked_generators.get(edge) == generator:
                continue
            leftover_ok = all(
                relation.satisfies_atom(atom) for atom in generator.leftover_gamma
            ) and not any(relation.satisfies_atom(atom) for atom in generator.leftover_delta)
            if not leftover_ok:
                raise ModelGenerationError(
                    "the generating clause of the edge {} => {} has leftover literals "
                    "that the candidate model does not refute ({})".format(
                        edge[0], edge[1], generator.clause
                    )
                )
            checked_generators[edge] = generator


def _const_ids_of(clause: IntClause) -> List[int]:
    """The dense constant ids occurring in a kernel clause (via its cmask).

    Memoised on the clause — the change feed adds and later removes the same
    record, and the cache resets with ``cmask`` on a rebuild.
    """
    ids = clause.const_ids
    if ids is None:
        mask = _cmask_of(clause)
        ids = []
        while mask:
            low = mask & -mask
            ids.append(low.bit_length() - 1)
            mask ^= low
        clause.const_ids = ids
    return ids


class _DenseModelGenerator:
    """``Gen(S*)`` over :class:`IntClause` records and dense constant ids.

    The dense twin of :class:`IncrementalModelGenerator`'s internals: the
    same ordered list / construction trail / per-constant verification cache
    design, but every structure is keyed by integers — clauses come straight
    off the kernel's raw change feed (``drain_known_changes_raw``), ordering
    uses the precomputed packed sort keys, satisfaction checks unpack atom
    codes with two shifts, and the rewrite relation is a plain ``int -> int``
    dictionary.  Nothing is decoded during maintenance; symbolic objects are
    built only in :meth:`_materialise` — and even there, an unchanged
    edge/generator sequence returns the previous round's
    :class:`EqualityModel` object outright, with its normal-form cache primed
    from the construction's own snapshot.

    Equivalence with the symbolic generator is structural: the dense sort key
    is order- and equality-isomorphic to ``TermOrder.clause_sort_key``, the
    precomputed ``IntClause.production`` agrees with ``TermOrder.production``
    literal-for-literal, and satisfaction is evaluated over the same normal
    forms — so the construction visits the same clauses in the same order and
    produces the identical edge and generator sequence (pinned by the matrix
    tests in ``tests/test_kernel.py``).
    """

    def __init__(self, core, order: TermOrder, verify: bool):
        self._core = core
        self._encoder = core.encoder
        self.order = order
        self.verify = verify
        self._members: Set[IntClause] = set()
        self._keys: List[Tuple[int, ...]] = []
        self._ordered: List[IntClause] = []
        #: Per-position construction decision: ``None`` (no edge),
        #: ``(big, small)`` id pair, or ``_UNDECIDED``; the producing clause
        #: is the position's clause, so it is not stored.
        self._decisions: List[object] = []
        self._replay_barrier = 0
        #: constant id -> clauses of the current set mentioning it.
        self._clauses_by_const: Dict[int, Set[IntClause]] = {}
        self._verified_edges: Optional[FrozenSet[Tuple[int, int]]] = None
        self._verified_normal_forms: Dict[int, int] = {}
        self._verified_generators: Dict[Tuple[int, int], IntClause] = {}
        self._unverified: Set[IntClause] = set()
        #: IntClause -> its (immutable) GeneratingClause record; an interned
        #: clause determines its equation, so the record never changes.
        self._generating_cache: Dict[IntClause, GeneratingClause] = {}
        self._boundary_signature: Optional[List[Tuple[int, int, int]]] = None
        self._boundary_model: Optional[EqualityModel] = None

    def model(self) -> EqualityModel:
        """The candidate model of the paired core's current known set."""
        added, removed = self._core.drain_known_changes_raw()
        if added or removed:
            self._apply_changes(added, removed)
        edges, gen_of, normal_forms = self._construct()
        if self.verify:
            self._verify(edges, gen_of, normal_forms)
        return self._materialise(edges, gen_of, normal_forms)

    # -- maintenance ---------------------------------------------------------
    def _apply_changes(self, added: List[IntClause], removed: List[IntClause]) -> None:
        sort_key_of = self._encoder.sort_key_of
        by_const = self._clauses_by_const
        members = self._members
        unverified = self._unverified
        keys, ordered, decisions = self._keys, self._ordered, self._decisions
        for clause in removed:
            if clause not in members:
                continue
            members.discard(clause)
            position = bisect_left(keys, sort_key_of(clause))
            decision = decisions[position]
            del keys[position]
            del ordered[position]
            del decisions[position]
            if decision is not None and decision is not _UNDECIDED:
                self._replay_barrier = min(self._replay_barrier, position)
            elif position < self._replay_barrier:
                self._replay_barrier -= 1
            unverified.discard(clause)
            for identifier in _const_ids_of(clause):
                bucket = by_const.get(identifier)
                if bucket is not None:
                    bucket.discard(clause)
        for clause in added:
            # Kernel clauses are pure by construction; the feed filters
            # tautologies, but mirror the symbolic guards for direct users.
            if clause.is_empty:
                raise ValueError("cannot generate a model: the empty clause is present")
            if clause.is_tautology or clause in members:
                continue
            members.add(clause)
            key = sort_key_of(clause)
            position = bisect_left(keys, key)
            keys.insert(position, key)
            ordered.insert(position, clause)
            decisions.insert(position, _UNDECIDED)
            if position < self._replay_barrier:
                self._replay_barrier += 1
            unverified.add(clause)
            for identifier in _const_ids_of(clause):
                by_const.setdefault(identifier, set()).add(clause)

    # -- construction --------------------------------------------------------
    def _construct(
        self,
    ) -> Tuple[Dict[int, int], Dict[Tuple[int, int], IntClause], Dict[int, int]]:
        decisions = self._decisions
        barrier = self._replay_barrier
        trusted = True
        edges: Dict[int, int] = {}
        gen_of: Dict[Tuple[int, int], IntClause] = {}
        # Normal forms of the relation built so far, maintained eagerly per
        # edge exactly like the symbolic `_construct` (ids absent from the
        # dict are their own normal form).
        normal_forms: Dict[int, int] = {}
        nf_get = normal_forms.get
        classes: Dict[int, List[int]] = {}

        def apply_edge(big: int, small: int) -> None:
            edges[big] = small
            target = nf_get(small, small)
            group = classes.pop(big, None)
            if group is None:
                group = [big]
            else:
                group.append(big)
            for identifier in group:
                normal_forms[identifier] = target
            bucket = classes.get(target)
            if bucket is None:
                classes[target] = group
            else:
                bucket.extend(group)

        for position, clause in enumerate(self._ordered):
            if trusted:
                if position >= barrier:
                    trusted = False
                else:
                    decision = decisions[position]
                    if decision is not _UNDECIDED:
                        if decision is not None:
                            big, small = decision
                            apply_edge(big, small)
                            gen_of[(big, small)] = clause
                        continue
            satisfied = False
            for code in clause.gamma:
                big, small = code >> SHIFT, code & _MASK
                if nf_get(big, big) != nf_get(small, small):
                    satisfied = True
                    break
            if not satisfied:
                for code in clause.delta:
                    big, small = code >> SHIFT, code & _MASK
                    if nf_get(big, big) == nf_get(small, small):
                        satisfied = True
                        break
            fresh = None
            if not satisfied:
                production = clause.production
                if production is not None and production[0] not in edges:
                    big, small, _equation = production
                    apply_edge(big, small)
                    gen_of[(big, small)] = clause
                    fresh = (big, small)
            if trusted and fresh is not None:
                trusted = False
            decisions[position] = fresh
        self._replay_barrier = len(self._ordered)
        return edges, gen_of, normal_forms

    # -- verification --------------------------------------------------------
    def _verify(
        self,
        edges: Dict[int, int],
        gen_of: Dict[Tuple[int, int], IntClause],
        normal_forms: Dict[int, int],
    ) -> None:
        edge_set = frozenset(edges.items())
        unverified = self._unverified
        if edge_set != self._verified_edges:
            nf_get = normal_forms.get
            snapshot = {
                identifier: nf_get(identifier, identifier)
                for identifier in self._clauses_by_const
            }
            previous_get = self._verified_normal_forms.get
            for identifier, normal in snapshot.items():
                if previous_get(identifier, identifier) != normal:
                    unverified |= self._clauses_by_const[identifier]
            self._verified_normal_forms = snapshot
            self._verified_edges = edge_set
            self._verified_generators = {}
        snapshot_get = self._verified_normal_forms.get
        if unverified:
            for clause in list(unverified):
                satisfied = False
                for code in clause.gamma:
                    big, small = code >> SHIFT, code & _MASK
                    if snapshot_get(big, big) != snapshot_get(small, small):
                        satisfied = True
                        break
                if not satisfied:
                    for code in clause.delta:
                        big, small = code >> SHIFT, code & _MASK
                        if snapshot_get(big, big) == snapshot_get(small, small):
                            satisfied = True
                            break
                if not satisfied:
                    raise ModelGenerationError(
                        "the candidate model does not satisfy the clause {}".format(
                            self._encoder.decode(clause)
                        )
                    )
                unverified.discard(clause)
        checked = self._verified_generators
        for edge, generator in gen_of.items():
            if checked.get(edge) is generator:
                continue
            # Lemma 3.1(2): leftover gamma atoms hold, leftover delta atoms
            # (everything but the generating equation) fail.
            leftover_ok = True
            for code in generator.gamma:
                big, small = code >> SHIFT, code & _MASK
                if snapshot_get(big, big) != snapshot_get(small, small):
                    leftover_ok = False
                    break
            if leftover_ok:
                top = generator.production[2]
                for code in generator.delta:
                    if code == top:
                        continue
                    big, small = code >> SHIFT, code & _MASK
                    if snapshot_get(big, big) == snapshot_get(small, small):
                        leftover_ok = False
                        break
            if not leftover_ok:
                const_of = self._encoder.const_of
                raise ModelGenerationError(
                    "the generating clause of the edge {} => {} has leftover literals "
                    "that the candidate model does not refute ({})".format(
                        const_of(edge[0]), const_of(edge[1]), self._encoder.decode(generator)
                    )
                )
            checked[edge] = generator

    # -- the symbolic boundary -----------------------------------------------
    def _generating(self, clause: IntClause) -> GeneratingClause:
        record = self._generating_cache.get(clause)
        if record is None:
            decoded = self._encoder.decode(clause)
            equation = self._encoder.atom_of(clause.production[2])
            record = GeneratingClause(
                clause=decoded,
                equation=equation,
                leftover_gamma=decoded.gamma,
                leftover_delta=decoded.delta - {equation},
            )
            self._generating_cache[clause] = record
        return record

    def _materialise(
        self,
        edges: Dict[int, int],
        gen_of: Dict[Tuple[int, int], IntClause],
        normal_forms: Dict[int, int],
    ) -> EqualityModel:
        signature = [
            (big, small, generator.ordinal)
            for (big, small), generator in gen_of.items()
        ]
        if signature == self._boundary_signature:
            # Same edges from the same generators: the previous round's model
            # object (and its warm normal-form cache) is still exact.  The
            # model is read-only downstream, so sharing it is safe.
            return self._boundary_model
        const_of = self._encoder.const_of
        nf_get = normal_forms.get
        relation = RewriteRelation.preloaded(
            {const_of(big): const_of(small) for big, small in edges.items()},
            {
                const_of(identifier): const_of(nf_get(identifier, identifier))
                for identifier in self._clauses_by_const
            },
        )
        generators = {
            (const_of(big), const_of(small)): self._generating(generator)
            for (big, small), generator in gen_of.items()
        }
        model = EqualityModel(relation=relation, generators=generators, order=self.order)
        self._boundary_signature = signature
        self._boundary_model = model
        return model


def _verify_model(
    relation: RewriteRelation,
    clauses: List[Clause],
    generators: Dict[Tuple[Const, Const], GeneratingClause],
) -> None:
    """Check the two properties the prover relies on (Theorem 3.1 and Lemma 3.1).

    1. The candidate relation satisfies every known pure clause.
    2. For every rewrite edge, the generating clause's leftover literals are
       false under the final relation (so that the normalisation rules N1/N3
       carry only literals that the model refutes).

    Both properties are guaranteed once the clause set is saturated; verifying
    them explicitly lets the prover work with *partially* saturated sets and
    simply resume saturation when the candidate is not yet good enough.
    """
    failures = [clause for clause in clauses if not relation.satisfies_pure_clause(clause)]
    if failures:
        raise ModelGenerationError(
            "the candidate model does not satisfy {} clause(s) "
            "(first failure: {})".format(len(failures), failures[0])
        )
    for (source, target), generator in generators.items():
        leftover_ok = all(
            relation.satisfies_atom(atom) for atom in generator.leftover_gamma
        ) and not any(relation.satisfies_atom(atom) for atom in generator.leftover_delta)
        if not leftover_ok:
            raise ModelGenerationError(
                "the generating clause of the edge {} => {} has leftover literals "
                "that the candidate model does not refute ({})".format(
                    source, target, generator.clause
                )
            )


def _productive_equation(
    clause: Clause, relation: RewriteRelation, order: TermOrder
) -> Optional[Tuple[Const, Const, EqAtom]]:
    """Find the equation through which ``clause`` may produce a rewrite edge.

    Returns ``(larger, smaller, equation)`` when the productivity conditions
    hold, ``None`` otherwise.  The ordering-level conditions (no selected
    literals, orientable, strictly maximal) identify at most one equation and
    are memoised on the ordering; only irreducibility depends on the relation
    built so far.
    """
    production = order.production(clause)
    if production is None:
        return None
    if not relation.is_irreducible(production[0]):
        return None
    return production
