"""Candidate-model generation ``Gen(S*)`` for saturated pure clause sets.

When saturation does not derive the empty clause, the completeness proof of
the superposition calculus constructs a model of the clause set.  The
construction (due to Bachmair and Ganzinger, used by the paper via Lemma 3.1)
processes the clauses in increasing clause order and lets certain *productive*
clauses generate rewrite edges:

    a clause ``Gamma -> Delta, x = y`` generates the edge ``x => y`` when

    * ``x > y`` in the term ordering,
    * ``x = y`` is strictly maximal in the clause,
    * the clause is false in the partial model built so far, and
    * ``x`` is still irreducible (has no outgoing edge yet).

The result is a convergent rewrite relation ``R`` together with the map ``g``
from each edge to its generating clause.  Lemma 3.1(2) of the paper — the
generating clause's remaining literals are false under ``R`` — is exactly the
property the spatial normalisation rules N1/N3 rely on, so we keep the leftover
``Gamma``/``Delta`` of the generating clause alongside each edge.

As a defensive measure :func:`generate_model` verifies that the relation it
built really satisfies every pure clause of the input.  For a properly
saturated input this always holds; a failure indicates a saturation bug and
raises :class:`ModelGenerationError` rather than silently producing a wrong
answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.logic.atoms import EqAtom
from repro.logic.clauses import Clause
from repro.logic.ordering import TermOrder
from repro.logic.terms import Const
from repro.superposition.rewrite import RewriteRelation


class ModelGenerationError(RuntimeError):
    """Raised when the candidate model fails to satisfy the (allegedly saturated) clauses."""


@dataclass(frozen=True)
class GeneratingClause:
    """Bookkeeping for one rewrite edge: the clause that generated it.

    ``leftover_gamma`` and ``leftover_delta`` are the clause's literals other
    than the generating equation itself; by Lemma 3.1 they are all false in the
    final model, which is what allows the normalisation rules to carry them
    into normalised spatial clauses.
    """

    clause: Clause
    equation: EqAtom
    leftover_gamma: FrozenSet[EqAtom]
    leftover_delta: FrozenSet[EqAtom]


@dataclass
class EqualityModel:
    """The pair ``<R, g>`` returned by ``Gen(S*)``.

    Attributes
    ----------
    relation:
        The convergent rewrite relation ``R``.
    generators:
        The map ``g`` from rewrite edges ``(x, y)`` to their generating clause
        record.
    order:
        The term ordering the model was generated under (needed to interpret
        normal forms consistently downstream).
    """

    relation: RewriteRelation
    generators: Dict[Tuple[Const, Const], GeneratingClause]
    order: TermOrder

    def normal_form(self, constant: Const) -> Const:
        """The ``R``-normal form of a constant."""
        return self.relation.normal_form(constant)

    def satisfies_atom(self, atom: EqAtom) -> bool:
        """``R |~ x = y``."""
        return self.relation.satisfies_atom(atom)

    def satisfies_literal(self, atom: EqAtom, positive: bool) -> bool:
        """Satisfaction of a pure literal."""
        return self.relation.satisfies_literal(atom, positive)

    def satisfies_pure_clause(self, clause: Clause) -> bool:
        """``R |~ Gamma -> Delta`` for a pure clause."""
        return self.relation.satisfies_pure_clause(clause)

    def generator_for(self, source: Const, target: Const) -> GeneratingClause:
        """The generating clause of the edge ``source => target``."""
        return self.generators[(source, target)]

    def edge_count(self) -> int:
        """Number of rewrite edges in the model."""
        return len(self.relation)


def generate_model(
    clauses: Iterable[Clause],
    order: TermOrder,
    verify: bool = True,
) -> EqualityModel:
    """Run the candidate-model construction on a saturated set of pure clauses.

    Parameters
    ----------
    clauses:
        The saturated pure clauses (the empty clause must not be among them).
    order:
        The term ordering; ``nil`` must be minimal, as the paper requires.
    verify:
        When true (the default), check that the generated relation satisfies
        every input clause and raise :class:`ModelGenerationError` otherwise.
    """
    pure_clauses: List[Clause] = []
    for clause in clauses:
        if not clause.is_pure:
            raise ValueError("generate_model expects pure clauses only")
        if clause.is_empty:
            raise ValueError("cannot generate a model: the empty clause is present")
        if clause.is_tautology:
            continue
        pure_clauses.append(clause)

    ordered = sorted(
        pure_clauses, key=lambda clause: order.clause_key(clause.gamma, clause.delta)
    )

    relation = RewriteRelation()
    generators: Dict[Tuple[Const, Const], GeneratingClause] = {}

    for clause in ordered:
        if relation.satisfies_pure_clause(clause):
            continue
        production = _productive_equation(clause, relation, order)
        if production is None:
            # The clause stays false at this point of the construction.  For a
            # genuinely saturated set the final verification below still
            # succeeds because some larger clause will produce the missing
            # edge; if not, verification reports the problem.
            continue
        big, small, equation = production
        relation.add_edge(big, small)
        generators[(big, small)] = GeneratingClause(
            clause=clause,
            equation=equation,
            leftover_gamma=clause.gamma,
            leftover_delta=clause.delta - {equation},
        )

    if verify:
        _verify_model(relation, ordered, generators)

    return EqualityModel(relation=relation, generators=generators, order=order)


def _verify_model(
    relation: RewriteRelation,
    clauses: List[Clause],
    generators: Dict[Tuple[Const, Const], GeneratingClause],
) -> None:
    """Check the two properties the prover relies on (Theorem 3.1 and Lemma 3.1).

    1. The candidate relation satisfies every known pure clause.
    2. For every rewrite edge, the generating clause's leftover literals are
       false under the final relation (so that the normalisation rules N1/N3
       carry only literals that the model refutes).

    Both properties are guaranteed once the clause set is saturated; verifying
    them explicitly lets the prover work with *partially* saturated sets and
    simply resume saturation when the candidate is not yet good enough.
    """
    failures = [clause for clause in clauses if not relation.satisfies_pure_clause(clause)]
    if failures:
        raise ModelGenerationError(
            "the candidate model does not satisfy {} clause(s) "
            "(first failure: {})".format(len(failures), failures[0])
        )
    for (source, target), generator in generators.items():
        leftover_ok = all(
            relation.satisfies_atom(atom) for atom in generator.leftover_gamma
        ) and not any(relation.satisfies_atom(atom) for atom in generator.leftover_delta)
        if not leftover_ok:
            raise ModelGenerationError(
                "the generating clause of the edge {} => {} has leftover literals "
                "that the candidate model does not refute ({})".format(
                    source, target, generator.clause
                )
            )


def _productive_equation(
    clause: Clause, relation: RewriteRelation, order: TermOrder
) -> Optional[Tuple[Const, Const, EqAtom]]:
    """Find the equation through which ``clause`` may produce a rewrite edge.

    Returns ``(larger, smaller, equation)`` when the productivity conditions
    hold, ``None`` otherwise.
    """
    if clause.gamma:
        # Under the "select all negative literals" selection function used by
        # the calculus, clauses with selected literals are never productive.
        return None
    for equation in clause.delta:
        if equation.is_trivial:
            continue
        big, small = order.orient(equation)
        if not order.greater(big, small):
            continue
        if not order.is_maximal_in(equation, True, clause.gamma, clause.delta, strictly=True):
            continue
        if not relation.is_irreducible(big):
            continue
        return big, small, equation
    return None
