"""Inference rules of the ground superposition calculus *I*.

The pure fragment of the logic is ground (constants only, no function
symbols), which specialises the superposition calculus of Nieuwenhuis and
Rubio to four rules over pure clauses ``Gamma -> Delta``:

Superposition right
    From ``Gamma -> Delta, x = y`` and ``Gamma' -> Delta', x = z`` (with
    ``x > y`` and the equations maximal in their clauses) derive
    ``Gamma, Gamma' -> Delta, Delta', y = z``.

Superposition left
    From ``Gamma -> Delta, x = y`` and ``Gamma', x = z -> Delta'`` derive
    ``Gamma, Gamma', y = z -> Delta, Delta'``.

Equality factoring
    From ``Gamma -> Delta, x = y, x = z`` (with ``x = y`` maximal, ``x > y``)
    derive ``Gamma, y = z -> Delta, x = z``.

Equality resolution
    From ``Gamma, x = x -> Delta`` derive ``Gamma -> Delta``.  Because the
    premise and the conclusion are logically equivalent, the saturation engine
    applies this rule as a simplification rather than as a generating
    inference.

The implementation is deliberately slightly more liberal than the textbook
calculus: ordering side conditions that are only needed to *prune* the search
space (never for soundness) are enforced where cheap and relaxed where the
bookkeeping would complicate the code.  Performing extra inferences preserves
both soundness and refutational completeness; it only generates a few more
clauses, all of which live in the finite space of pure clauses over the
problem's constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.logic.atoms import EqAtom
from repro.logic.clauses import Clause
from repro.logic.intern import intern_atom
from repro.logic.ordering import TermOrder
from repro.logic.terms import Const


@dataclass(frozen=True)
class Inference:
    """A single derivation step: conclusion, rule name and premises."""

    conclusion: Clause
    rule: str
    premises: Tuple[Clause, ...]

    def __str__(self) -> str:
        return "[{}] {}".format(self.rule, self.conclusion)


class SuperpositionCalculus:
    """The inference rules of system *I*, parameterised by a term ordering."""

    def __init__(self, order: TermOrder):
        self.order = order

    def _strictly_maximal_equation(self, clause: Clause):
        """The oriented strictly maximal equation of a selection-free clause.

        Returns ``(big, small, equation)`` or ``None`` when the clause has
        selected (negative) literals, no non-trivial positive equation, or its
        maximal positive equation is not strictly maximal.  The computation
        (and its memo) lives on the ordering — see
        :meth:`~repro.logic.ordering.TermOrder.production` — because the
        clause index and the model construction gate on the same condition.
        """
        return self.order.production(clause)

    # -- simplifications -----------------------------------------------------
    def simplify(self, clause: Clause) -> Clause:
        """Apply equality resolution exhaustively and drop trivial consequents.

        * ``Gamma, x = x -> Delta`` simplifies to ``Gamma -> Delta`` (equality
          resolution; the two clauses are equivalent because ``x = x`` holds).
        * Trivial atoms ``x = x`` in ``Delta`` make the clause a tautology and
          are left in place so that :meth:`is_tautology` can discard it.
        """
        if not clause.is_pure:
            return clause
        for atom in clause.gamma:
            if atom.is_trivial:
                break
        else:
            return clause
        gamma = frozenset(atom for atom in clause.gamma if not atom.is_trivial)
        return Clause(gamma, clause.delta, None, True)

    @staticmethod
    def is_tautology(clause: Clause) -> bool:
        """Syntactic tautology test (used to discard redundant clauses)."""
        return clause.is_tautology

    # -- generating inferences -----------------------------------------------
    #
    # The implementation uses the standard "select all negative literals"
    # selection function: a clause with a non-empty antecedent (``Gamma``)
    # participates in inferences only through those negative literals (it can
    # be superposed *into*, and equality resolution applies to it), never as
    # the rewriting premise, never through equality factoring, and never as a
    # productive clause during model generation.  This is the textbook
    # complete instance of the calculus and it keeps the number of generated
    # clauses small: positive clauses drive the rewriting, clauses carrying
    # disequalities behave like constraints that get narrowed by it.

    def infer_within(self, clause: Clause) -> List[Inference]:
        """All single-premise inferences from a pure clause (equality factoring)."""
        if not clause.is_pure or clause.gamma:
            return []
        inferences: List[Inference] = []
        delta = clause.sorted_delta()
        for i, first in enumerate(delta):
            if first.is_trivial:
                continue
            big, small = self.order.orient(first)
            if not self.order.is_maximal_in(first, True, clause.gamma, clause.delta):
                continue
            for j, second in enumerate(delta):
                if i == j or second.is_trivial:
                    continue
                shared = self._shared_maximal(big, second)
                if shared is None:
                    continue
                other_side = second.other(shared)
                conclusion = Clause(
                    clause.gamma | {intern_atom(small, other_side)},
                    (clause.delta - {first}) | {second},
                    None,
                    True,
                )
                inferences.append(
                    Inference(self.simplify(conclusion), "equality-factoring", (clause,))
                )
        return inferences

    def infer_between(self, left: Clause, right: Clause) -> List[Inference]:
        """All two-premise superposition inferences with ``left`` as the rewriting premise.

        Callers should invoke this twice (swapping the arguments) to obtain the
        symmetric inferences.
        """
        if not (left.is_pure and right.is_pure):
            return []
        production = self._strictly_maximal_equation(left)
        if production is None:
            # The rewriting premise must have a strictly maximal, orientable
            # positive equation and no selected (negative) literals.
            return []
        big, small, equation = production
        left_rest_delta = left.delta - {equation}
        inferences: List[Inference] = []

        if right.gamma:
            # All negative literals of the premise are selected:
            # superposition left into each of them, and nothing else.  The
            # iteration is over the clause's *canonical* (sort-key) order
            # rather than raw frozenset order: conclusions are enqueued in
            # emission order, so a deterministic, representation-independent
            # sequence here is what lets every engine configuration — naive,
            # indexed, dense-kernel — derive identical clauses in an
            # identical order.
            for target in right.sorted_gamma():
                rewritten = self._rewrite_atom(target, big, small)
                if rewritten is None:
                    continue
                conclusion = Clause(
                    (right.gamma - {target}) | {rewritten},
                    left_rest_delta | right.delta,
                    None,
                    True,
                )
                inferences.append(
                    Inference(self.simplify(conclusion), "superposition-left", (left, right))
                )
            return inferences

        # Superposition right: rewrite inside the strictly maximal positive
        # literal of a premise without selected literals.
        right_production = self._strictly_maximal_equation(right)
        if right_production is None:
            return inferences
        target = right_production[2]
        rewritten = self._rewrite_atom(target, big, small)
        if rewritten is not None:
            conclusion = Clause(
                right.gamma,
                left_rest_delta | (right.delta - {target}) | {rewritten},
                None,
                True,
            )
            inferences.append(
                Inference(self.simplify(conclusion), "superposition-right", (left, right))
            )
        return inferences

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _rewrite_atom(atom: EqAtom, old: Const, new: Const) -> Optional[EqAtom]:
        """Replace one (or both) occurrences of ``old`` in ``atom`` by ``new``.

        Returns ``None`` when ``old`` does not occur in the atom, i.e. no
        superposition inference exists at this position.
        """
        if not atom.mentions(old):
            return None
        left = new if atom.left == old else atom.left
        right = new if atom.right == old else atom.right
        return intern_atom(left, right)

    def _shared_maximal(self, big: Const, atom: EqAtom) -> Optional[Const]:
        """Return ``big`` if it occurs in ``atom`` (the shared maximal term), else ``None``."""
        if atom.mentions(big):
            return big
        return None
