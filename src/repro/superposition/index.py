"""Clause indexing for the saturation engine.

The given-clause loop performs three queries against the active set on every
iteration, and the naive implementations are all linear scans:

* **forward subsumption** — is the given clause subsumed by some active one?
* **backward subsumption** — which active clauses does the given one subsume?
* **inference-partner selection** — which active clauses can participate in a
  superposition inference with the given clause at all?

Because the fragment is ground, subsumption is literal-set inclusion, which
admits a textbook *literal-occurrence index*: for every literal, the set of
active clauses containing it.  A clause ``C`` subsuming ``D`` must contribute
at least one literal of ``D`` (forward: candidates are the union over ``D``'s
literals) and must have *all* of its literals inside ``D`` (backward:
candidates are contained in any single literal's bucket of ``C``).  A small
feature vector — the ``(|Gamma|, |Delta|)`` lengths — prunes candidates before
the subset tests.

Partner selection uses the shape of the calculus's inference rules.  An
inference between a rewriting premise (strictly-maximal equation ``big =
small``, no selected literals) and a partner exists only when ``big`` occurs
at a rewritable position of the partner: in a selected (negative) literal, or
in the partner's own strictly maximal equation.  Three occurrence maps capture
exactly these positions:

* ``gamma_occ``    — constant -> active clauses with a ``Gamma`` atom mentioning it;
* ``maxeq_occ``    — constant -> productive actives whose maximal equation mentions it;
* ``productive_by_big`` — constant -> productive actives whose oriented maximal
  equation has that constant as its *larger* side.

The candidate sets these maps produce are supersets of the clauses for which
:meth:`~repro.superposition.calculus.SuperpositionCalculus.infer_between`
yields a conclusion (the calculus re-checks every side condition), so the
engine derives exactly the same inferences as the naive scan — candidates are
merely visited in registration order, skipping the provably fruitless pairs.

Buckets are dictionaries keyed by ``id(clause)`` rather than sets of clauses.
The engine holds exactly one object per active clause (duplicates are removed
by the ``_seen`` dedup before activation), and the index keeps each clause
alive as a bucket value, so identity keys are sound — and they avoid calling
the clause's Python-level ``__hash__`` on every one of the millions of bucket
operations a saturation run performs.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Set

from repro.logic.atoms import EqAtom
from repro.logic.clauses import Clause
from repro.logic.ordering import TermOrder
from repro.logic.terms import Const

#: A bucket: id(clause) -> clause.
Bucket = Dict[int, Clause]


class ClauseIndex:
    """Literal-occurrence and partner indexes over the active clause set.

    The index stores only pure clauses (the saturation engine never activates
    anything else) and assigns each clause a registration sequence number so
    candidate sets can be re-ordered to match the active list's iteration
    order exactly.
    """

    def __init__(self, order: TermOrder):
        self._order = order
        self._tick = itertools.count()
        self._seq: Dict[int, int] = {}
        self._neg_occ: Dict[EqAtom, Bucket] = {}
        self._pos_occ: Dict[EqAtom, Bucket] = {}
        self._gamma_occ: Dict[Const, Bucket] = {}
        self._maxeq_occ: Dict[Const, Bucket] = {}
        self._productive_by_big: Dict[Const, Bucket] = {}

    # -- basic protocol ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._seq)

    def __contains__(self, clause: Clause) -> bool:
        return id(clause) in self._seq

    # -- maintenance ---------------------------------------------------------
    def add(self, clause: Clause) -> None:
        """Register an activated clause in every index."""
        key = id(clause)
        if key in self._seq:
            return
        self._seq[key] = next(self._tick)
        for atom in clause.gamma:
            self._neg_occ.setdefault(atom, {})[key] = clause
            self._gamma_occ.setdefault(atom.left, {})[key] = clause
            self._gamma_occ.setdefault(atom.right, {})[key] = clause
        for atom in clause.delta:
            self._pos_occ.setdefault(atom, {})[key] = clause
        production = self._order.production(clause)
        if production is not None:
            big, _, equation = production
            self._productive_by_big.setdefault(big, {})[key] = clause
            self._maxeq_occ.setdefault(equation.left, {})[key] = clause
            self._maxeq_occ.setdefault(equation.right, {})[key] = clause

    def remove(self, clause: Clause) -> None:
        """Drop a clause (deleted by backward subsumption) from every index."""
        key = id(clause)
        if self._seq.pop(key, None) is None:
            return
        for atom in clause.gamma:
            self._discard(self._neg_occ, atom, key)
            self._discard(self._gamma_occ, atom.left, key)
            self._discard(self._gamma_occ, atom.right, key)
        for atom in clause.delta:
            self._discard(self._pos_occ, atom, key)
        production = self._order.production(clause)
        if production is not None:
            big, _, equation = production
            self._discard(self._productive_by_big, big, key)
            self._discard(self._maxeq_occ, equation.left, key)
            self._discard(self._maxeq_occ, equation.right, key)

    @staticmethod
    def _discard(index: Dict, index_key, clause_key: int) -> None:
        bucket = index.get(index_key)
        if bucket is not None:
            bucket.pop(clause_key, None)
            if not bucket:
                del index[index_key]

    # -- subsumption ---------------------------------------------------------
    def is_subsumed(self, clause: Clause) -> bool:
        """Forward subsumption: is some indexed clause a sub-clause of ``clause``?

        Any subsumer is non-empty (the empty clause ends saturation before it
        could be activated), so it shows up in the occurrence bucket of at
        least one of ``clause``'s literals.
        """
        gamma, delta = clause.gamma, clause.delta
        len_gamma, len_delta = len(gamma), len(delta)
        candidates: Bucket = {}
        for atom in gamma:
            bucket = self._neg_occ.get(atom)
            if bucket:
                candidates.update(bucket)
        for atom in delta:
            bucket = self._pos_occ.get(atom)
            if bucket:
                candidates.update(bucket)
        for candidate in candidates.values():
            if (
                len(candidate.gamma) <= len_gamma
                and len(candidate.delta) <= len_delta
                and candidate.gamma <= gamma
                and candidate.delta <= delta
            ):
                return True
        return False

    def subsumed_by(self, clause: Clause) -> Set[Clause]:
        """Backward subsumption: all indexed clauses that ``clause`` subsumes.

        Every victim contains *all* of ``clause``'s literals, so it lies in the
        smallest occurrence bucket among them; the subset test does the rest.
        """
        smallest: Optional[Bucket] = None
        for literals, occ in ((clause.gamma, self._neg_occ), (clause.delta, self._pos_occ)):
            for atom in literals:
                bucket = occ.get(atom)
                if bucket is None:
                    return set()
                if smallest is None or len(bucket) < len(smallest):
                    smallest = bucket
        if smallest is None:
            return set()
        gamma, delta = clause.gamma, clause.delta
        return {
            candidate
            for candidate in smallest.values()
            if gamma <= candidate.gamma and delta <= candidate.delta
        }

    # -- inference-partner selection ----------------------------------------
    def inference_partners(self, given: Clause) -> List[Clause]:
        """Active clauses that can interact with ``given``, in activation order.

        The result is a superset of the clauses for which either
        ``infer_between(given, other)`` or ``infer_between(other, given)``
        produces a conclusion; ``given`` itself is excluded (the engine handles
        self-superposition separately).
        """
        candidates: Bucket = {}
        production = self._order.production(given)
        if production is not None:
            big = production[0]
            # ``given`` as the rewriting premise: partners carrying ``big`` in
            # a selected literal or in their own maximal equation.
            bucket = self._gamma_occ.get(big)
            if bucket:
                candidates.update(bucket)
            bucket = self._maxeq_occ.get(big)
            if bucket:
                candidates.update(bucket)
        # Partners rewriting *into* ``given``: productive actives whose larger
        # side occurs at a rewritable position of ``given``.
        relevant: Iterable[Const]
        if given.gamma:
            relevant_set = set()
            for atom in given.gamma:
                relevant_set.add(atom.left)
                relevant_set.add(atom.right)
            relevant = relevant_set
        elif production is not None:
            equation = production[2]
            relevant = (equation.left, equation.right)
        else:
            relevant = ()
        for constant in relevant:
            bucket = self._productive_by_big.get(constant)
            if bucket:
                candidates.update(bucket)
        candidates.pop(id(given), None)
        sequence = self._seq
        return [
            clause
            for _, clause in sorted(
                ((sequence[key], clause) for key, clause in candidates.items())
            )
        ]
