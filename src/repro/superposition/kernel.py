"""The dense integer clause kernel of the saturation core.

The pure fragment is ground equational logic over a small, per-problem
constant vocabulary — exactly the setting where SMT-style solvers win by
trading symbolic objects for dense integers.  This module is that trade for
the saturation engine: everything inside the given-clause loop becomes
arithmetic and small-int dictionary traffic, and symbolic ``Clause`` objects
exist only at the engine boundary.

Representation
--------------

* **Constants** are interned per problem to dense ids assigned in *ascending
  term order* (``nil`` is id 0), seeded from
  :meth:`~repro.logic.ordering.TermOrder.known_constants`.  Because the id
  order realises the precedence, ``TermOrder.greater(a, b)`` compiles to
  ``id(a) > id(b)``.
* **Atoms** are packed into one int ``(big << 16) | small`` with
  ``big >= small`` in id order.  Orientation (``orient``) is two shifts,
  triviality is ``big == small``, and — because the positive-literal measure
  ``{x, y}`` compares exactly like the descending pair ``(x, y)`` — the
  *positive literal ordering is integer comparison of atom codes*.  The same
  holds for negative literals among themselves (their measure
  ``{x, x, y, y}`` is pair comparison doubled), which is all the kernel ever
  needs: maximality questions only arise inside ``delta``.
* **Clauses** are pairs of ascending-sorted tuples of atom codes, interned
  per engine into :class:`IntClause` records that precompute everything the
  loop reads per visit: literal frozensets and feature bitmasks for
  subsumption, the productive (strictly maximal, orientable) equation, the
  leftover ``delta`` of a production, and the canonical presentation order of
  both sides.

Equivalence
-----------

The kernel path derives **byte-identical clauses in identical order** to the
symbolic engine (``use_kernel=False``), which is itself pinned against the
seed algorithm via ``ProverConfig.reference()``.  Three facts carry the pin:

1. id order realises the term order, so all ordering-gated side conditions
   (orientation, strict maximality, production) agree literal-for-literal;
2. inference *emission* order is canonical on both sides — the calculus
   iterates ``sorted_gamma()``/``sorted_delta()`` and the kernel iterates the
   precomputed presentation-ranked tuples, which sort identically because
   presentation ranks are order-isomorphic to the atom sort keys;
3. the passive queue orders by ``(weight, tick)`` only, and ticks are handed
   out in the same enqueue sequence.

``tests/test_kernel.py`` pins all of this over the equivalence corpus, plus
a hypothesis round-trip property for the encoding itself.

The **unit-rewrite** layer (``use_unit_rewrite``) sits on top: a union-find
over dense constant ids absorbs every activated unit positive equality,
forward-simplifies (demodulates) clauses before they are processed, and
**backward-demodulates** the active set whenever a union actually merges two
classes — only actives whose constant bitmask intersects the ids the merge
touched are rewritten, and a clause whose union-find generation stamp is
unchanged since its enqueue-time demodulation skips the second pass at pop.
The absorbed unit equalities themselves are never demodulated away: they
carry the equality into the clause set the model generator reads.  This
*changes the derivation sequence* — it is a genuine simplification, not a
representation change — so it is gated separately and pinned only for
verdict equivalence (differential fuzzer + enumeration oracle), never for
derivation equivalence.

The **bitset subsumption** path (``use_bitset``) re-expresses the literal
subset checks of subsumption as big-int bitmask tests: every distinct atom
code is assigned a slot in a per-engine table on first use, each clause's
``gamma``/``delta`` become one Python int with one bit per literal, and
``candidate ⊆ clause`` compiles to ``cand & q == cand``.  The slot map is
injective, so the tests are *exact* — same answers, byte-identical
derivations, pinned by the ``{kernel} x {index} x {bitset}`` matrix tests.
Bucket scans additionally take a numpy bulk path (one vectorised
``rows & ~q == 0`` over a cached per-bucket matrix) once a bucket is large
enough to amortise the packing.
"""

from __future__ import annotations

import heapq
import itertools
import time
from bisect import bisect_left
from collections.abc import Mapping as _MappingBase
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.logic.atoms import EqAtom
from repro.logic.clauses import Clause
from repro.logic.intern import intern_atom
from repro.logic.ordering import TermOrder
from repro.logic.terms import Const

try:  # pragma: no cover - import guard; the container ships numpy
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

__all__ = [
    "SHIFT",
    "DenseEncoder",
    "IntClause",
    "IntClauseIndex",
    "IntSaturationCore",
]

#: Bits reserved for the smaller side of an atom code.  2**16 constants per
#: problem is far beyond anything the fragment produces (Table 1 tops out
#: near two dozen); the encoder raises if a problem ever exceeds it.
SHIFT = 16
_MASK = (1 << SHIFT) - 1

#: Tag bit distinguishing a ``delta``-side owner key from a ``gamma``-side
#: one in the forward-subsumption index (atom codes fit in 2*SHIFT bits).
_FWD_DELTA = 1 << (2 * SHIFT)

#: Width of the literal feature bitmasks (a prime keeps the ``code % width``
#: buckets well spread for the arithmetic progressions atom codes form).
_FEATURE_BITS = 61

#: Bucket size at which the bitset path switches a subsumption scan to the
#: numpy bulk kernel.  Packing the query row and dispatching the ufunc chain
#: costs ~10µs per query while a memoised big-int subset compare costs well
#: under 100ns per candidate, so vectorisation only amortises on genuinely
#: large buckets (threshold swept on the Table 1 n=20 row, see
#: PERFORMANCE.md).
_BULK_THRESHOLD = 256


class IntClause:
    """One interned dense clause: sorted code tuples plus precomputed features.

    Instances are unique per (engine, ``gamma``, ``delta``) — the encoder's
    intern table guarantees it — so identity comparison *is* clause equality
    and the engine stores its per-clause state (``seen``/``in_active``/
    ``in_passive``) as plain attributes instead of set memberships.
    """

    __slots__ = (
        "gamma",
        "delta",
        "gamma_set",
        "delta_set",
        "gmask",
        "dmask",
        "weight",
        "is_empty",
        "is_tautology",
        "production",
        "rest_delta",
        "rest_set",
        "const_ids",
        "gamma_pres",
        "delta_pres",
        "sort_key",
        "fwd_key",
        "cmask",
        "gbits",
        "dbits",
        "ordinal",
        "seen",
        "in_active",
        "in_passive",
        "uf_gen",
        "absorbed_unit",
        "decoded",
    )

    gamma: Tuple[int, ...]
    delta: Tuple[int, ...]
    production: Optional[Tuple[int, int, int]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "IntClause(gamma={}, delta={})".format(self.gamma, self.delta)


def _trivial(code: int) -> bool:
    return (code >> SHIFT) == (code & _MASK)


def _pack(a: int, b: int) -> int:
    """The canonical atom code for the unordered id pair ``{a, b}``."""
    if a >= b:
        return (a << SHIFT) | b
    return (b << SHIFT) | a


#: Shared empty literal set — a large fraction of clauses have an empty side.
_EMPTY_SET: frozenset = frozenset()


def _sets_of(clause: IntClause) -> Tuple[frozenset, frozenset]:
    """The clause's literal frozensets (lazy, memoised).

    Only the subsumption checks read these, and most enqueued clauses die
    (tautology, subsumed, never popped) before ever being queried, so the
    sets are not worth building in ``_fill``.
    """
    gs = clause.gamma_set
    if gs is None:
        gs = frozenset(clause.gamma) if clause.gamma else _EMPTY_SET
        clause.gamma_set = gs
        clause.delta_set = frozenset(clause.delta) if clause.delta else _EMPTY_SET
    return gs, clause.delta_set


def _cmask_of(clause: IntClause) -> int:
    """The clause's constant bitmask — bit ``i`` set iff id ``i`` occurs.

    Lazy and memoised like the other derived fields (reset on an encoder
    rebuild, where ids change meaning).  The unit-rewrite layer intersects it
    with the union-find's touched-id mask to skip demodulating clauses that
    cannot possibly be rewritten, and the dense model generator uses it to
    key its per-constant verification neighbourhoods.
    """
    mask = clause.cmask
    if mask is None:
        mask = 0
        for code in clause.gamma:
            mask |= (1 << (code >> SHIFT)) | (1 << (code & _MASK))
        for code in clause.delta:
            mask |= (1 << (code >> SHIFT)) | (1 << (code & _MASK))
        clause.cmask = mask
    return mask


class DenseEncoder:
    """Per-problem dense interning of constants, atoms and clauses.

    Parameters
    ----------
    order:
        The problem's term ordering; its ranked constants seed the id space.
    on_rebuild:
        Called with the old-id -> new-id mapping whenever a late-registered
        constant forces a renumbering (see :meth:`register_constants`).  The
        owning engine uses it to refresh id-keyed state (index buckets, the
        unit-rewrite union-find).
    """

    def __init__(
        self,
        order: TermOrder,
        on_rebuild: Optional[Callable[[List[int]], None]] = None,
    ):
        self._order = order
        self._on_rebuild = on_rebuild
        self.rebuilds = 0
        self._consts: List[Const] = []
        self._const_id: Dict[Const, int] = {}
        #: Per-id rank of the constant's *name* in plain string order — the
        #: presentation order ``EqAtom.sort_key`` realises.  Kept alongside
        #: the term-order ids so canonical iteration order is integer sorting.
        self._name_rank: List[int] = []
        self._atom_code: Dict[EqAtom, int] = {}
        self._atom_of: Dict[int, EqAtom] = {}
        self._pres: Dict[int, int] = {}
        self._clauses: Dict[Tuple[int, ...], IntClause] = {}
        self._clause_of: Dict[Clause, IntClause] = {}
        self._ordinal = itertools.count()
        self._seed(order.known_constants())

    # -- vocabulary ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._consts)

    def constants(self) -> Tuple[Const, ...]:
        """The vocabulary in id order (ascending term order)."""
        return tuple(self._consts)

    def const_id(self, constant: Const) -> int:
        """The dense id of a registered constant."""
        return self._const_id[constant]

    def const_of(self, identifier: int) -> Const:
        """The constant a dense id denotes (inverse of :meth:`const_id`)."""
        return self._consts[identifier]

    def _seed(self, constants: Iterable[Const]) -> None:
        self._consts = list(constants)
        if len(self._consts) > _MASK:
            raise ValueError(
                "the dense kernel supports at most {} constants per problem".format(_MASK)
            )
        self._const_id = {c: i for i, c in enumerate(self._consts)}
        by_name = sorted(range(len(self._consts)), key=lambda i: self._consts[i].name)
        self._name_rank = [0] * len(self._consts)
        for rank, index in enumerate(by_name):
            self._name_rank[index] = rank

    def register_constants(self, constants: Iterable[Const]) -> None:
        """Make sure every given constant has a dense id.

        Appending preserves both invariants (id order = term order, name-rank
        order = name order) only when the newcomer sorts above everything
        already registered on *both* orders; otherwise the whole id space is
        renumbered and every interned object is re-encoded in place.  In the
        prover's flow the vocabulary is fully known at engine construction
        (``default_order`` ranks every constant of the entailment), so the
        rebuild path only ever triggers for direct engine use.
        """
        fresh = [c for c in constants if c not in self._const_id]
        if not fresh:
            return
        fresh.sort(key=self._order.key)
        key = self._order.key
        monotone = True
        if self._consts:
            last_key = key(self._consts[-1])
            last_name = max(c.name for c in self._consts)
            for constant in fresh:
                if key(constant) <= last_key or constant.name <= last_name:
                    monotone = False
                    break
                last_key = key(constant)
                last_name = constant.name
        if monotone:
            for constant in fresh:
                self._const_id[constant] = len(self._consts)
                self._consts.append(constant)
                self._name_rank.append(len(self._name_rank))
            if len(self._consts) > _MASK:
                raise ValueError(
                    "the dense kernel supports at most {} constants per problem".format(
                        _MASK
                    )
                )
            return
        self._rebuild(fresh)

    def _rebuild(self, fresh: List[Const]) -> None:
        old_consts = self._consts
        self._seed(sorted(old_consts + fresh, key=self._order.key))
        remap = [self._const_id[c] for c in old_consts]
        # Atom- and clause-level caches are keyed by codes, which just
        # changed meaning: re-encode every interned object *in place* so all
        # references held by the engine (active list, passive heap,
        # derivation records) stay valid.
        self._atom_code = {}
        self._atom_of = {}
        self._pres = {}
        clauses = list(self._clauses.values())
        self._clauses = {}
        for clause in clauses:
            gamma = tuple(
                sorted(
                    _pack(remap[code >> SHIFT], remap[code & _MASK])
                    for code in clause.gamma
                )
            )
            delta = tuple(
                sorted(
                    _pack(remap[code >> SHIFT], remap[code & _MASK])
                    for code in clause.delta
                )
            )
            self._fill(clause, gamma, delta)
            self._clauses[(gamma, delta)] = clause
        self.rebuilds += 1
        if self._on_rebuild is not None:
            self._on_rebuild(remap)

    # -- atoms ---------------------------------------------------------------
    def atom_code(self, atom: EqAtom) -> int:
        """The packed code of an equality atom (its constants must be registered)."""
        code = self._atom_code.get(atom)
        if code is None:
            code = _pack(self._const_id[atom.left], self._const_id[atom.right])
            self._atom_code[atom] = code
            self._atom_of.setdefault(code, atom)
        return code

    def atom_of(self, code: int) -> EqAtom:
        """The interned :class:`EqAtom` a code denotes."""
        atom = self._atom_of.get(code)
        if atom is None:
            atom = intern_atom(self._consts[code >> SHIFT], self._consts[code & _MASK])
            self._atom_of[code] = atom
        return atom

    def pres_key(self, code: int) -> int:
        """The packed presentation rank of an atom code.

        Sorting codes by this key is exactly sorting the decoded atoms by
        ``EqAtom.sort_key``: the key is the name-rank pair in the atom's
        canonical presentation order (``nil`` last, otherwise by name).
        """
        key = self._pres.get(code)
        if key is None:
            big, small = code >> SHIFT, code & _MASK
            nb, ns = self._name_rank[big], self._name_rank[small]
            if small == 0 and big != 0:
                # nil (id 0) is presented last regardless of its name rank.
                key = (nb << SHIFT) | ns
            elif nb <= ns:
                key = (nb << SHIFT) | ns
            else:
                key = (ns << SHIFT) | nb
            self._pres[code] = key
        return key

    # -- clauses -------------------------------------------------------------
    def intern(self, gamma: Tuple[int, ...], delta: Tuple[int, ...]) -> IntClause:
        """The unique :class:`IntClause` for two ascending-sorted code tuples."""
        key = (gamma, delta)
        clause = self._clauses.get(key)
        if clause is None:
            clause = IntClause()
            self._fill(clause, gamma, delta)
            clause.ordinal = next(self._ordinal)
            clause.seen = False
            clause.in_active = False
            clause.in_passive = False
            clause.uf_gen = -1
            clause.absorbed_unit = False
            clause.decoded = None
            self._clauses[key] = clause
        return clause

    def _fill(self, clause: IntClause, gamma: Tuple[int, ...], delta: Tuple[int, ...]) -> None:
        """(Re)compute every derived field from the code tuples."""
        clause.gamma = gamma
        clause.delta = delta
        # Literal frozensets serve only the subsumption checks; fill them
        # lazily (see ``_sets_of``) — most enqueued clauses never get there.
        clause.gamma_set = None
        clause.delta_set = None
        # The clause's owner key in the forward-subsumption index: its
        # minimal literal (tuples are ascending), gamma side preferred.
        if gamma:
            clause.fwd_key = gamma[0]
        elif delta:
            clause.fwd_key = _FWD_DELTA | delta[0]
        else:
            clause.fwd_key = -1
        # Feature bitmasks serve only the pre-index linear subsumption scans;
        # fill them lazily (see ``_masks_of``) so the indexed steady state
        # never pays for them.
        clause.gmask = None
        clause.dmask = None
        clause.weight = len(gamma) + len(delta)
        clause.is_empty = not gamma and not delta
        tautology = False
        for code in delta:
            if (code >> SHIFT) == (code & _MASK):
                tautology = True
                break
        if not tautology and gamma and delta:
            # Both tuples are ascending, so disjointness is a two-pointer
            # walk — no set allocation on this per-distinct-clause path.
            i = j = 0
            len_g, len_d = len(gamma), len(delta)
            while i < len_g and j < len_d:
                a, b = gamma[i], delta[j]
                if a == b:
                    tautology = True
                    break
                if a < b:
                    i += 1
                else:
                    j += 1
        clause.is_tautology = tautology
        clause.production = None
        clause.rest_delta = ()
        # Lazy caches over the production remainder and the cmask-derived
        # constant ids (the latter change meaning on a rebuild, like cmask).
        clause.rest_set = None
        clause.const_ids = None
        if not gamma and delta:
            # delta is ascending in atom-code order, which *is* the positive
            # literal ordering, so the last code is the maximal equation; it
            # is strictly maximal because distinct atoms have distinct codes.
            top = delta[-1]
            big, small = top >> SHIFT, top & _MASK
            if big != small:
                clause.production = (big, small, top)
                clause.rest_delta = delta[:-1]
        # Presentation-ordered views and the clause sort key are only needed
        # once a clause actually participates in an inference / reaches the
        # model generator; most enqueued clauses are discarded (tautology,
        # subsumed) before that, so they are filled lazily (see
        # ``gamma_pres_of``/``delta_pres_of``/``sort_key_of``).
        clause.gamma_pres = None
        clause.delta_pres = None
        clause.sort_key = None
        # Id-derived masks and slot bitsets change meaning on a rebuild, so
        # they are reset here (lazy like the rest; see ``_cmask_of`` and the
        # engine's ``_bits_of``).
        clause.cmask = None
        clause.gbits = None
        clause.dbits = None

    def gamma_pres_of(self, clause: IntClause) -> Tuple[int, ...]:
        """``gamma`` in canonical presentation order (lazy, memoised)."""
        pres = clause.gamma_pres
        if pres is None:
            pres = tuple(sorted(clause.gamma, key=self.pres_key))
            clause.gamma_pres = pres
        return pres

    def delta_pres_of(self, clause: IntClause) -> Tuple[int, ...]:
        """``delta`` in canonical presentation order (lazy, memoised)."""
        pres = clause.delta_pres
        if pres is None:
            pres = tuple(sorted(clause.delta, key=self.pres_key))
            clause.delta_pres = pres
        return pres

    @staticmethod
    def sort_key_of(clause: IntClause) -> Tuple[int, ...]:
        """The clause's measuring multiset as a tuple of packed literal ints.

        Each literal becomes ``(big << 17) | (negative << 16) | small`` —
        exactly the literal ordering (a negative literal outranks the
        positive literal over the same atom, everything else is decided by
        the oriented sides) — and the clause key is the descending sort.
        Comparing two such tuples reproduces
        :meth:`~repro.logic.ordering.TermOrder.clause_sort_key`'s multiset
        extension verbatim, including the injectivity the incremental model
        generator relies on, at integer-compare cost.
        """
        key = clause.sort_key
        if key is None:
            literals = [
                (code >> SHIFT << (SHIFT + 1)) | (1 << SHIFT) | (code & _MASK)
                for code in clause.gamma
            ]
            literals.extend(
                (code >> SHIFT << (SHIFT + 1)) | (code & _MASK)
                for code in clause.delta
            )
            literals.sort(reverse=True)
            key = tuple(literals)
            clause.sort_key = key
        return key

    def encode_clause(self, clause: Clause) -> IntClause:
        """The dense form of a pure clause (faithful — no simplification)."""
        encoded = self._clause_of.get(clause)
        if encoded is not None:
            return encoded
        self.register_constants(clause.constants())
        atom_code = self.atom_code
        gamma = tuple(sorted(atom_code(atom) for atom in clause.gamma))
        delta = tuple(sorted(atom_code(atom) for atom in clause.delta))
        encoded = self.intern(gamma, delta)
        if encoded.decoded is None:
            encoded.decoded = clause
        self._clause_of[clause] = encoded
        return encoded

    def lookup_clause(self, clause: Clause) -> Optional[IntClause]:
        """The dense form of ``clause`` if it is already interned, else ``None``.

        Never mutates the encoder — safe for read-only mapping views.
        """
        hit = self._clause_of.get(clause)
        if hit is not None:
            return hit
        const_id = self._const_id
        try:
            gamma = tuple(
                sorted(
                    _pack(const_id[atom.left], const_id[atom.right])
                    for atom in clause.gamma
                )
            )
            delta = tuple(
                sorted(
                    _pack(const_id[atom.left], const_id[atom.right])
                    for atom in clause.delta
                )
            )
        except KeyError:
            return None
        return self._clauses.get((gamma, delta))

    def decode(self, clause: IntClause) -> Clause:
        """The symbolic :class:`Clause` a dense clause denotes (memoised).

        The memo lives on the :class:`IntClause` — per engine, per problem —
        so decoded clauses die with the encoder instead of accumulating in a
        process-global table across a long-lived batch or fuzzing run.
        """
        decoded = clause.decoded
        if decoded is None:
            atom_of = self.atom_of
            decoded = Clause(
                frozenset(atom_of(code) for code in clause.gamma),
                frozenset(atom_of(code) for code in clause.delta),
                None,
                True,
            )
            clause.decoded = decoded
        return decoded


class IntClauseIndex:
    """The dense mirror of :class:`~repro.superposition.index.ClauseIndex`.

    Same occurrence-map design (see that module's docstring for the query
    reasoning), but buckets are keyed by atom codes / constant ids and by the
    clause's intern ordinal, and the production facts come precomputed off
    the :class:`IntClause` instead of through the ordering's memo table.

    With ``bits_of``/``slot_count`` wired in (the engine's bitset mode), the
    subsumption queries test slot bitsets — ``cand & q == cand`` — instead of
    frozenset containment; large buckets additionally keep a cached numpy
    matrix of candidate rows so one vectorised compare answers the whole
    bucket.  The bitset answers are exact (the slot map is injective), so the
    two modes return identical results.
    """

    def __init__(
        self,
        bits_of: Optional[Callable[["IntClause"], Tuple[int, int]]] = None,
        slot_count: Optional[Callable[[], int]] = None,
    ) -> None:
        self._tick = itertools.count()
        self._seq: Dict[int, int] = {}
        self._neg_occ: Dict[int, Dict[int, IntClause]] = {}
        self._pos_occ: Dict[int, Dict[int, IntClause]] = {}
        #: Forward-subsumption buckets: each clause appears under exactly ONE
        #: key — its minimal literal (``fwd_key``).  A subsumer's literals
        #: all occur in the query, so its owner literal is a query literal:
        #: scanning the query's owner buckets visits every possible subsumer
        #: exactly once, where the occurrence buckets would re-check a
        #: candidate once per shared literal.
        self._fwd_occ: Dict[int, Dict[int, IntClause]] = {}
        self._gamma_occ: Dict[int, Dict[int, IntClause]] = {}
        self._maxeq_occ: Dict[int, Dict[int, IntClause]] = {}
        self._productive_by_big: Dict[int, Dict[int, IntClause]] = {}
        self._bits_of = bits_of
        self._slot_count = slot_count
        #: (side, code) -> (candidate-row matrix, candidate snapshot, word
        #: count).  The snapshot is a *prefix* of the bucket in insertion
        #: order: additions never invalidate it (queries scan the tail
        #: scalarly and the matrix is rebuilt once the tail outgrows the
        #: snapshot — geometric, so amortised O(1) row encodes per add);
        #: removals drop the entry, since they can evict prefix members.
        #: Bitset mode only.
        self._bulk_cache: Dict[Tuple[int, int], Tuple[object, List[IntClause], int]] = {}

    def __len__(self) -> int:
        return len(self._seq)

    def add(self, clause: IntClause) -> None:
        key = clause.ordinal
        if key in self._seq:
            return
        self._seq[key] = next(self._tick)
        for code in clause.gamma:
            self._neg_occ.setdefault(code, {})[key] = clause
            self._gamma_occ.setdefault(code >> SHIFT, {})[key] = clause
            self._gamma_occ.setdefault(code & _MASK, {})[key] = clause
        for code in clause.delta:
            self._pos_occ.setdefault(code, {})[key] = clause
        fwd = clause.fwd_key
        if fwd >= 0:
            self._fwd_occ.setdefault(fwd, {})[key] = clause
        production = clause.production
        if production is not None:
            big, small, equation = production
            self._productive_by_big.setdefault(big, {})[key] = clause
            self._maxeq_occ.setdefault(big, {})[key] = clause
            if small != big:
                self._maxeq_occ.setdefault(small, {})[key] = clause

    def remove(self, clause: IntClause) -> None:
        key = clause.ordinal
        if self._seq.pop(key, None) is None:
            return
        bulk = self._bulk_cache if self._bits_of is not None else None
        for code in clause.gamma:
            self._discard(self._neg_occ, code, key)
            self._discard(self._gamma_occ, code >> SHIFT, key)
            self._discard(self._gamma_occ, code & _MASK, key)
            if bulk:
                bulk.pop((0, code), None)
        for code in clause.delta:
            self._discard(self._pos_occ, code, key)
            if bulk:
                bulk.pop((1, code), None)
        fwd = clause.fwd_key
        if fwd >= 0:
            self._discard(self._fwd_occ, fwd, key)
            if bulk:
                bulk.pop((2, fwd), None)
        production = clause.production
        if production is not None:
            big, small, _ = production
            self._discard(self._productive_by_big, big, key)
            self._discard(self._maxeq_occ, big, key)
            if small != big:
                self._discard(self._maxeq_occ, small, key)

    @staticmethod
    def _discard(index: Dict[int, Dict[int, IntClause]], index_key: int, clause_key: int) -> None:
        bucket = index.get(index_key)
        if bucket is not None:
            bucket.pop(clause_key, None)
            if not bucket:
                del index[index_key]

    # -- queries -------------------------------------------------------------
    def is_subsumed(self, clause: IntClause) -> bool:
        # Forward queries go through the single-owner buckets (see
        # ``_fwd_occ``): a subsumer's minimal literal is one of the query's
        # literals, so the query's owner buckets cover every candidate and
        # each candidate is tested at most once.  No bitmask prefilter here:
        # every candidate already shares a literal with the query, so the
        # C-level subset checks on small int frozensets beat an extra pair
        # of mask tests (measured; the masks stay on the pre-index linear
        # path, where candidates are arbitrary).
        fwd_occ = self._fwd_occ
        bits_of = self._bits_of
        if bits_of is not None:
            qg, qd = bits_of(clause)
            for side_bit, codes in ((0, clause.gamma), (_FWD_DELTA, clause.delta)):
                for code in codes:
                    bucket = fwd_occ.get(side_bit | code)
                    if not bucket:
                        continue
                    candidates = bucket.values()
                    if _np is not None and len(bucket) >= _BULK_THRESHOLD:
                        matrix, prefix, words = self._bulk_entry(
                            2, side_bit | code, bucket
                        )
                        row = self._bulk_query_row(qg, qd, words)
                        if bool(((matrix & ~row) == 0).all(axis=1).any()):
                            return True
                        # Additions since the snapshot sit past the prefix in
                        # insertion order; scan just that tail scalarly.
                        candidates = itertools.islice(candidates, len(prefix), None)
                    for candidate in candidates:
                        # Inline the memoised-bits fast path: one attribute
                        # read per candidate instead of a function call.
                        cg = candidate.gbits
                        if cg is None:
                            cg, cd = bits_of(candidate)
                        else:
                            cd = candidate.dbits
                        if cg & qg == cg and cd & qd == cd:
                            return True
            return False
        gamma_set, delta_set = _sets_of(clause)
        for side_bit, codes in ((0, clause.gamma), (_FWD_DELTA, clause.delta)):
            for code in codes:
                bucket = fwd_occ.get(side_bit | code)
                if not bucket:
                    continue
                for candidate in bucket.values():
                    cg = candidate.gamma_set
                    if cg is None:
                        cg, cd = _sets_of(candidate)
                    else:
                        cd = candidate.delta_set
                    if cg <= gamma_set and cd <= delta_set:
                        return True
        return False

    def subsumed_by(self, clause: IntClause) -> List[IntClause]:
        smallest: Optional[Dict[int, IntClause]] = None
        smallest_key: Optional[Tuple[int, int]] = None
        for side, codes, occ in (
            (0, clause.gamma, self._neg_occ),
            (1, clause.delta, self._pos_occ),
        ):
            for code in codes:
                bucket = occ.get(code)
                if bucket is None:
                    return []
                if smallest is None or len(bucket) < len(smallest):
                    smallest = bucket
                    smallest_key = (side, code)
        if smallest is None:
            return []
        bits_of = self._bits_of
        if bits_of is not None:
            qg, qd = bits_of(clause)
            victims: List[IntClause] = []
            candidates = smallest.values()
            if _np is not None and len(smallest) >= _BULK_THRESHOLD:
                matrix, prefix, words = self._bulk_entry(
                    smallest_key[0], smallest_key[1], smallest
                )
                if (qg >> (words * 64)) or (qd >> (words * 64)):
                    # The query uses a slot no snapshot candidate has, so no
                    # prefix row can contain it; the tail still can.
                    pass
                else:
                    row = self._bulk_query_row(qg, qd, words)
                    hits = ((~matrix & row) == 0).all(axis=1)
                    victims.extend(prefix[i] for i in _np.nonzero(hits)[0])
                # Prefix victims come first and the tail is scanned in
                # insertion order, so the combined list matches the scalar
                # path's bucket order.
                candidates = itertools.islice(candidates, len(prefix), None)
            for candidate in candidates:
                cg = candidate.gbits
                if cg is None:
                    cg, cd = bits_of(candidate)
                else:
                    cd = candidate.dbits
                if qg & cg == qg and qd & cd == qd:
                    victims.append(candidate)
            return victims
        gamma_set, delta_set = _sets_of(clause)
        victims = []
        for candidate in smallest.values():
            cg = candidate.gamma_set
            if cg is None:
                cg, cd = _sets_of(candidate)
            else:
                cd = candidate.delta_set
            if gamma_set <= cg and delta_set <= cd:
                victims.append(candidate)
        return victims

    # -- numpy bulk bucket scans (bitset mode only) --------------------------
    def _bulk_entry(
        self, side: int, code: int, bucket: Dict[int, IntClause]
    ) -> Tuple[object, List[IntClause], int]:
        """The cached ``(matrix, prefix, words)`` row set of one bucket.

        Rows are the snapshot candidates' ``gamma`` and ``delta`` bitsets
        side by side as little-endian uint64 words, in bucket insertion
        order.  The snapshot covers the bucket as of the build; later
        additions are the bucket's tail (scanned scalarly by the callers)
        and the matrix is rebuilt only once the tail outgrows the snapshot,
        so each clause is row-encoded O(1) times amortised.  Removals drop
        the entry via :meth:`remove` (they can evict snapshot members).
        Slot-table growth after a build is harmless — snapshot candidates
        have no bits in slots assigned later, and query rows are truncated
        to the cached width (see the callers for the containment arguments).
        """
        key = (side, code)
        entry = self._bulk_cache.get(key)
        if entry is not None and len(bucket) < 2 * len(entry[1]):
            return entry
        bits_of = self._bits_of
        candidates = list(bucket.values())
        pairs = [bits_of(candidate) for candidate in candidates]
        words = max(1, (self._slot_count() + 63) // 64)
        span = words * 8
        buffer = bytearray(2 * span * len(pairs))
        offset = 0
        for gbits, dbits in pairs:
            buffer[offset : offset + span] = gbits.to_bytes(span, "little")
            offset += span
            buffer[offset : offset + span] = dbits.to_bytes(span, "little")
            offset += span
        matrix = _np.frombuffer(bytes(buffer), dtype=_np.uint64).reshape(
            len(pairs), 2 * words
        )
        entry = (matrix, candidates, words)
        self._bulk_cache[key] = entry
        return entry

    @staticmethod
    def _bulk_query_row(qg: int, qd: int, words: int):
        """The query's bitsets as one row of ``2 * words`` uint64 words.

        Bits beyond the cached width are dropped: for the forward query they
        belong to slots no cached candidate has (``cand & ~q`` is zero there
        regardless), and the backward caller rejects such queries up front.
        """
        span = words * 8
        gb = qg.to_bytes(max(span, (qg.bit_length() + 7) // 8), "little")[:span]
        db = qd.to_bytes(max(span, (qd.bit_length() + 7) // 8), "little")[:span]
        return _np.frombuffer(gb + db, dtype=_np.uint64)

    def inference_partners(self, given: IntClause) -> List[IntClause]:
        candidates: Dict[int, IntClause] = {}
        production = given.production
        if production is not None:
            big = production[0]
            bucket = self._gamma_occ.get(big)
            if bucket:
                candidates.update(bucket)
            bucket = self._maxeq_occ.get(big)
            if bucket:
                candidates.update(bucket)
        relevant: Iterable[int]
        if given.gamma:
            relevant_set: Set[int] = set()
            for code in given.gamma:
                relevant_set.add(code >> SHIFT)
                relevant_set.add(code & _MASK)
            relevant = relevant_set
        elif production is not None:
            equation = production[2]
            relevant = (equation >> SHIFT, equation & _MASK)
        else:
            relevant = ()
        for constant in relevant:
            bucket = self._productive_by_big.get(constant)
            if bucket:
                candidates.update(bucket)
        candidates.pop(given.ordinal, None)
        # Sort the ordinals alone (a C-level key lookup per element) instead
        # of building (sequence, clause) pairs to sort.
        getter = self._seq.__getitem__
        return [candidates[key] for key in sorted(candidates, key=getter)]


class _DerivationView(_MappingBase):
    """Read-only ``Clause -> Inference`` view over the dense derivation record.

    Decoding happens lazily, per access: the benchmark configurations never
    touch derivations, and the proof-recording path walks the mapping exactly
    once, so materialising symbolic :class:`Inference` objects per generated
    clause would tax the hot path for nothing.
    """

    __slots__ = ("_core",)

    def __init__(self, core: "IntSaturationCore"):
        self._core = core

    def __len__(self) -> int:
        return len(self._core._derivations)

    def __iter__(self) -> Iterator[Clause]:
        decode = self._core._encoder.decode
        for clause in self._core._derivations:
            yield decode(clause)

    def __getitem__(self, clause: Clause):
        encoded = self._core._encoder.lookup_clause(clause)
        if encoded is None or encoded not in self._core._derivations:
            raise KeyError(clause)
        return self._core._inference_of(encoded)

    def items(self):
        inference_of = self._core._inference_of
        decode = self._core._encoder.decode
        return [
            (decode(clause), inference_of(clause)) for clause in self._core._derivations
        ]


class IntSaturationCore:
    """The given-clause loop over dense clauses.

    This is the kernel-side twin of
    :class:`~repro.superposition.saturation.SaturationEngine` — same public
    surface, same algorithm, dense representation.  The engine facade
    delegates here when the kernel is enabled; all inputs and outputs are
    symbolic :class:`Clause` objects, encoded/decoded at this boundary.
    """

    def __init__(
        self,
        order: TermOrder,
        max_clauses: int,
        use_index: bool,
        use_unit_rewrite: bool,
        index_threshold: int,
        use_bitset: bool = False,
    ):
        self.order = order
        self.max_clauses = max_clauses
        self._encoder = DenseEncoder(order, on_rebuild=self._handle_rebuild)
        self._use_bitset = use_bitset
        #: atom code -> bit slot, assigned densely on first use (bitset mode).
        self._slot: Dict[int, int] = {}
        self._index: Optional[IntClauseIndex] = self._new_index() if use_index else None
        self._index_live = False
        self._index_threshold = index_threshold
        self._active: List[IntClause] = []
        #: Min-heap of ``(packed key, clause)`` — the key is
        #: ``(weight << 40) | tick``, which orders exactly like the
        #: ``(weight, tick)`` pair (ticks are far below 2**40) while keeping
        #: heap sift comparisons single int compares.  Ticks are unique, so
        #: the clause itself is never compared.
        self._passive: List[Tuple[int, IntClause]] = []
        self._tick = itertools.count()
        #: Net membership changes of the known set (active + queued passive)
        #: since the last :meth:`drain_known_changes`: clause -> +1/-1.
        self._known_delta: Dict[IntClause, int] = {}
        self._derivations: Dict[IntClause, Tuple[str, Tuple[IntClause, ...]]] = {}
        self._refuted = False
        self._generated = 0
        #: Absolute ``time.perf_counter()`` instant after which :meth:`saturate`
        #: raises ``DeadlineExceeded`` (checked before every given clause).
        #: Armed by ``SaturationEngine.set_deadline``; ``None`` disables.
        self.deadline: Optional[float] = None
        self._unit_rewrite = use_unit_rewrite
        #: Union-find parents over dense constant ids; identity until the
        #: first unit positive equality is absorbed (``_units_absorbed``).
        self._uf: List[int] = []
        self._units_absorbed = False
        #: Bitmask of every id whose union-find representative differs from
        #: itself — a clause disjoint from it cannot be demodulated.
        self._touched_mask = 0
        #: Bumped on every *effective* union.  Clauses are stamped with the
        #: generation they were last demodulated under (``IntClause.uf_gen``),
        #: so the pop-time pass skips clauses nothing has changed for.
        self._uf_generation = 0
        self._change_feed_consumed = False

    def _new_index(self) -> IntClauseIndex:
        if self._use_bitset:
            slot = self._slot
            return IntClauseIndex(bits_of=self._bits_of, slot_count=lambda: len(slot))
        return IntClauseIndex()

    def _bits_of(self, clause: IntClause) -> Tuple[int, int]:
        """The clause's ``(gamma, delta)`` slot bitsets (lazy, memoised).

        One bit per *distinct atom code*, slots handed out densely on first
        use.  The map is injective, so bitset containment is exactly literal
        subset — unlike the hashed feature masks of :meth:`_masks_of`, these
        are decision procedures, not prefilters.
        """
        gbits = clause.gbits
        if gbits is None:
            slot = self._slot
            slot_get = slot.get
            gbits = 0
            for code in clause.gamma:
                s = slot_get(code)
                if s is None:
                    s = slot[code] = len(slot)
                gbits |= 1 << s
            dbits = 0
            for code in clause.delta:
                s = slot_get(code)
                if s is None:
                    s = slot[code] = len(slot)
                dbits |= 1 << s
            clause.gbits = gbits
            clause.dbits = dbits
        return gbits, clause.dbits

    # -- public surface (mirrors SaturationEngine) --------------------------
    @property
    def refuted(self) -> bool:
        return self._refuted

    @property
    def generated_count(self) -> int:
        return self._generated

    @property
    def derivations(self) -> Mapping[Clause, object]:
        return _DerivationView(self)

    @property
    def encoder(self) -> DenseEncoder:
        """The engine's per-problem encoder (the dense model generator's boundary)."""
        return self._encoder

    def dense_core(self) -> "IntSaturationCore":
        """This core — the dense model generator pairs with it directly."""
        return self

    def add_clauses(self, clauses: Iterable[Clause]) -> None:
        for clause in clauses:
            if not clause.is_pure:
                raise ValueError("the saturation engine only accepts pure clauses")
            encoded = self._simplify(self._encoder.encode_clause(clause))
            self._enqueue(encoded, None, ())

    def saturate(self, max_given: Optional[int] = None):
        from repro.superposition.saturation import DeadlineExceeded, SaturationResult

        processed = 0
        pop_passive = self._pop_passive
        infer_within = self._infer_within
        infer_between = self._infer_between
        is_subsumed_by_active = self._is_subsumed_by_active
        deadline = self.deadline
        clock = time.perf_counter
        while self._passive and not self._refuted:
            if max_given is not None and processed >= max_given:
                break
            if deadline is not None and clock() > deadline:
                raise DeadlineExceeded("saturation ran past its wall-clock deadline")
            given = pop_passive()
            if given is None:
                break
            processed += 1
            if self._units_absorbed:
                given = self._demodulate_given(given)
                if given is None:
                    continue
            if given.is_empty:
                self._register_active(given)
                self._refuted = True
                break
            if given.is_tautology:
                continue
            if is_subsumed_by_active(given):
                continue
            self._remove_subsumed_active(given)
            self._register_active(given)

            # Conclusions are enqueued as they are emitted — the emission
            # sequence is exactly the symbolic engine's collect-then-enqueue
            # sequence, and inference generation is side-effect free, so
            # stopping at a refutation mid-stream leaves identical state.
            given_productive = given.production is not None
            infer_within(given)
            if self._refuted:
                continue
            if self._index is not None and self._index_live:
                partners: Iterable[IntClause] = self._index.inference_partners(given)
            else:
                partners = [other for other in self._active if other is not given]
            for other in partners:
                if given_productive:
                    infer_between(given, other)
                if other.production is not None:
                    infer_between(other, given)
                if self._refuted:
                    break
            if given_productive and not self._refuted:
                infer_between(given, given)

        # Snapshot the active list now; the result's ``clauses`` then decodes
        # lazily but observes this round's state even if the engine keeps
        # saturating afterwards (matching the symbolic engine's eager tuple).
        active_snapshot = list(self._active)
        decode = self._encoder.decode

        return SaturationResult.lazy(
            lambda: tuple(decode(clause) for clause in active_snapshot),
            refuted=self._refuted,
            derivations=_DerivationView(self),
            complete=not self._passive or self._refuted,
        )

    def known_pure_clauses(self) -> Tuple[Clause, ...]:
        decode = self._encoder.decode
        active = [decode(clause) for clause in self._active]
        passive = [
            decode(clause) for _, clause in self._passive if clause.in_passive
        ]
        return tuple(active) + tuple(passive)

    def drain_known_changes(self) -> Tuple[List[Tuple[Clause, Tuple[int, ...]]], List[Tuple[Clause, Tuple[int, ...]]]]:
        """The net ``(added, removed)`` known-set changes since the last drain.

        Entries are ``(clause, dense_sort_key)`` pairs — the key orders
        clauses exactly like ``TermOrder.clause_sort_key`` (see
        :meth:`DenseEncoder.sort_key_of`), so the consumer can maintain its
        ordered structures without ever computing symbolic keys.  The first
        drain reports the entire current known set as additions.  Destructive
        — the change log is cleared — so the feed supports one consumer: the
        incremental model generator the prover pairs with this engine (see
        ``IncrementalModelGenerator.model_for_engine``).
        """
        self._change_feed_consumed = True
        decode = self._encoder.decode
        sort_key_of = self._encoder.sort_key_of
        added: List[Tuple[Clause, Tuple[int, ...]]] = []
        removed: List[Tuple[Clause, Tuple[int, ...]]] = []
        for clause, net in self._known_delta.items():
            if net > 0:
                added.append((decode(clause), sort_key_of(clause)))
            elif net < 0:
                removed.append((decode(clause), sort_key_of(clause)))
        self._known_delta.clear()
        return added, removed

    def drain_known_changes_raw(self) -> Tuple[List[IntClause], List[IntClause]]:
        """The net known-set changes as bare :class:`IntClause` records.

        The dense model generator's feed: no decoding, no key
        materialisation — the consumer orders clauses by
        :meth:`DenseEncoder.sort_key_of` on demand and symbolic objects are
        built only at the model boundary.  Same destructive single-consumer
        contract (and the same rebuild guard) as :meth:`drain_known_changes`.
        """
        self._change_feed_consumed = True
        added: List[IntClause] = []
        removed: List[IntClause] = []
        for clause, net in self._known_delta.items():
            if net > 0:
                added.append(clause)
            elif net < 0:
                removed.append(clause)
        self._known_delta.clear()
        return added, removed

    def clauses(self) -> Tuple[Clause, ...]:
        decode = self._encoder.decode
        return tuple(decode(clause) for clause in self._active)

    def is_known(self, clause: Clause) -> bool:
        encoded = self._simplify(self._encoder.encode_clause(clause))
        if self._units_absorbed:
            encoded = self._demodulate(encoded)
        if encoded.is_tautology:
            return True
        if encoded.seen:
            return True
        return self._is_subsumed_by_active(encoded)

    # -- inference rules (dense twins of SuperpositionCalculus) --------------
    def _infer_within(self, given: IntClause) -> None:
        """Equality factoring (conclusions enqueued directly).

        The symbolic rule iterates candidates in sort-key order and only the
        clause's (strictly) maximal equation survives its maximality check —
        positive keys are distinct per atom — so the dense form starts from
        the precomputed production and walks the other equations in
        presentation order.
        """
        production = given.production
        if production is None or given.gamma:
            return
        big, small, top = production
        rest = given.rest_delta
        for second in self._encoder.delta_pres_of(given):
            if second == top:
                continue
            b2, s2 = second >> SHIFT, second & _MASK
            if b2 == s2:
                continue
            if b2 == big:
                other = s2
            elif s2 == big:
                other = b2
            else:
                continue
            code = _pack(small, other)
            gamma: Tuple[int, ...] = () if (code >> SHIFT) == (code & _MASK) else (code,)
            self._enqueue(
                self._encoder.intern(gamma, rest), "equality-factoring", (given,)
            )
            if self._refuted:
                return

    def _infer_between(self, left: IntClause, right: IntClause) -> None:
        """Superposition left/right with ``left`` as the rewriting premise.

        Conclusions are enqueued directly, in emission order.
        """
        production = left.production
        if production is None:
            return
        big, small, _ = production
        left_rest = left.rest_delta
        intern = self._encoder.intern
        # Roughly half the conclusions have been interned already; probing
        # the intern table directly skips a call frame on that hot half, and
        # a conclusion that was both interned and enqueued before is a
        # complete no-op in ``_enqueue`` (the ``seen`` early-return precedes
        # the generated counter) unless absorbed units mean it must still be
        # demodulated and generation-stamped — so without them, skip the
        # call and the premise-tuple allocation outright.
        interned_get = self._encoder._clauses.get
        enqueue = self._enqueue
        skip_seen = not self._units_absorbed
        if right.gamma:
            delta: Optional[Tuple[int, ...]] = None
            for target in self._encoder.gamma_pres_of(right):
                b, s = target >> SHIFT, target & _MASK
                if b != big and s != big:
                    continue
                if delta is None:
                    # The consequent is the same for every rewritten target;
                    # build it once per premise pair, from the memoised
                    # frozensets of both sides.
                    if left_rest:
                        rest_set = left.rest_set
                        if rest_set is None:
                            rest_set = frozenset(left_rest)
                            left.rest_set = rest_set
                        _, rds = _sets_of(right)
                        delta = tuple(sorted(rest_set | rds))
                    else:
                        delta = right.delta
                # Activated clauses carry no trivial antecedent atoms (they
                # passed ``_simplify`` at enqueue), so the rewritten target is
                # the only atom equality resolution could drop here.  ``gamma``
                # is already ascending, so the conclusion's antecedent is a
                # splice — drop the target, insert the rewritten code in
                # place — done with bisect positions and C-level tuple
                # slices, not a set round-trip through ``sorted``.
                right_gamma = right.gamma
                position = bisect_left(right_gamma, target)
                stripped = right_gamma[:position] + right_gamma[position + 1 :]
                lo = small if b == big else b
                hi = small if s == big else s
                if lo == hi:
                    gamma_codes = stripped
                else:
                    code = (lo << SHIFT) | hi if lo >= hi else (hi << SHIFT) | lo
                    slot = bisect_left(stripped, code)
                    if slot < len(stripped) and stripped[slot] == code:
                        gamma_codes = stripped
                    else:
                        gamma_codes = stripped[:slot] + (code,) + stripped[slot:]
                conclusion = interned_get((gamma_codes, delta))
                if conclusion is None:
                    conclusion = intern(gamma_codes, delta)
                elif skip_seen and conclusion.seen:
                    continue
                enqueue(conclusion, "superposition-left", (left, right))
                if self._refuted:
                    return
            return
        right_production = right.production
        if right_production is None:
            return
        target = right_production[2]
        b, s = target >> SHIFT, target & _MASK
        if b != big and s != big:
            return
        code = _pack(small if b == big else b, small if s == big else s)
        delta_codes = set(left_rest)
        delta_codes.update(right.rest_delta)
        delta_codes.add(code)
        self._enqueue(
            intern((), tuple(sorted(delta_codes))), "superposition-right", (left, right)
        )

    # -- engine internals ----------------------------------------------------
    def _simplify(self, clause: IntClause) -> IntClause:
        """Equality resolution: drop trivial antecedent atoms."""
        for code in clause.gamma:
            if _trivial(code):
                break
        else:
            return clause
        gamma = tuple(code for code in clause.gamma if not _trivial(code))
        return self._encoder.intern(gamma, clause.delta)

    def _enqueue(
        self,
        clause: IntClause,
        rule: Optional[str],
        premises: Tuple[IntClause, ...],
    ) -> None:
        if self._units_absorbed:
            clause = self._demodulate(clause)
            # The stamp only matters to the demodulation-skip logic, so
            # clauses enqueued before any unit was absorbed keep their
            # intern-time ``-1`` (a stale stamp just re-demodulates).
            clause.uf_gen = self._uf_generation
        if clause.seen:
            return
        clause.seen = True
        self._generated += 1
        if self._generated > self.max_clauses:
            from repro.superposition.saturation import SaturationLimitError

            raise SaturationLimitError(
                "saturation exceeded the budget of {} clauses".format(self.max_clauses)
            )
        if rule is not None:
            self._derivations[clause] = (rule, premises)
        if clause.is_empty:
            self._register_active(clause)
            self._refuted = True
            return
        heapq.heappush(
            self._passive, ((clause.weight << 40) | next(self._tick), clause)
        )
        clause.in_passive = True
        if not clause.is_tautology:
            # ``_mark_known(clause, 1)``, inlined on the per-generated-clause
            # hot path (see that method for the tautology rationale).
            known = self._known_delta
            net = known.get(clause, 0) + 1
            if net:
                known[clause] = net
            else:
                known.pop(clause, None)

    def _mark_known(self, clause: IntClause, delta: int) -> None:
        # Tautologies never reach the model generator (it would discard them
        # on arrival), so they are not worth decoding into the change feed;
        # known_pure_clauses still reports them for the one-shot path, whose
        # validation loop does its own filtering.
        if clause.is_tautology:
            return
        net = self._known_delta.get(clause, 0) + delta
        if net:
            self._known_delta[clause] = net
        else:
            self._known_delta.pop(clause, None)

    def _pop_passive(self) -> Optional[IntClause]:
        while self._passive:
            _, clause = heapq.heappop(self._passive)
            if clause.in_passive:
                clause.in_passive = False
                if not clause.is_tautology:
                    # ``_mark_known(clause, -1)``, inlined (hot path).
                    known = self._known_delta
                    net = known.get(clause, 0) - 1
                    if net:
                        known[clause] = net
                    else:
                        known.pop(clause, None)
                return clause
        return None

    def _register_active(self, clause: IntClause) -> None:
        if clause.in_active:
            return
        clause.in_active = True
        self._mark_known(clause, 1)
        self._active.append(clause)
        if self._index is not None and not clause.is_empty:
            if self._index_live:
                self._index.add(clause)
            elif len(self._active) >= self._index_threshold:
                for active in self._active:
                    if not active.is_empty:
                        self._index.add(active)
                self._index_live = True
        if self._unit_rewrite:
            production = clause.production
            if production is not None and len(clause.delta) == 1:
                # The absorbed unit must never be demodulated away itself:
                # rewriting ``b = c`` under ``b ~ c`` trivialises it, and
                # dropping it would remove the equality from the clause set
                # the model generator reads (the union-find is engine state,
                # not part of the set).  Mark it exempt before the union so
                # the backward pass below skips it.
                clause.absorbed_unit = True
                changed = self._union(production[0], production[1])
                if changed:
                    self._backward_demodulate(changed)

    def _backward_demodulate(self, changed: int) -> None:
        """Demodulate actives invalidated by a newly absorbed unit equality.

        ``changed`` is the bitmask of ids whose representative the union just
        moved; only actives whose constant bitmask intersects it can rewrite.
        A rewritten victim leaves the active set (its demodulated form
        subsumes it given the unit) and the demodulated clause is re-enqueued
        as a ``unit-rewrite`` derivation — the ``seen`` dedup in
        :meth:`_enqueue` drops forms the engine already knows.  Sound because
        the absorbed units stay active: ``C[b]`` follows from ``C[c]`` and
        ``b = c``.
        """
        victims: List[Tuple[IntClause, IntClause]] = []
        for active in self._active:
            if active.absorbed_unit or active.is_empty:
                continue
            if _cmask_of(active) & changed == 0:
                continue
            rewritten = self._demodulate(active)
            if rewritten is not active:
                victims.append((active, rewritten))
        if not victims:
            return
        index_live = self._index is not None and self._index_live
        for active, _ in victims:
            active.in_active = False
            self._mark_known(active, -1)
            if index_live:
                self._index.remove(active)
        self._active = [active for active in self._active if active.in_active]
        for active, rewritten in victims:
            self._enqueue(rewritten, "unit-rewrite", (active,))
            if self._refuted:
                return

    @staticmethod
    def _masks_of(clause: IntClause) -> Tuple[int, int]:
        """The clause's literal feature bitmasks (lazy, memoised).

        One bit per literal hashed into a fixed-width word, per side; a
        subsumer's mask must be a submask of the subsumee's.  Used to prune
        the linear subsumption scans that run before the index goes live
        (candidates there share no literal a priori, unlike bucket hits).
        """
        gmask = clause.gmask
        if gmask is None:
            gmask = 0
            for code in clause.gamma:
                gmask |= 1 << (code % _FEATURE_BITS)
            dmask = 0
            for code in clause.delta:
                dmask |= 1 << (code % _FEATURE_BITS)
            clause.gmask = gmask
            clause.dmask = dmask
        return gmask, clause.dmask

    def _is_subsumed_by_active(self, clause: IntClause) -> bool:
        if self._index is not None and self._index_live:
            return self._index.is_subsumed(clause)
        if self._use_bitset:
            bits_of = self._bits_of
            qg, qd = bits_of(clause)
            for active in self._active:
                ag, ad = bits_of(active)
                if ag & qg == ag and ad & qd == ad:
                    return True
            return False
        gamma_set, delta_set = _sets_of(clause)
        gmask, dmask = self._masks_of(clause)
        masks_of = self._masks_of
        for active in self._active:
            agmask, admask = masks_of(active)
            if agmask & ~gmask == 0 and admask & ~dmask == 0:
                ags, ads = _sets_of(active)
                if ags <= gamma_set and ads <= delta_set:
                    return True
        return False

    def _remove_subsumed_active(self, clause: IntClause) -> None:
        if self._index is not None and self._index_live:
            victims = self._index.subsumed_by(clause)
            if victims:
                for victim in victims:
                    self._index.remove(victim)
                    victim.in_active = False
                    self._mark_known(victim, -1)
                self._active = [active for active in self._active if active.in_active]
            return
        if self._use_bitset:
            bits_of = self._bits_of
            qg, qd = bits_of(clause)
            victims = []
            for active in self._active:
                ag, ad = bits_of(active)
                if qg & ag == qg and qd & ad == qd:
                    victims.append(active)
        else:
            gamma_set, delta_set = _sets_of(clause)
            victims = []
            for active in self._active:
                ags, ads = _sets_of(active)
                if gamma_set <= ags and delta_set <= ads:
                    victims.append(active)
        if victims:
            for victim in victims:
                victim.in_active = False
                self._mark_known(victim, -1)
            self._active = [active for active in self._active if active.in_active]

    def _inference_of(self, clause: IntClause):
        from repro.superposition.calculus import Inference

        rule, premises = self._derivations[clause]
        decode = self._encoder.decode
        return Inference(
            conclusion=decode(clause),
            rule=rule,
            premises=tuple(decode(premise) for premise in premises),
        )

    def _handle_rebuild(self, remap: List[int]) -> None:
        """Refresh id-keyed engine state after the encoder renumbered ids."""
        if self._change_feed_consumed:
            # Dense sort keys already handed to a change-feed consumer would
            # silently stop agreeing with post-renumbering keys.  The prover
            # flow can never get here (the vocabulary is fixed at engine
            # construction); direct engine users must add late constants
            # before pairing a model generator.
            raise RuntimeError(
                "dense ids were renumbered after the known-change feed was "
                "consumed; register all constants before the first drain"
            )
        # Atom codes changed meaning: the slot table (and with it every
        # clause's cached bitsets, already reset by the encoder's re-fill)
        # starts over, handed out lazily against the new codes.
        self._slot.clear()
        if self._index is not None and self._index_live:
            self._index = self._new_index()
            for active in self._active:
                if not active.is_empty:
                    self._index.add(active)
        if self._uf:
            old = self._uf
            new = list(range(len(self._encoder)))
            for previous_id, parent in enumerate(old):
                root = parent
                while old[root] != root:
                    root = old[root]
                if root != previous_id:
                    new[remap[previous_id]] = remap[root]
            # remap preserves the relative order of pre-rebuild ids (the
            # rebuild sort is stable over an already-ascending list), so a
            # class's minimal-id root stays minimal after renumbering.
            self._uf = new
            self._touched_mask = 0
            for identifier, parent in enumerate(new):
                if parent != identifier:
                    self._touched_mask |= 1 << identifier

    # -- unit rewriting ------------------------------------------------------
    def _find(self, identifier: int) -> int:
        uf = self._uf
        root = identifier
        while uf[root] != root:
            root = uf[root]
        while uf[identifier] != root:
            uf[identifier], identifier = root, uf[identifier]
        return root

    def _union(self, a: int, b: int) -> int:
        """Absorb ``a = b``; returns the bitmask of ids whose normal form moved.

        A no-op union (already equivalent) returns 0.  An effective union
        repoints the larger root at the smaller — the smaller id is the
        term-order-smaller constant, so demodulation always rewrites
        downwards — which changes the representative of *every member of the
        losing class*; that member set is the returned mask, accumulated into
        ``_touched_mask`` and used to scope backward demodulation.
        """
        if not self._uf or len(self._uf) < len(self._encoder):
            self._uf.extend(range(len(self._uf), len(self._encoder)))
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return 0
        if ra > rb:
            ra, rb = rb, ra
        find = self._find
        changed = 0
        for identifier in range(len(self._uf)):
            if find(identifier) == rb:
                changed |= 1 << identifier
        self._uf[rb] = ra
        self._units_absorbed = True
        self._touched_mask |= changed
        self._uf_generation += 1
        return changed

    def _demodulate(self, clause: IntClause) -> IntClause:
        """Rewrite every constant to its union-find representative.

        Trivialised antecedent atoms are dropped on the way (equality
        resolution), trivialised consequent atoms are kept so the tautology
        check can discard the clause.  Returns the *same* object when nothing
        changes, which keeps the non-rewriting fast path allocation-free.
        """
        if len(self._uf) < len(self._encoder):
            self._uf.extend(range(len(self._uf), len(self._encoder)))
        if _cmask_of(clause) & self._touched_mask == 0:
            # No constant of the clause has a moved representative: the walk
            # below would be an identity.
            return clause
        find = self._find
        changed = False
        gamma: List[int] = []
        for code in clause.gamma:
            big, small = find(code >> SHIFT), find(code & _MASK)
            if big == small:
                changed = True
                continue
            rewritten = _pack(big, small)
            if rewritten != code:
                changed = True
            gamma.append(rewritten)
        delta: List[int] = []
        for code in clause.delta:
            big, small = find(code >> SHIFT), find(code & _MASK)
            rewritten = _pack(big, small)
            if rewritten != code:
                changed = True
            delta.append(rewritten)
        if not changed:
            return clause
        return self._encoder.intern(
            tuple(sorted(set(gamma))), tuple(sorted(set(delta)))
        )

    def _demodulate_given(self, given: IntClause) -> Optional[IntClause]:
        """Forward-simplify a given clause against the absorbed units.

        Returns ``None`` when the demodulated form is already known (it was
        processed, queued, or discarded before — either way it contributes
        nothing new), mirroring the ``seen`` dedup of :meth:`_enqueue`.

        Every clause is demodulated once at enqueue and stamped with the
        union-find generation; if no union fired since, this pop-time pass is
        provably an identity and is skipped outright.
        """
        if given.uf_gen == self._uf_generation:
            return given
        rewritten = self._demodulate(given)
        if rewritten is given:
            given.uf_gen = self._uf_generation
            return given
        rewritten.uf_gen = self._uf_generation
        if rewritten.seen:
            return None
        rewritten.seen = True
        self._generated += 1
        if self._generated > self.max_clauses:
            from repro.superposition.saturation import SaturationLimitError

            raise SaturationLimitError(
                "saturation exceeded the budget of {} clauses".format(self.max_clauses)
            )
        self._derivations[rewritten] = ("unit-rewrite", (given,))
        return rewritten
