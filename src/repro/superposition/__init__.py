"""The ground superposition calculus *I* and its model generation.

The paper reuses a standard superposition calculus (Nieuwenhuis and Rubio's
system *I*) to reason about the pure, equational part of the entailment.  The
fragment is ground and has no function symbols, so the calculus specialises to
clauses over equalities between constant symbols.  The three modules are:

* :mod:`repro.superposition.calculus` — the inference rules (superposition
  left/right, equality factoring, equality resolution) and the redundancy
  criteria (tautology deletion, subsumption);
* :mod:`repro.superposition.saturation` — an incremental given-clause
  saturation engine that also records the derivation of each clause so that
  refutations can be turned into proof trees;
* :mod:`repro.superposition.model` — the Bachmair–Ganzinger candidate-model
  construction ``Gen(S*)`` which, when the empty clause is not derivable,
  produces a convergent rewrite relation ``R`` satisfying all pure clauses
  together with the map ``g`` from rewrite edges to their generating clauses
  (Lemma 3.1 of the paper);
* :mod:`repro.superposition.rewrite` — convergent rewrite relations over
  constants and their normal forms;
* :mod:`repro.superposition.index` — the literal-occurrence / feature-vector
  clause index that turns the engine's subsumption and partner-selection
  queries into dictionary lookups;
* :mod:`repro.superposition.kernel` — the dense integer clause kernel: the
  same given-clause loop over per-problem interned integer codes, with
  symbolic clauses only at the engine boundary.
"""

from repro.superposition.calculus import SuperpositionCalculus
from repro.superposition.index import ClauseIndex
from repro.superposition.kernel import DenseEncoder, IntClauseIndex, IntSaturationCore
from repro.superposition.model import (
    EqualityModel,
    IncrementalModelGenerator,
    ModelGenerationError,
    generate_model,
)
from repro.superposition.rewrite import RewriteRelation
from repro.superposition.saturation import SaturationEngine, SaturationResult

__all__ = [
    "SuperpositionCalculus",
    "SaturationEngine",
    "SaturationResult",
    "RewriteRelation",
    "ClauseIndex",
    "DenseEncoder",
    "IntClauseIndex",
    "IntSaturationCore",
    "EqualityModel",
    "IncrementalModelGenerator",
    "ModelGenerationError",
    "generate_model",
]
