"""A bounded brute-force validity oracle.

This module is not part of the paper's system; it exists so that the test
suite can cross-validate the prover (and the baseline provers) against the
semantics on small entailments.  The enumerator exhaustively searches for a
counterexample interpretation within a bounded universe of locations:

* stacks are enumerated by considering every partition of the program
  variables into alias classes, each class mapped either to the null location
  or to a distinct fresh location;
* heaps are enumerated as arbitrary partial functions from the allocated
  candidate locations (the stack's locations plus ``extra_locations`` fresh
  anonymous ones) to any location of the universe.

The search is exponential and only suitable for entailments with a handful of
variables; the test suite keeps within those limits.  A found counterexample
is always genuine (the satisfaction check is exact).  Failure to find one only
proves validity relative to the bound, which is why tests combine this oracle
with exact checks of prover-produced counterexamples.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Tuple

from repro.logic.formula import Entailment
from repro.logic.terms import Const
from repro.semantics.heap import Cell, Heap, Loc, NIL_LOC, Stack
from repro.semantics.satisfaction import falsifies_entailment
from repro.spatial.theory import theory_of


def _partitions(items: List[Const]) -> Iterator[List[List[Const]]]:
    """Enumerate all set partitions of ``items`` (standard recursive scheme)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _partitions(rest):
        # Put ``first`` into each existing block...
        for index in range(len(partition)):
            yield partition[:index] + [[first] + partition[index]] + partition[index + 1 :]
        # ... or into a block of its own.
        yield [[first]] + partition


def _candidate_stacks(variables: List[Const]) -> Iterator[Stack]:
    """Enumerate stacks up to renaming of locations.

    Validity of an entailment is invariant under bijective renaming of
    locations, so it suffices to consider one representative stack per
    partition of the variables into alias classes, with each class optionally
    identified with ``nil``.
    """
    for partition in _partitions(variables):
        block_count = len(partition)
        # Choose which block (if any) is the nil block.
        for nil_block in range(-1, block_count):
            bindings = {}
            for index, block in enumerate(partition):
                location = NIL_LOC if index == nil_block else "l{}".format(index)
                for variable in block:
                    bindings[variable] = location
            yield Stack(bindings)


def _candidate_heaps(locations: List[Loc], fields: int = 1) -> Iterator[Heap]:
    """Enumerate all partial functions from the given locations to the universe.

    ``fields`` is the number of pointer fields per cell (the owning theory's
    :attr:`~repro.spatial.theory.SpatialTheory.cell_fields`): one-field heaps
    store bare locations, multi-field heaps store location tuples.
    """
    addresses = [location for location in locations if location != NIL_LOC]
    universe = locations
    # Each address is either unallocated (None) or stores some cell value.
    values: List[Cell] = (
        list(universe)
        if fields == 1
        else [tuple(value) for value in itertools.product(universe, repeat=fields)]
    )
    choices: List[List[Optional[Cell]]] = [[None] + values for _ in addresses]
    for assignment in itertools.product(*choices):
        cells = {
            address: value
            for address, value in zip(addresses, assignment)
            if value is not None
        }
        yield Heap(cells)


def interpretation_count(entailment: Entailment, extra_locations: int = 1) -> int:
    """Rough size of the search space :func:`enumerate_counterexample` visits.

    Used by callers (e.g. the fuzzing oracle) to refuse instances whose
    exhaustive search would be too slow.  The estimate is the heap count of
    the dominant (all-variables-distinct) stack: a universe of
    ``variables + 1 + extra_locations`` locations, every non-``nil`` one an
    address, each address unallocated or storing any of ``universe ^ fields``
    cell values.
    """
    fields = theory_of(entailment).cell_fields
    universe = len(entailment.variables()) + 1 + extra_locations
    addresses = universe - 1
    return (1 + universe**fields) ** addresses


def enumerate_counterexample(
    entailment: Entailment, extra_locations: int = 1
) -> Optional[Tuple[Stack, Heap]]:
    """Search for a counterexample within the bounded universe.

    Returns a falsifying ``(stack, heap)`` pair, or ``None`` when no
    counterexample exists within the bound.
    """
    theory = theory_of(entailment)
    variables = sorted(entailment.variables(), key=lambda c: c.name)
    for stack in _candidate_stacks(variables):
        locations = sorted(stack.locations())
        anonymous = ["a{}".format(i) for i in range(extra_locations)]
        universe = locations + anonymous
        for heap in _candidate_heaps(universe, theory.cell_fields):
            if falsifies_entailment(stack, heap, entailment, theory):
                return stack, heap
    return None


def is_valid_by_enumeration(entailment: Entailment, extra_locations: int = 1) -> bool:
    """Bounded validity check: no counterexample exists within the universe bound."""
    return enumerate_counterexample(entailment, extra_locations) is None
