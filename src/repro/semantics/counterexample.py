"""Counterexample construction (the ``c-example`` calls of Figure 3).

When the Figure 3 algorithm reaches a fixpoint without deriving the empty
clause, the completeness argument (Section 4.3) shows how to exhibit an
interpretation that satisfies the left-hand side of the entailment but not the
right-hand side:

* the *stack* is the stack ``s_R`` induced by the equality model ``R``
  (Definition 3.1): every variable is mapped to the location named after its
  ``R``-normal form;
* the *heap* starts from the candidate-model realisation of the normalised
  left-hand side formula — each basic atom realised with as few cells as the
  theory allows — and is then possibly "tweaked" along the lines of Lemma 4.4
  when the unfolding failed in one of its case-(b) situations:

  - ``next_expects_cell``: the right-hand side pins down cells where the
    left-hand side only guarantees a stretchable segment; stretching that
    segment through a fresh anonymous location keeps the left-hand side
    satisfied but breaks the right-hand side;
  - ``dangling_segment``: a right-hand segment must stop at a location that
    the left-hand side never allocates; re-routing the corresponding left-hand
    segment through that location again preserves the left side and breaks the
    right side.

The realisation and the tweaks are theory specific and live with the owning
:class:`~repro.spatial.theory.SpatialTheory`; this module supplies the stack,
orchestrates the candidates and — crucially — verifies every candidate
against the exact satisfaction relation before returning it, so a returned
counterexample is always genuine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.logic.clauses import Clause
from repro.logic.formula import Entailment
from repro.logic.terms import Const
from repro.semantics.heap import Cell, Heap, Loc, NIL_LOC, Stack, induced_stack
from repro.semantics.satisfaction import falsifies_entailment
from repro.spatial.theory import theory_of
from repro.spatial.unfolding import UnfoldingOutcome
from repro.superposition.model import EqualityModel


class CounterexampleError(RuntimeError):
    """Raised when no candidate interpretation falsifies the entailment.

    For a correct prover this never happens; the error exists so that a bug in
    the proof search surfaces as a loud failure instead of a silently wrong
    "invalid" verdict.
    """


@dataclass(frozen=True)
class Counterexample:
    """A concrete interpretation falsifying an entailment."""

    stack: Stack
    heap: Heap
    description: str = ""

    def __str__(self) -> str:
        return "stack: {}; heap: {}".format(self.stack, self.heap)


def _location_of(model: EqualityModel, constant: Const) -> Loc:
    normal = model.normal_form(constant)
    return NIL_LOC if normal.is_nil else normal.name


def build_counterexample(
    entailment: Entailment,
    model: EqualityModel,
    positive: Clause,
    outcome: Optional[UnfoldingOutcome] = None,
    verify: bool = True,
) -> Counterexample:
    """Construct (and verify) a counterexample for an invalid entailment.

    Parameters
    ----------
    entailment:
        The entailment being refuted.
    model:
        The equality model ``<R, g>`` of the final saturated pure clause set.
    positive:
        The normalised positive spatial clause ``Gamma -> Delta, Sigma_R``
        describing the left-hand heap.
    outcome:
        The failed unfolding outcome, when the refutation came from the
        unfolding fixpoint (line 14 of Figure 3); ``None`` when it came from
        the right-hand side's pure part (line 11).
    verify:
        Check each candidate against the exact semantics (recommended).
    """
    theory = theory_of(entailment, positive)
    stack = induced_stack(model.normal_form, entailment.variables())

    def locate(constant: Const) -> Loc:
        return _location_of(model, constant)

    base_cells = theory.model_heap_cells(locate, positive)

    candidates: List[Tuple[Dict[Loc, Cell], str]] = list(
        theory.counterexample_candidates(locate, base_cells, outcome)
    )
    candidates.append((base_cells, "the graph of the left-hand side"))

    if not verify:
        cells, description = candidates[0]
        return Counterexample(stack=stack, heap=Heap(cells), description=description)

    for cells, description in candidates:
        heap = Heap(cells)
        if falsifies_entailment(stack, heap, entailment, theory):
            return Counterexample(stack=stack, heap=heap, description=description)

    raise CounterexampleError(
        "no candidate interpretation falsifies the entailment {}; "
        "this indicates a bug in the proof search".format(entailment)
    )
