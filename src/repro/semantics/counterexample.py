"""Counterexample construction (the ``c-example`` calls of Figure 3).

When the Figure 3 algorithm reaches a fixpoint without deriving the empty
clause, the completeness argument (Section 4.3) shows how to exhibit an
interpretation that satisfies the left-hand side of the entailment but not the
right-hand side:

* the *stack* is the stack ``s_R`` induced by the equality model ``R``
  (Definition 3.1): every variable is mapped to the location named after its
  ``R``-normal form;
* the *heap* starts from the graph of the normalised left-hand side formula
  ``gr_R Sigma_R`` — each basic atom realised as a single cell — and is then
  possibly "tweaked" along the lines of Lemma 4.4 when the unfolding failed in
  one of its case-(b) situations:

  - ``next_expects_cell``: the right-hand side demands a single cell where the
    left-hand side only guarantees a list segment; stretching that segment
    into two cells (through a fresh anonymous location) keeps the left-hand
    side satisfied but breaks the right-hand side;
  - ``dangling_segment``: a right-hand segment must stop at a location that
    the left-hand side never allocates; re-routing the corresponding left-hand
    segment through that location again preserves the left side and breaks the
    right side.

Every candidate interpretation is verified against the exact satisfaction
relation before being returned, so a returned counterexample is always
genuine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.logic.clauses import Clause
from repro.logic.formula import Entailment
from repro.logic.terms import Const
from repro.semantics.heap import Heap, Loc, NIL_LOC, Stack, induced_stack
from repro.semantics.satisfaction import falsifies_entailment
from repro.spatial.graph import spatial_graph
from repro.spatial.unfolding import UnfoldingOutcome
from repro.superposition.model import EqualityModel


class CounterexampleError(RuntimeError):
    """Raised when no candidate interpretation falsifies the entailment.

    For a correct prover this never happens; the error exists so that a bug in
    the proof search surfaces as a loud failure instead of a silently wrong
    "invalid" verdict.
    """


@dataclass(frozen=True)
class Counterexample:
    """A concrete interpretation falsifying an entailment."""

    stack: Stack
    heap: Heap
    description: str = ""

    def __str__(self) -> str:
        return "stack: {}; heap: {}".format(self.stack, self.heap)


def _location_of(model: EqualityModel, constant: Const) -> Loc:
    normal = model.normal_form(constant)
    return NIL_LOC if normal.is_nil else normal.name


def _base_heap(model: EqualityModel, positive: Clause) -> Dict[Loc, Loc]:
    """The graph of the normalised left-hand side formula, as location cells."""
    sigma = positive.spatial
    assert sigma is not None
    graph = spatial_graph(sigma, strict=True)
    return {
        _location_of(model, source): _location_of(model, target)
        for source, target in graph.items()
    }


def _fresh_location(used: List[Loc]) -> Loc:
    index = 0
    while True:
        candidate = "anon{}".format(index)
        if candidate not in used:
            return candidate
        index += 1


def build_counterexample(
    entailment: Entailment,
    model: EqualityModel,
    positive: Clause,
    outcome: Optional[UnfoldingOutcome] = None,
    verify: bool = True,
) -> Counterexample:
    """Construct (and verify) a counterexample for an invalid entailment.

    Parameters
    ----------
    entailment:
        The entailment being refuted.
    model:
        The equality model ``<R, g>`` of the final saturated pure clause set.
    positive:
        The normalised positive spatial clause ``Gamma -> Delta, Sigma_R``
        describing the left-hand heap.
    outcome:
        The failed unfolding outcome, when the refutation came from the
        unfolding fixpoint (line 14 of Figure 3); ``None`` when it came from
        the right-hand side's pure part (line 11).
    verify:
        Check each candidate against the exact semantics (recommended).
    """
    stack = induced_stack(model.normal_form, entailment.variables())
    base_cells = _base_heap(model, positive)

    candidates: List[Tuple[Dict[Loc, Loc], str]] = []

    if outcome is not None and outcome.failure_kind == "next_expects_cell":
        assert outcome.failure_edge is not None
        source, target = outcome.failure_edge
        source_loc = _location_of(model, source)
        target_loc = _location_of(model, target)
        used = list(base_cells) + list(base_cells.values()) + [NIL_LOC]
        middle = _fresh_location(used)
        stretched = dict(base_cells)
        stretched[source_loc] = middle
        stretched[middle] = target_loc
        candidates.append(
            (
                stretched,
                "the segment lseg({}, {}) stretched into two cells".format(source, target),
            )
        )

    if outcome is not None and outcome.failure_kind == "dangling_segment":
        assert outcome.failure_edge is not None and outcome.failure_target is not None
        source, target = outcome.failure_edge
        via = outcome.failure_target
        source_loc = _location_of(model, source)
        target_loc = _location_of(model, target)
        via_loc = _location_of(model, via)
        rerouted = dict(base_cells)
        rerouted[source_loc] = via_loc
        rerouted[via_loc] = target_loc
        candidates.append(
            (
                rerouted,
                "the segment lseg({}, {}) re-routed through {}".format(source, target, via),
            )
        )

    candidates.append((base_cells, "the graph of the left-hand side"))

    if not verify:
        cells, description = candidates[0]
        return Counterexample(stack=stack, heap=Heap(cells), description=description)

    for cells, description in candidates:
        heap = Heap(cells)
        if falsifies_entailment(stack, heap, entailment):
            return Counterexample(stack=stack, heap=heap, description=description)

    raise CounterexampleError(
        "no candidate interpretation falsifies the entailment {}; "
        "this indicates a bug in the proof search".format(entailment)
    )
