"""Stack/heap semantics of the fragment and counterexample construction.

The prover's soundness and completeness are stated with respect to the
standard separation-logic semantics (Section 3.1 of the paper): an
interpretation is a pair of a *stack* (a total map from program variables to
locations) and a *heap* (a finite partial map from non-``nil`` locations to
locations).  This package provides:

* :mod:`repro.semantics.heap` — stacks, heaps and locations;
* :mod:`repro.semantics.satisfaction` — the satisfaction relation
  ``s, h |= F`` for pure literals, spatial formulas and entailments;
* :mod:`repro.semantics.enumeration` — a bounded brute-force model enumerator
  used as a ground-truth oracle in the test suite;
* :mod:`repro.semantics.counterexample` — construction of concrete
  counterexample interpretations from a failed proof attempt, following the
  completeness argument of Section 4.3.
"""

from repro.semantics.counterexample import Counterexample, CounterexampleError, build_counterexample
from repro.semantics.enumeration import enumerate_counterexample, is_valid_by_enumeration
from repro.semantics.heap import Heap, Stack, NIL_LOC
from repro.semantics.satisfaction import (
    falsifies_entailment,
    satisfies_entailment,
    satisfies_pure_literal,
    satisfies_side,
    satisfies_spatial,
)

__all__ = [
    "Stack",
    "Heap",
    "NIL_LOC",
    "satisfies_pure_literal",
    "satisfies_spatial",
    "satisfies_side",
    "satisfies_entailment",
    "falsifies_entailment",
    "is_valid_by_enumeration",
    "enumerate_counterexample",
    "Counterexample",
    "CounterexampleError",
    "build_counterexample",
]
