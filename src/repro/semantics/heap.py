"""Stacks, heaps and locations.

Locations are represented by plain strings; the distinguished string
``"nil"`` plays the role of the null location.  A *stack* maps program
variables (constants) to locations; a *heap* is a finite partial function
from non-``nil`` locations to cell values.  Both types are immutable value
objects so that interpretations can be hashed, compared and safely shared.

The cell-value shape is owned by the spatial theory interpreting the heap
(:mod:`repro.spatial.theory`): the singly-linked theory stores a bare
location per cell, theories with ``k > 1`` pointer fields store a ``k``-tuple
of locations.  The :class:`Heap` container itself is agnostic — it only
guarantees that addresses are non-``nil`` locations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple, Union

from repro.logic.terms import Const, NIL

#: The null location.
NIL_LOC = "nil"

Loc = str

#: A heap-cell value: one location per pointer field of the owning theory.
Cell = Union[Loc, Tuple[Loc, ...]]


class Stack:
    """A stack ``s: Var -> Loc+`` mapping program variables to locations.

    The evaluation function ``s^`` of the paper, which additionally maps
    ``nil`` to the null location, is provided by :meth:`evaluate`.
    """

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Mapping[Const, Loc]):
        cleaned: Dict[Const, Loc] = {}
        for variable, location in bindings.items():
            if variable.is_nil:
                raise ValueError("nil is not a program variable and cannot be bound by a stack")
            cleaned[variable] = location
        self._bindings = dict(cleaned)

    # -- basic protocol ----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Stack):
            return NotImplemented
        return self._bindings == other._bindings

    def __hash__(self) -> int:
        return hash(frozenset(self._bindings.items()))

    def __len__(self) -> int:
        return len(self._bindings)

    def __iter__(self) -> Iterator[Const]:
        return iter(sorted(self._bindings, key=lambda c: c.name))

    def __contains__(self, variable: Const) -> bool:
        return variable in self._bindings

    def __repr__(self) -> str:
        items = ", ".join(
            "{} -> {}".format(variable, self._bindings[variable]) for variable in self
        )
        return "Stack({{{}}})".format(items)

    # -- queries -----------------------------------------------------------
    @property
    def bindings(self) -> Dict[Const, Loc]:
        """The bindings as a dictionary (a copy)."""
        return dict(self._bindings)

    def evaluate(self, constant: Const) -> Loc:
        """The evaluation ``s^(x)``: ``nil`` maps to the null location."""
        if constant.is_nil:
            return NIL_LOC
        try:
            return self._bindings[constant]
        except KeyError:
            raise KeyError("the stack does not bind the variable {}".format(constant))

    def locations(self) -> FrozenSet[Loc]:
        """All locations in the range of the stack (plus the null location)."""
        return frozenset(self._bindings.values()) | {NIL_LOC}

    # -- constructive operations --------------------------------------------
    def bind(self, variable: Const, location: Loc) -> "Stack":
        """Return a stack with one binding added or replaced."""
        updated = dict(self._bindings)
        updated[variable] = location
        return Stack(updated)


class Heap:
    """A heap ``h: Loc -> Cell``: a finite partial map on non-``nil`` locations.

    Cell values are bare locations for one-field theories and location tuples
    for multi-field theories (see the module docstring).
    """

    __slots__ = ("_cells",)

    def __init__(self, cells: Mapping[Loc, Cell] = ()):
        cleaned: Dict[Loc, Cell] = {}
        for address, value in dict(cells).items():
            if address == NIL_LOC:
                raise ValueError("a heap cannot have a cell at the nil location")
            cleaned[address] = tuple(value) if isinstance(value, (tuple, list)) else value
        self._cells = cleaned

    # -- basic protocol ----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Heap):
            return NotImplemented
        return self._cells == other._cells

    def __hash__(self) -> int:
        return hash(frozenset(self._cells.items()))

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[Tuple[Loc, Loc]]:
        return iter(sorted(self._cells.items()))

    def __contains__(self, address: Loc) -> bool:
        return address in self._cells

    def __repr__(self) -> str:
        cells = ", ".join("{} -> {}".format(address, value) for address, value in self)
        return "Heap({{{}}})".format(cells)

    # -- queries -----------------------------------------------------------
    @property
    def cells(self) -> Dict[Loc, Cell]:
        """The cells as a dictionary (a copy)."""
        return dict(self._cells)

    @property
    def is_empty(self) -> bool:
        """True for the empty heap."""
        return not self._cells

    def domain(self) -> FrozenSet[Loc]:
        """The set of allocated locations."""
        return frozenset(self._cells)

    def lookup(self, address: Loc) -> Optional[Cell]:
        """The value stored at ``address``, or ``None`` if unallocated."""
        return self._cells.get(address)

    def locations(self) -> FrozenSet[Loc]:
        """All locations mentioned by the heap (domain and range, fields flattened)."""
        mentioned = set(self._cells)
        for value in self._cells.values():
            if isinstance(value, tuple):
                mentioned.update(value)
            else:
                mentioned.add(value)
        return frozenset(mentioned)

    # -- constructive operations --------------------------------------------
    def store(self, address: Loc, value: Cell) -> "Heap":
        """Return a heap with the cell at ``address`` set to ``value``."""
        updated = dict(self._cells)
        updated[address] = value
        return Heap(updated)

    def dispose(self, address: Loc) -> "Heap":
        """Return a heap with the cell at ``address`` removed."""
        if address not in self._cells:
            raise KeyError("cannot dispose unallocated location {}".format(address))
        updated = dict(self._cells)
        del updated[address]
        return Heap(updated)

    def disjoint_union(self, other: "Heap") -> "Heap":
        """The separating conjunction of two heaps (domains must be disjoint)."""
        if self.domain() & other.domain():
            raise ValueError("heaps overlap on {}".format(self.domain() & other.domain()))
        combined = dict(self._cells)
        combined.update(other._cells)
        return Heap(combined)


def fresh_location(used: Iterable[Loc]) -> Loc:
    """The first ``anonN`` location name not occurring in ``used``.

    Counterexample builders introduce these anonymous locations when
    stretching or re-routing segments (Lemma 4.4).
    """
    taken = set(used)
    index = 0
    while True:
        candidate = "anon{}".format(index)
        if candidate not in taken:
            return candidate
        index += 1


def induced_stack(normal_form_of, variables) -> Stack:
    """The stack ``s_R`` induced by a rewrite relation (Definition 3.1).

    ``normal_form_of`` is a callable mapping constants to their normal forms;
    each variable is mapped to the location named after its normal form, with
    variables equivalent to ``nil`` mapped to the null location.  Distinct
    normal forms are mapped to distinct locations, which realises the
    injection ``iota`` of the paper.
    """
    bindings: Dict[Const, Loc] = {}
    for variable in variables:
        if variable.is_nil:
            continue
        normal = normal_form_of(variable)
        bindings[variable] = NIL_LOC if normal == NIL else normal.name
    return Stack(bindings)
