"""The satisfaction relation ``s, h |= F`` (Section 3.1 of the paper).

The fragment's semantics has a pleasant property that the implementation
exploits: because a heap is a partial *function*, the sub-heap that can
satisfy any basic spatial atom is forced.  A ``next(x, y)`` atom must own
exactly the cell at ``s^(x)``; a ``lseg(x, y)`` atom must own either nothing
(when ``s^(x) = s^(y)``) or exactly the cells along the unique successor chain
from ``s^(x)`` to ``s^(y)``.  Checking ``s, h |= Sigma`` therefore requires no
search: each atom claims its forced cells and the claim must be a partition of
the heap.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.logic.atoms import ListSegment, PointsTo, SpatialFormula
from repro.logic.formula import Entailment, PureLiteral
from repro.semantics.heap import Heap, Loc, NIL_LOC, Stack


def satisfies_pure_literal(stack: Stack, literal: PureLiteral) -> bool:
    """``s |= x = y`` (or ``x != y``): compare the evaluations of the two sides."""
    left = stack.evaluate(literal.atom.left)
    right = stack.evaluate(literal.atom.right)
    return (left == right) if literal.positive else (left != right)


def satisfies_pure_literals(stack: Stack, literals: Iterable[PureLiteral]) -> bool:
    """Conjunction of pure literals."""
    return all(satisfies_pure_literal(stack, literal) for literal in literals)


def satisfies_spatial(stack: Stack, heap: Heap, sigma: SpatialFormula) -> bool:
    """``s, h |= S1 * ... * Sn``: the heap splits into portions satisfying each atom.

    The portions are forced (see the module docstring), so the check walks the
    heap claiming cells and finally verifies that every cell was claimed
    exactly once.
    """
    claimed: Set[Loc] = set()

    for atom in sigma:
        source = stack.evaluate(atom.source)
        target = stack.evaluate(atom.target)

        if isinstance(atom, PointsTo):
            if source == NIL_LOC:
                return False
            if heap.lookup(source) != target:
                return False
            if source in claimed:
                return False
            claimed.add(source)
            continue

        assert isinstance(atom, ListSegment)
        if source == target:
            continue  # the empty segment owns no cells
        current = source
        visited: Set[Loc] = set()
        while current != target:
            if current == NIL_LOC:
                return False
            if current in visited:
                return False  # a cycle that never reaches the target
            visited.add(current)
            value = heap.lookup(current)
            if value is None:
                return False
            if current in claimed:
                return False
            claimed.add(current)
            current = value

    return claimed == heap.domain()


def satisfies_side(
    stack: Stack, heap: Heap, pure: Iterable[PureLiteral], sigma: SpatialFormula
) -> bool:
    """``s, h |= Pi /\\ Sigma`` for one side of an entailment."""
    return satisfies_pure_literals(stack, pure) and satisfies_spatial(stack, heap, sigma)


def satisfies_entailment(stack: Stack, heap: Heap, entailment: Entailment) -> bool:
    """``s, h |= (Pi /\\ Sigma -> Pi' /\\ Sigma')`` for one interpretation."""
    if not satisfies_side(stack, heap, entailment.lhs_pure, entailment.lhs_spatial):
        return True
    return satisfies_side(stack, heap, entailment.rhs_pure, entailment.rhs_spatial)


def falsifies_entailment(stack: Stack, heap: Heap, entailment: Entailment) -> bool:
    """True when ``(s, h)`` is a counterexample: it satisfies the left side but not the right."""
    return satisfies_side(
        stack, heap, entailment.lhs_pure, entailment.lhs_spatial
    ) and not satisfies_side(stack, heap, entailment.rhs_pure, entailment.rhs_spatial)
