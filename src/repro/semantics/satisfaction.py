"""The satisfaction relation ``s, h |= F`` (Section 3.1 of the paper).

The fragment's semantics has a pleasant property that the implementation
exploits: because a heap is a partial *function*, the sub-heap that can
satisfy any basic spatial atom is forced.  In the singly-linked theory a
``next(x, y)`` atom must own exactly the cell at ``s^(x)`` and a
``lseg(x, y)`` atom must own either nothing (when ``s^(x) = s^(y)``) or
exactly the cells along the unique successor chain from ``s^(x)`` to
``s^(y)``; the doubly-linked atoms are forced the same way, with ``prev``
backlinks checked along the walk.  Checking ``s, h |= Sigma`` therefore
requires no search: each atom claims its forced cells and the claim must be a
partition of the heap.

The per-atom claiming rules belong to the spatial theory owning the formula's
predicates (:mod:`repro.spatial.theory`); this module dispatches to it and
keeps the theory-independent pure-literal and entailment-level relations.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.logic.atoms import SpatialFormula
from repro.logic.formula import Entailment, PureLiteral
from repro.semantics.heap import Heap, Stack
from repro.spatial.theory import SpatialTheory, theory_of


def satisfies_pure_literal(stack: Stack, literal: PureLiteral) -> bool:
    """``s |= x = y`` (or ``x != y``): compare the evaluations of the two sides."""
    left = stack.evaluate(literal.atom.left)
    right = stack.evaluate(literal.atom.right)
    return (left == right) if literal.positive else (left != right)


def satisfies_pure_literals(stack: Stack, literals: Iterable[PureLiteral]) -> bool:
    """Conjunction of pure literals."""
    return all(satisfies_pure_literal(stack, literal) for literal in literals)


def satisfies_spatial(
    stack: Stack,
    heap: Heap,
    sigma: SpatialFormula,
    theory: Optional[SpatialTheory] = None,
) -> bool:
    """``s, h |= S1 * ... * Sn``: the heap splits into portions satisfying each atom.

    The portions are forced (see the module docstring), so the owning theory
    walks the heap claiming cells and finally verifies that every cell was
    claimed exactly once.  Callers checking many interpretations of one
    formula should resolve the theory once and pass it in — it is invariant
    across interpretations.
    """
    if theory is None:
        theory = theory_of(sigma)
    return theory.satisfies_spatial(stack, heap, sigma)


def satisfies_side(
    stack: Stack,
    heap: Heap,
    pure: Iterable[PureLiteral],
    sigma: SpatialFormula,
    theory: Optional[SpatialTheory] = None,
) -> bool:
    """``s, h |= Pi /\\ Sigma`` for one side of an entailment."""
    return satisfies_pure_literals(stack, pure) and satisfies_spatial(
        stack, heap, sigma, theory
    )


def satisfies_entailment(
    stack: Stack,
    heap: Heap,
    entailment: Entailment,
    theory: Optional[SpatialTheory] = None,
) -> bool:
    """``s, h |= (Pi /\\ Sigma -> Pi' /\\ Sigma')`` for one interpretation."""
    if theory is None:
        theory = theory_of(entailment)
    if not satisfies_side(stack, heap, entailment.lhs_pure, entailment.lhs_spatial, theory):
        return True
    return satisfies_side(stack, heap, entailment.rhs_pure, entailment.rhs_spatial, theory)


def falsifies_entailment(
    stack: Stack,
    heap: Heap,
    entailment: Entailment,
    theory: Optional[SpatialTheory] = None,
) -> bool:
    """True when ``(s, h)`` is a counterexample: it satisfies the left side but not the right."""
    if theory is None:
        theory = theory_of(entailment)
    return satisfies_side(
        stack, heap, entailment.lhs_pure, entailment.lhs_spatial, theory
    ) and not satisfies_side(stack, heap, entailment.rhs_pure, entailment.rhs_spatial, theory)
