#!/usr/bin/env python3
"""Verify annotated list-manipulating programs with the SLP prover.

This example exercises the full Smallfoot-style pipeline that the paper's
Table 3 benchmark is built on:

1. programs are written in the small heap language of
   :mod:`repro.frontend.programs` and annotated with pre/postconditions and
   loop invariants;
2. the symbolic executor (:mod:`repro.frontend.symexec`) generates the
   verification conditions — entailments in the list-segment fragment;
3. each verification condition is discharged with the SLP prover.

The script verifies the whole 18-program example suite and then shows how the
prover pinpoints a genuine specification error: it plants a wrong loop
invariant into the traversal program and prints the counterexample for the
failing verification condition.

Run it with::

    python examples/program_verification.py
"""

from repro import prove
from repro.frontend import Assertion, Assign, Lookup, Procedure, While, generate_vcs
from repro.frontend.examples_suite import all_programs
from repro.logic.formula import eq, lseg, neq


def verify(procedure: Procedure) -> bool:
    """Verify one annotated procedure; print a per-VC report and return success."""
    print("verifying {:<24} ({})".format(procedure.name, procedure.description))
    conditions = generate_vcs(procedure)
    ok = True
    for condition in conditions:
        result = prove(condition.entailment)
        status = "ok " if result.is_valid else "FAIL"
        print("  [{}] {}".format(status, condition.description))
        if not result.is_valid:
            ok = False
            print("        entailment     :", condition.entailment)
            print("        counterexample :", result.counterexample)
    return ok


def buggy_traverse() -> Procedure:
    """The traversal program with a deliberately wrong loop invariant.

    The invariant forgets the already-visited prefix ``lseg(c, t)``, so the
    postcondition cannot be re-established after the loop: the prover produces
    a counterexample heap for the offending verification condition.
    """
    return Procedure(
        name="buggy_traverse",
        variables=["c", "t"],
        precondition=Assertion.of(lseg("c", "nil")),
        body=[
            Assign("t", "c"),
            While(
                neq("t", "nil"),
                Assertion.of(lseg("t", "nil")),  # wrong: drops lseg(c, t)
                [Lookup("t", "t")],
            ),
        ],
        postcondition=Assertion.of(eq("t", "nil"), lseg("c", "nil")),
        description="traversal with an invariant that loses the visited prefix",
    )


def main() -> None:
    print("== The 18-program example suite " + "=" * 44)
    failures = 0
    total = 0
    for procedure in all_programs():
        total += 1
        if not verify(procedure):
            failures += 1
    print()
    print("suite result: {}/{} procedures verified".format(total - failures, total))
    print()

    print("== A procedure with a wrong invariant " + "=" * 38)
    verify(buggy_traverse())


if __name__ == "__main__":
    main()
