#!/usr/bin/env python3
"""Verify annotated list-manipulating programs with the SLP prover.

This example exercises the full Smallfoot-style pipeline that the paper's
Table 3 benchmark is built on:

1. programs are written in the small heap language of
   :mod:`repro.frontend.programs` and annotated with pre/postconditions and
   loop invariants;
2. the symbolic executor (:mod:`repro.frontend.symexec`) generates the
   verification conditions — entailments in the list-segment fragment;
3. the verification conditions are discharged in a batch with
   :func:`repro.frontend.prove_procedure`, which routes them through the
   batch engine — alpha-equivalent obligations (loop unrollings, repeated
   memory-safety checks) are proved once and answered from the proof cache.

The script verifies the whole 18-program example suite and then shows how the
prover pinpoints a genuine specification error: it plants a wrong loop
invariant into the traversal program and prints the counterexample for the
failing verification condition.

Run it with::

    python examples/program_verification.py
"""

from repro.core.result import ProofResult
from repro.frontend import Assertion, Assign, Lookup, Procedure, While, prove_procedure
from repro.frontend.examples_suite import all_programs
from repro.frontend.verify import outcome_label
from repro.logic.formula import eq, lseg, neq


def verify(procedure: Procedure) -> bool:
    """Verify one annotated procedure; print a per-VC report and return success."""
    print("verifying {:<24} ({})".format(procedure.name, procedure.description))
    report = prove_procedure(procedure)
    for condition, result in report.results:
        decided = isinstance(result, ProofResult)
        status = "ok " if decided and result.is_valid else "FAIL"
        print("  [{}] {}".format(status, condition.description))
        if not decided:
            # Timeout, OOM or a quarantined crash: undecided, never "ok".
            print("        {} :".format(outcome_label(result)), condition.entailment)
        if decided and result.is_invalid:
            print("        entailment     :", condition.entailment)
            print("        counterexample :", result.counterexample)
    reused = report.cache_hits + report.deduplicated
    if reused:
        print("  ({} of {} VCs answered from the proof cache)".format(
            reused, len(report.results)
        ))
    return report.verified


def buggy_traverse() -> Procedure:
    """The traversal program with a deliberately wrong loop invariant.

    The invariant forgets the already-visited prefix ``lseg(c, t)``, so the
    postcondition cannot be re-established after the loop: the prover produces
    a counterexample heap for the offending verification condition.
    """
    return Procedure(
        name="buggy_traverse",
        variables=["c", "t"],
        precondition=Assertion.of(lseg("c", "nil")),
        body=[
            Assign("t", "c"),
            While(
                neq("t", "nil"),
                Assertion.of(lseg("t", "nil")),  # wrong: drops lseg(c, t)
                [Lookup("t", "t")],
            ),
        ],
        postcondition=Assertion.of(eq("t", "nil"), lseg("c", "nil")),
        description="traversal with an invariant that loses the visited prefix",
    )


def main() -> None:
    print("== The 18-program example suite " + "=" * 44)
    failures = 0
    total = 0
    for procedure in all_programs():
        total += 1
        if not verify(procedure):
            failures += 1
    print()
    print("suite result: {}/{} procedures verified".format(total - failures, total))
    print()

    print("== A procedure with a wrong invariant " + "=" * 38)
    verify(buggy_traverse())


if __name__ == "__main__":
    main()
