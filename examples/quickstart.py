#!/usr/bin/env python3
"""Quickstart: check a few entailments and print a full SI proof.

This script reproduces the worked example of Sections 2 and 5 of the paper
("Separation Logic + Superposition Calculus = Heap Theorem Prover"): it checks
the illustration entailment

    c != e /\\ lseg(a, b) * lseg(a, c) * next(c, d) * lseg(d, e)
        |-  lseg(b, c) * lseg(c, e)

prints the proof tree corresponding to Figure 4, and then shows what an
*invalid* entailment looks like — the prover returns a concrete stack/heap
counterexample.

Run it with::

    python examples/quickstart.py
"""

from repro import parse_entailment, prove


def check(text: str) -> None:
    """Check one entailment given in the textual surface syntax and report the outcome."""
    entailment = parse_entailment(text)
    result = prove(entailment)
    print("=" * 78)
    print("entailment :", entailment)
    print("verdict    :", result.verdict)
    if result.proof is not None:
        print("proof (linearised Figure 4 style):")
        print(result.proof.format())
    if result.counterexample is not None:
        print("counterexample:")
        print("   ", result.counterexample)
    stats = result.statistics
    print(
        "statistics : {} outer iteration(s), {} pure clauses generated, {:.4f}s".format(
            stats.iterations, stats.generated_clauses, stats.elapsed_seconds
        )
    )
    print()


def main() -> None:
    # The paper's running example (valid; exercises every rule group).
    check(
        "c != e /\\ lseg(a, b) * lseg(a, c) * next(c, d) * lseg(d, e)"
        " |- lseg(b, c) * lseg(c, e)"
    )

    # A list built from two cells is a null-terminated segment (valid).
    check("x |-> y * y |-> nil |- lseg(x, nil)")

    # A segment does not entail a single cell: it might be longer (invalid,
    # and the counterexample stretches the segment into two cells).
    check("lseg(x, y) |- next(x, y)")

    # Appending two segments is only sound when the junction cannot be
    # bypassed; here the end of the second segment is allocated, so it is
    # valid and needs the U4 unfolding rule.
    check("lseg(x, y) * lseg(y, z) * next(z, nil) |- lseg(x, z) * next(z, nil)")

    # The general transitivity of segments is invalid.
    check("lseg(x, y) * lseg(y, z) |- lseg(x, z)")


if __name__ == "__main__":
    main()
