#!/usr/bin/env python3
"""Explore counterexamples and the equality-model machinery behind the prover.

The completeness proof of the paper (Section 4.3) is constructive: when an
entailment is invalid, the prover exhibits a stack and a heap that satisfy the
left-hand side but not the right-hand side.  This example looks under the hood:

* it builds entailments programmatically with the typed API (no parsing),
* shows the clausal embedding ``cnf(E)``,
* shows the equality model (a convergent rewrite relation) the superposition
  engine produces for the pure part, and
* prints and *semantically re-checks* the counterexamples of a few invalid
  entailments.

Run it with::

    python examples/counterexample_explorer.py
"""

from repro import Entailment, prove
from repro.logic.cnf import cnf
from repro.logic.formula import eq, lseg, neq, pts
from repro.logic.ordering import default_order
from repro.logic.printer import format_rewrite_relation
from repro.semantics import falsifies_entailment
from repro.superposition.model import generate_model
from repro.superposition.saturation import SaturationEngine


def show_embedding(entailment: Entailment) -> None:
    """Print the clausal embedding of the negated entailment."""
    print("entailment:", entailment)
    print("cnf(E):")
    for clause in cnf(entailment):
        print("   ", clause)


def show_equality_model(entailment: Entailment) -> None:
    """Saturate the pure part and display the generated rewrite relation."""
    embedding = cnf(entailment)
    order = default_order(entailment.constants())
    engine = SaturationEngine(order)
    engine.add_clauses(embedding.pure_clauses)
    result = engine.saturate()
    if result.refuted:
        print("pure part is unsatisfiable (the entailment is valid for pure reasons)")
        return
    model = generate_model(result.clauses, order)
    print("equality model R =", format_rewrite_relation(model.relation.edges))


def explore(entailment: Entailment) -> None:
    """Prove or refute the entailment and re-check any counterexample semantically."""
    print("=" * 78)
    show_embedding(entailment)
    show_equality_model(entailment)
    result = prove(entailment)
    print("verdict:", result.verdict)
    if result.counterexample is not None:
        cex = result.counterexample
        print("counterexample ({}):".format(cex.description))
        print("    stack:", cex.stack)
        print("    heap :", cex.heap)
        genuine = falsifies_entailment(cex.stack, cex.heap, entailment)
        print("    semantic re-check: {}".format("genuine" if genuine else "NOT genuine (bug!)"))
    print()


def main() -> None:
    # A segment is not a single cell: the counterexample stretches it.
    explore(Entailment.build(lhs=[lseg("x", "y")], rhs=[pts("x", "y")]))

    # Transitivity of segments fails: the counterexample re-routes the first
    # segment through the end point of the second.
    explore(Entailment.build(lhs=[lseg("x", "y"), lseg("y", "z")], rhs=[lseg("x", "z")]))

    # Aliasing matters: with the disequality the entailment becomes valid, so
    # the counterexample disappears.
    explore(Entailment.build(lhs=[pts("x", "y")], rhs=[lseg("x", "y")]))
    explore(Entailment.build(lhs=[neq("x", "y"), pts("x", "y")], rhs=[lseg("x", "y")]))

    # A pure right-hand side can also fail: nothing forces x and y to alias.
    explore(Entailment.build(lhs=[lseg("x", "nil"), lseg("y", "nil")], rhs=[eq("x", "y")]))


if __name__ == "__main__":
    main()
