#!/usr/bin/env python3
"""Compare SLP against the two baseline provers on the paper's random workloads.

A miniature version of the Section 6 evaluation: the script draws small
batches from the two synthetic distributions (Table 1: ``F |- false``
consistency checks; Table 2: folding entailments ``Sigma |- Sigma'``), runs
the jStar-style, Smallfoot-style and SLP provers on every batch, and prints
paper-style rows (total seconds per batch, or the percentage of instances
solved when a prover exhausts its budget).

Run it with::

    python examples/prover_shootout.py [instances-per-row]
"""

import sys

from repro.benchgen.harness import compare_on_batch, format_table
from repro.benchgen.random_fold import FoldParameters, random_fold_batch
from repro.benchgen.random_unsat import UnsatParameters, random_unsat_batch


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    per_instance_timeout = 2.0
    budget = 60.0

    rows = []
    for variables in (10, 12, 14):
        batch = random_unsat_batch(UnsatParameters.paper(variables), count, seed=variables)
        row = compare_on_batch(
            "n={}".format(variables),
            batch,
            per_instance_timeout=per_instance_timeout,
            budget_seconds=budget,
            extra={"valid%": "{:.0f}".format(100.0 * _valid_fraction(batch))},
        )
        rows.append(row)
    print(
        format_table(
            "Table 1 style: {} random consistency entailments per row "
            "(seconds per batch, (p%) = solved fraction on timeout)".format(count),
            rows,
            extra_columns=("valid%",),
        )
    )
    print()

    rows = []
    for variables in (10, 12, 14):
        batch = random_fold_batch(FoldParameters.paper(variables), count, seed=variables)
        row = compare_on_batch(
            "n={}".format(variables),
            batch,
            per_instance_timeout=per_instance_timeout,
            budget_seconds=budget,
            extra={"valid%": "{:.0f}".format(100.0 * _valid_fraction(batch))},
        )
        rows.append(row)
    print(
        format_table(
            "Table 2 style: {} random folding entailments per row".format(count),
            rows,
            extra_columns=("valid%",),
        )
    )


def _valid_fraction(batch) -> float:
    from repro import prove

    valid = sum(1 for entailment in batch if prove(entailment).is_valid)
    return valid / len(batch) if batch else 0.0


if __name__ == "__main__":
    main()
