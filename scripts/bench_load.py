#!/usr/bin/env python
"""Load-test ``slp serve``: concurrent clients, cold vs warm store.

Boots the real server as a subprocess (ephemeral port, sharded persistent
store), drives it with concurrent HTTP clients, and reports per-request
latency (p50/p99) and throughput for two phases:

- **cold**: a fresh store; every request is a distinct entailment the
  server has never seen, so each one pays real proving plus a write-through
  persist.
- **warm**: the server is stopped (SIGTERM, graceful drain) and restarted
  over the same store; every request is an *alpha-renamed* copy of a cold
  problem, so each one is answered from the sharded disk store via the
  canonical-fingerprint cache — no proving at all.

The spread between the two is the point of running a persistent service:
the warm run must show a >=10x median-latency improvement (checked here,
recorded in the ``serve`` section of ``BENCH_saturation.json``).

``--smoke`` is the CI mode: one server, 50 concurrent requests (half
distinct, half alpha-renamed repeats), asserting zero failed requests and a
nonzero warm-hit count — no benchmark file is touched.

``--overload`` is the chaos-under-load acceptance: offered load far above
capacity (more concurrent clients than the service will queue, each firing
multi-entailment batches back-to-back) against a server with a deliberately
small admission queue and a seeded 10% worker-kill fault plan
(``SLP_FAULT_PLAN``).  The gates are *robustness*, not throughput: zero
connection errors, every response a verdict / structured failure / ``429``
(+ ``Retry-After``) / ``503``, nonzero sheds, nonzero injected faults, and
p99 of the accepted requests within the deadline-derived bound.  Results
land in the ``serve_overload`` section of ``BENCH_saturation.json``
(``--overload --smoke`` gates without writing).

Usage::

    python scripts/bench_load.py                 # full bench, writes BENCH
    python scripts/bench_load.py --smoke         # CI smoke, exit 1 on failure
    python scripts/bench_load.py --overload      # chaos acceptance, writes BENCH
    python scripts/bench_load.py --overload --smoke   # CI chaos gate, no write
    python scripts/bench_load.py --requests 80 --clients 8 --jobs 2
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import statistics
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.atomicio import atomic_write_json  # noqa: E402
from repro.core.faults import FAULT_PLAN_ENV, FaultPlan  # noqa: E402
from repro.logic.parser import parse_entailment  # noqa: E402
from repro.logic.printer import format_entailment  # noqa: E402
from repro.logic.terms import make_const  # noqa: E402

_ANNOUNCE = re.compile(r"listening on http://([0-9.]+):(\d+)")


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------


def base_problem(index: int) -> str:
    """One distinct, moderately hard, *valid* entailment per index.

    Points-to chains of varying length whose RHS splits into two list
    segments at a varying point: distinct canonical fingerprints (length and
    split point both vary the shape), on the order of 0.1s of saturation
    each — big enough that a warm hit is a clearly different regime even
    under client-side queueing, small enough that a bench run stays
    interactive.
    """
    length = 64 + (index % 16)
    names = ["v{}_{}".format(index, j) for j in range(length)]
    cells = ["{} |-> {}".format(names[j], names[j + 1]) for j in range(length - 1)]
    cells.append("{} |-> nil".format(names[-1]))
    split = names[1 + (index % (length - 2))]
    return "{} |- lseg({}, {}) * lseg({}, nil)".format(
        " * ".join(cells), names[0], split, split
    )


def alpha_renamed(line: str, tag: str) -> str:
    """The same problem under a fresh constant vocabulary."""
    entailment = parse_entailment(line)
    renamed = entailment.rename(
        {
            constant: make_const("{}_{}".format(tag, constant.name))
            for constant in entailment.constants()
            if not constant.is_nil
        }
    )
    return format_entailment(renamed)


# ---------------------------------------------------------------------------
# Server subprocess management
# ---------------------------------------------------------------------------


class Server:
    """``slp serve`` as a child process with a scraped ephemeral port."""

    def __init__(
        self,
        store: str,
        jobs: int,
        shards: int,
        timeout: float,
        extra_args=(),
        extra_env=None,
    ):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        if extra_env:
            env.update(extra_env)
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--jobs",
                str(jobs),
                "--store",
                store,
                "--shards",
                str(shards),
                "--timeout",
                str(timeout),
            ]
            + list(extra_args),
            stderr=subprocess.PIPE,
            env=env,
            cwd=REPO_ROOT,
        )
        self.base = self._scrape_address()

    def _scrape_address(self) -> str:
        deadline = time.monotonic() + 30
        assert self.process.stderr is not None
        while time.monotonic() < deadline:
            line = self.process.stderr.readline().decode("utf-8", "replace")
            if not line:
                raise RuntimeError(
                    "server exited before announcing its port (rc={})".format(
                        self.process.poll()
                    )
                )
            match = _ANNOUNCE.search(line)
            if match:
                # Keep draining stderr so the child never blocks on the pipe.
                threading.Thread(
                    target=self.process.stderr.read, daemon=True
                ).start()
                return "http://{}:{}".format(match.group(1), match.group(2))
        raise RuntimeError("timed out waiting for the server announcement")

    def stats(self) -> dict:
        with urllib.request.urlopen(self.base + "/stats", timeout=30) as response:
            return json.loads(response.read())

    def stop(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10)

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Client pool
# ---------------------------------------------------------------------------


def run_phase(base: str, lines, clients: int):
    """Fire one request per line from a pool of concurrent clients.

    Returns ``(latencies_seconds, wall_seconds, failures)`` where a failure
    is any transport error, non-200, or per-line status other than ``ok``.
    """
    latencies = []
    failures = []
    lock = threading.Lock()
    queue = list(enumerate(lines))

    def worker() -> None:
        while True:
            with lock:
                if not queue:
                    return
                index, line = queue.pop()
            payload = json.dumps({"entailment": line}).encode("utf-8")
            request = urllib.request.Request(
                base + "/prove",
                data=payload,
                headers={"Content-Type": "application/json"},
            )
            started = time.perf_counter()
            try:
                with urllib.request.urlopen(request, timeout=120) as response:
                    body = json.loads(response.read())
                elapsed = time.perf_counter() - started
                entry = body["results"][0]
                if entry.get("status") != "ok":
                    raise RuntimeError("request {}: {}".format(index, entry))
            except Exception as error:  # noqa: BLE001 - tallied, not fatal
                with lock:
                    failures.append(str(error))
                continue
            with lock:
                latencies.append(elapsed)

    wall_started = time.perf_counter()
    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, time.perf_counter() - wall_started, failures


def overload_problems(count: int):
    """``count`` small valid entailments with *distinct canonical forms*.

    Alpha-renaming is not enough — the canonical-fingerprint cache exists to
    see through it, and a workload of alpha-variants would be absorbed by
    the cache instead of reaching the pool.  Structural distinctness comes
    from enumerating (chain length, RHS split point, extra disequalities):
    each combination is a different shape, so every line costs real proving.
    """
    descriptors = []
    for extras in range(4):
        for length in range(8, 24):
            for split in range(1, length - 1):
                descriptors.append((length, split, extras))
    if count > len(descriptors):
        raise ValueError(
            "only {} structurally distinct overload problems available; "
            "asked for {} (lower --requests)".format(len(descriptors), count)
        )
    lines = []
    for k, (length, split, extras) in enumerate(descriptors[:count]):
        names = ["p{}_{}".format(k, j) for j in range(length)]
        cells = ["{} |-> {}".format(names[j], names[j + 1]) for j in range(length - 1)]
        cells.append("{} |-> nil".format(names[-1]))
        pure = []
        if extras & 1:
            pure.append("{} != {}".format(names[0], names[-1]))
        if extras & 2:
            pure.append("{} != {}".format(names[1], names[-1]))
        lhs = " * ".join(cells + pure)
        lines.append(
            "{} |- lseg({}, {}) * lseg({}, nil)".format(
                lhs, names[0], names[split], names[split]
            )
        )
    return lines


def kill_plan(batch_size: int, rate: float = 0.1) -> FaultPlan:
    """A seeded transient worker-kill plan verified to hit the batch shape.

    The fault decision is a pure function of ``(seed, batch index)``, so a
    seed is chosen (deterministically) such that at least one index of a
    ``batch_size``-entailment request is targeted — a seed whose targets all
    fall outside ``range(batch_size)`` would silently test nothing.
    ``times=1`` makes every kill transient: the retry must recover the
    verdict, so chaos costs latency, never answers.
    """
    for seed in range(1, 1000):
        plan = FaultPlan.seeded(seed=seed, rate=rate, kinds=("exit",), times=1)
        if plan.injected_indices(batch_size):
            return plan
    raise RuntimeError("no seed under 1000 targets a batch of {}".format(batch_size))


def run_overload_phase(base: str, batches, clients: int, request_timeout: float):
    """Fire multi-entailment batches from far more clients than capacity.

    Every response is classified: ``accepted`` (HTTP 200, every per-line
    status structured), ``shed`` (429 with a Retry-After header),
    ``unavailable`` (503), or — the failure classes the gates forbid —
    ``unstructured`` (anything else that came back over a working
    connection) and ``connection_errors`` (the socket itself failed).
    """
    lock = threading.Lock()
    work = list(enumerate(batches))
    accepted_latencies = []
    tally = {
        "accepted": 0,
        "shed": 0,
        "unavailable": 0,
        "unstructured": [],
        "connection_errors": [],
        "missing_retry_after": 0,
        "structured_failures": 0,
    }
    allowed_line_statuses = {"ok", "timeout", "oom", "crashed"}

    def worker() -> None:
        while True:
            with lock:
                if not work:
                    return
                request_id, lines = work.pop()
            payload = json.dumps(
                {"entailments": lines, "timeout": request_timeout}
            ).encode("utf-8")
            request = urllib.request.Request(
                base + "/prove",
                data=payload,
                headers={"Content-Type": "application/json"},
            )
            started = time.perf_counter()
            try:
                with urllib.request.urlopen(request, timeout=120) as response:
                    body = json.loads(response.read())
                elapsed = time.perf_counter() - started
            except urllib.error.HTTPError as refusal:
                try:
                    detail = json.loads(refusal.read())
                except Exception:
                    detail = None
                with lock:
                    if refusal.code == 429 and isinstance(detail, dict):
                        tally["shed"] += 1
                        if refusal.headers.get("Retry-After") is None:
                            tally["missing_retry_after"] += 1
                    elif refusal.code == 503 and isinstance(detail, dict):
                        tally["unavailable"] += 1
                    else:
                        tally["unstructured"].append(
                            "request {}: HTTP {} body {!r}".format(
                                request_id, refusal.code, detail
                            )
                        )
                continue
            except Exception as error:  # URLError, socket errors, bad JSON
                with lock:
                    tally["connection_errors"].append(
                        "request {}: {}: {}".format(request_id, type(error).__name__, error)
                    )
                continue
            statuses = [entry.get("status") for entry in body.get("results", [])]
            with lock:
                if len(statuses) == len(lines) and all(
                    status in allowed_line_statuses for status in statuses
                ):
                    tally["accepted"] += 1
                    tally["structured_failures"] += sum(
                        1 for status in statuses if status != "ok"
                    )
                    accepted_latencies.append(elapsed)
                else:
                    tally["unstructured"].append(
                        "request {}: statuses {}".format(request_id, statuses)
                    )

    wall_started = time.perf_counter()
    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return accepted_latencies, time.perf_counter() - wall_started, tally


def overload(args) -> int:
    """Chaos-under-load acceptance; ``--smoke`` gates without a BENCH write."""
    batch_size = 10
    max_queue_requests = 4
    lanes = min(args.jobs, 4)
    capacity = lanes + max_queue_requests
    clients = max(args.clients, 4 * capacity)
    requests = args.requests
    request_timeout = min(args.timeout, 20.0)
    ratio = clients / capacity
    plan = kill_plan(batch_size)
    targeted = plan.injected_indices(batch_size)
    lines = overload_problems(requests * batch_size)
    batches = [
        lines[request_id * batch_size:(request_id + 1) * batch_size]
        for request_id in range(requests)
    ]
    print(
        "[bench_load --overload] {} batches x {} entailments, {} clients vs "
        "capacity {} ({} lanes + {} queue slots) = {:.1f}x offered load; "
        "kill plan seed {} targets indices {} of each batch".format(
            requests, batch_size, clients, capacity, lanes, max_queue_requests,
            ratio, plan.seed, targeted,
        )
    )
    with tempfile.TemporaryDirectory() as scratch:
        with Server(
            os.path.join(scratch, "proofs.store"),
            args.jobs,
            args.shards,
            args.timeout,
            extra_args=[
                "--lanes", str(lanes),
                "--max-queue-requests", str(max_queue_requests),
                "--max-queue-entailments", str(max_queue_requests * batch_size * 4),
            ],
            extra_env={FAULT_PLAN_ENV: plan.to_env()},
        ) as server:
            latencies, wall, tally = run_overload_phase(
                server.base, batches, clients, request_timeout
            )
            stats = server.stats()

    pool = stats["pool"]
    split = {
        "queue_wait_p50_ms": stats["queue_wait"].get("p50_ms", 0.0),
        "queue_wait_p99_ms": stats["queue_wait"].get("p99_ms", 0.0),
        "execution_p50_ms": stats["execution"].get("p50_ms", 0.0),
        "execution_p99_ms": stats["execution"].get("p99_ms", 0.0),
    }
    print(
        "[bench_load --overload] accepted {} / shed {} / unavailable {} of {} "
        "({} structured per-line failures, {} expired in queue) in {:.1f}s".format(
            tally["accepted"], tally["shed"], tally["unavailable"], requests,
            tally["structured_failures"], stats["expired_in_queue"], wall,
        )
    )
    print(
        "[bench_load --overload] chaos: {} injected faults, {} retries, "
        "{} respawned workers".format(
            pool["injected_faults"], pool["retried"], pool["respawned_workers"]
        )
    )
    print(
        "[bench_load --overload] latency split: queue-wait p50 {:.1f} ms / "
        "p99 {:.1f} ms, execution p50 {:.1f} ms / p99 {:.1f} ms".format(
            split["queue_wait_p50_ms"], split["queue_wait_p99_ms"],
            split["execution_p50_ms"], split["execution_p99_ms"],
        )
    )

    failures = []
    if tally["connection_errors"]:
        failures.append(
            "{} connection errors (first: {})".format(
                len(tally["connection_errors"]), tally["connection_errors"][0]
            )
        )
    if tally["unstructured"]:
        failures.append(
            "{} unstructured responses (first: {})".format(
                len(tally["unstructured"]), tally["unstructured"][0]
            )
        )
    if tally["missing_retry_after"]:
        failures.append(
            "{} 429s without Retry-After".format(tally["missing_retry_after"])
        )
    answered = tally["accepted"] + tally["shed"] + tally["unavailable"]
    if answered != requests:
        failures.append(
            "accounting leak: accepted+shed+unavailable = {} != {} submitted".format(
                answered, requests
            )
        )
    if tally["shed"] == 0:
        failures.append("no request was shed — the offered load never exceeded capacity")
    if tally["accepted"] == 0:
        failures.append("no request was accepted — nothing was actually measured")
    if pool["injected_faults"] == 0:
        failures.append("the kill plan never fired (injected_faults == 0)")
    p99_bound = 2.0 * request_timeout
    accepted = summarize(latencies, wall) if latencies else {}
    if latencies and accepted["p99_ms"] > p99_bound * 1000.0:
        failures.append(
            "accepted p99 {} ms exceeds the {:.0f} ms bound".format(
                accepted["p99_ms"], p99_bound * 1000.0
            )
        )
    if not args.smoke and ratio < 4.0:
        failures.append("offered load {:.1f}x is below the 4x acceptance bar".format(ratio))

    if failures:
        for failure in failures:
            print("  GATE FAILED: {}".format(failure), file=sys.stderr)
        return 1

    if not args.smoke:
        section = {
            "jobs": args.jobs,
            "lanes": lanes,
            "clients": clients,
            "capacity": capacity,
            "offered_ratio": round(ratio, 1),
            "batch_size": batch_size,
            "requests": requests,
            "request_timeout_seconds": request_timeout,
            "fault_plan": {"seed": plan.seed, "rate": plan.rate, "kinds": list(plan.kinds),
                           "times": plan.times, "targets_per_batch": targeted},
            "accepted": dict(accepted, structured_failures=tally["structured_failures"]),
            "shed": tally["shed"],
            "unavailable": tally["unavailable"],
            "expired_in_queue": stats["expired_in_queue"],
            "connection_errors": 0,
            "unstructured_responses": 0,
            "injected_faults": pool["injected_faults"],
            "respawned_workers": pool["respawned_workers"],
            "latency_split": split,
            "notes": (
                "offered load far above capacity (clients vs lanes + queue slots) "
                "with a seeded transient worker-kill plan; gates: zero connection "
                "errors, every response a verdict / structured failure / 429+"
                "Retry-After / 503, accepted p99 within 2x the request timeout."
            ),
        }
        out = args.out or os.path.join(REPO_ROOT, "BENCH_saturation.json")
        payload = {}
        if os.path.exists(out):
            try:
                with open(out) as handle:
                    payload = json.load(handle)
            except (ValueError, OSError):
                payload = {}
        payload["serve_overload"] = section
        atomic_write_json(out, payload)
        print("[bench_load --overload] wrote serve_overload section to {}".format(out))
    print("[bench_load --overload] all gates passed")
    return 0


def summarize(latencies, wall_seconds: float) -> dict:
    ordered = sorted(latencies)
    return {
        "requests": len(ordered),
        "p50_ms": round(statistics.median(ordered) * 1000.0, 3),
        "p99_ms": round(ordered[max(0, int(round(0.99 * len(ordered))) - 1)] * 1000.0, 3),
        "mean_ms": round(statistics.fmean(ordered) * 1000.0, 3),
        "throughput_rps": round(len(ordered) / wall_seconds, 2),
        "wall_seconds": round(wall_seconds, 3),
    }


# ---------------------------------------------------------------------------
# Modes
# ---------------------------------------------------------------------------


def smoke(args) -> int:
    """CI gate: 50 concurrent requests, zero failures, nonzero warm hits."""
    total = args.requests
    distinct = total // 2
    # Smoke problems are deliberately small: the gate is about plumbing
    # (concurrency, dedup, cache, shutdown), not prover throughput.
    bases = [
        "s{0} |-> t{0} * t{0} |-> nil |- lseg(s{0}, nil)".format(i) for i in range(distinct)
    ]
    repeats = [alpha_renamed(line, "w{}".format(i)) for i, line in enumerate(bases)]
    lines = bases + repeats + bases[: total - 2 * distinct]
    with tempfile.TemporaryDirectory() as scratch:
        with Server(
            os.path.join(scratch, "proofs.store"), args.jobs, args.shards, args.timeout
        ) as server:
            latencies, wall, failures = run_phase(server.base, lines, args.clients)
            stats = server.stats()
    warm_hits = stats["cache"]["hits"] + stats["cache"]["deduplicated"]
    print(
        "[bench_load --smoke] {} requests, {} failures, {} warm hits, {:.1f} rps".format(
            len(lines), len(failures), warm_hits, len(latencies) / wall
        )
    )
    if failures:
        for failure in failures[:5]:
            print("  failure: {}".format(failure), file=sys.stderr)
        return 1
    if len(latencies) != len(lines):
        print("  lost requests: {} != {}".format(len(latencies), len(lines)), file=sys.stderr)
        return 1
    if warm_hits == 0:
        print("  expected nonzero warm hits on repeated workload", file=sys.stderr)
        return 1
    return 0


def bench(args) -> int:
    """Cold vs warm phases against a persistent sharded store."""
    cold_lines = [base_problem(index) for index in range(args.requests)]
    warm_lines = [
        alpha_renamed(line, "warm{}".format(index))
        for index, line in enumerate(cold_lines)
    ]
    with tempfile.TemporaryDirectory() as scratch:
        store = os.path.join(scratch, "proofs.store")
        print("[bench_load] cold phase: {} distinct problems, {} clients".format(
            len(cold_lines), args.clients))
        with Server(store, args.jobs, args.shards, args.timeout) as server:
            cold_latencies, cold_wall, cold_failures = run_phase(
                server.base, cold_lines, args.clients
            )
            cold_stats = server.stats()
        print("[bench_load] warm phase: restarted server, alpha-renamed repeats")
        with Server(store, args.jobs, args.shards, args.timeout) as server:
            warm_latencies, warm_wall, warm_failures = run_phase(
                server.base, warm_lines, args.clients
            )
            warm_stats = server.stats()
    if cold_failures or warm_failures:
        for failure in (cold_failures + warm_failures)[:5]:
            print("  failure: {}".format(failure), file=sys.stderr)
        return 1

    cold = summarize(cold_latencies, cold_wall)
    warm = summarize(warm_latencies, warm_wall)
    warm["disk_hits"] = warm_stats["cache"]["disk_hits"]
    speedup = cold["p50_ms"] / warm["p50_ms"] if warm["p50_ms"] else float("inf")
    section = {
        "jobs": args.jobs,
        "clients": args.clients,
        "shards": args.shards,
        "cold": cold,
        "warm": warm,
        "median_speedup": round(speedup, 1),
        "cold_store_appends": cold_stats.get("store", {}).get("appends", 0),
        "notes": (
            "cold = fresh sharded store, every request a distinct entailment "
            "(real saturation + write-through persist); warm = server restarted "
            "over the same store, every request an alpha-renamed repeat answered "
            "from disk via the canonical-fingerprint cache. Latency is "
            "client-observed per HTTP request at the given concurrency."
        ),
    }
    print(
        "[bench_load] cold p50 {} ms / warm p50 {} ms -> {:.1f}x median speedup "
        "({} disk hits)".format(
            cold["p50_ms"], warm["p50_ms"], speedup, warm["disk_hits"]
        )
    )

    out = args.out or os.path.join(REPO_ROOT, "BENCH_saturation.json")
    payload = {}
    if os.path.exists(out):
        try:
            with open(out) as handle:
                payload = json.load(handle)
        except (ValueError, OSError):
            payload = {}
    payload["serve"] = section
    atomic_write_json(out, payload)
    print("[bench_load] wrote serve section to {}".format(out))

    if warm["disk_hits"] == 0:
        print("warm phase never touched the disk store", file=sys.stderr)
        return 1
    if speedup < 10.0:
        print(
            "warm median speedup {:.1f}x is below the 10x bar".format(speedup),
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI smoke mode (no BENCH write)")
    parser.add_argument("--overload", action="store_true",
                        help="chaos-under-load acceptance (small admission queue,"
                        " seeded worker-kill plan, robustness gates)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per phase (default: 40 bench, 50 smoke,"
                        " 48 overload, 24 overload smoke)")
    parser.add_argument("--clients", type=int, default=8, help="concurrent clients (default 8)")
    parser.add_argument("--jobs", type=int, default=2, help="server worker processes (default 2)")
    parser.add_argument("--shards", type=int, default=4, help="store shards (default 4)")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="server per-entailment budget ceiling (default 30)")
    parser.add_argument("--out", default=None,
                        help="benchmark JSON to update (default BENCH_saturation.json)")
    args = parser.parse_args(argv)
    if args.overload:
        if args.requests is None:
            args.requests = 24 if args.smoke else 48
        return overload(args)
    if args.requests is None:
        args.requests = 50 if args.smoke else 40
    return smoke(args) if args.smoke else bench(args)


if __name__ == "__main__":
    raise SystemExit(main())
